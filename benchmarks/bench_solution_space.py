"""Ablation A4 — solution-space density (the §3 enabling concept).

The paper argues its algorithms can only work because low-density regimes
are *dense in satisfying solutions* — many candidate points improve
localization, so a noisy search still finds one.  This bench measures that
density directly: the fraction of uniformly sampled candidates achieving
(a) any improvement and (b) ≥ 50 % of the best sampled improvement, across
the density sweep and two noise levels.
"""

import numpy as np

from repro.sim import build_world, derive_rng
from repro.stats import analyze_solution_space


def test_solution_space_density(benchmark, config, emit_table):
    counts = [config.beacon_counts[0], config.beacon_counts[len(config.beacon_counts) // 2],
              config.beacon_counts[-1]]
    fields = min(config.fields_per_density, 5)

    def run():
        rows = []
        for noise in (0.0, 0.5):
            for count in counts:
                any_frac, half_frac, best = [], [], []
                for i in range(fields):
                    world = build_world(config, noise, count, i)
                    analysis = analyze_solution_space(
                        world,
                        derive_rng(config.seed, "solspace", noise, count, i),
                        num_candidates=120,
                    )
                    any_frac.append(analysis.satisfying_fraction(0.0))
                    half = analysis.density_at_fraction_of_best(0.5)
                    if not np.isnan(half):
                        half_frac.append(half)
                    best.append(analysis.best)
                rows.append(
                    (
                        noise,
                        count,
                        float(np.mean(any_frac)),
                        float(np.mean(half_frac)) if half_frac else float("nan"),
                        float(np.mean(best)),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "solution_space",
        ("noise", "beacons", "frac improving", "frac ≥ 50% of best", "best gain (m)"),
        rows,
        float_digits=3,
    )

    by_key = {(r[0], r[1]): r for r in rows}
    low = by_key[(0.0, counts[0])]
    high = by_key[(0.0, counts[-1])]
    # §3 premise: low density is improvement-rich …
    assert low[2] > 0.5
    # … and the achievable best gain collapses once saturated.
    assert high[4] < 0.5 * low[4]
