"""Extension E2 — locus-area placement vs Grid (§6 future work).

The paper suggests *"adding new beacons to break down the loci with the
largest area"* and notes Grid partially embodies the idea, but warns locus
information *"is not reliable under non ideal radio propagation"*.  This
bench tests both halves: under ideal propagation locus-area placement is
competitive with Grid; under Noise = 0.5 its advantage degrades relative to
Grid's measurement-driven score.
"""

import numpy as np

from repro.placement import GridPlacement, LocusAreaPlacement, RandomPlacement
from repro.sim import build_world, derive_rng, run_placement_trial


def run_comparison(config, noise, count, fields):
    algorithms = [
        RandomPlacement(),
        GridPlacement(config.grid_layout()),
        LocusAreaPlacement(score="area"),
        LocusAreaPlacement(score="error"),
    ]
    algorithms[3].name = "locus-error"  # distinguish the two scoring modes
    gains = {a.name: [] for a in algorithms}
    for i in range(fields):
        world = build_world(config, noise, count, i)
        outcomes = run_placement_trial(
            world,
            algorithms,
            lambda name, _i=i: derive_rng(config.seed, "locus", name, noise, _i),
        )
        for outcome in outcomes:
            gains[outcome.algorithm].append(outcome.improvement_mean)
    return {name: float(np.mean(v)) for name, v in gains.items()}


def test_extension_locus_placement(benchmark, config, emit_table):
    count = config.beacon_counts[0]
    fields = min(config.fields_per_density, 8)

    def run():
        return {
            noise: run_comparison(config, noise, count, fields)
            for noise in (0.0, 0.5)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for noise, gains in results.items():
        for name, value in gains.items():
            rows.append((noise, name, value))
    emit_table("extension_locus", ("noise", "algorithm", "mean gain (m)"), rows)

    ideal = results[0.0]
    noisy = results[0.5]
    # Under ideal propagation, locus-area placement beats Random clearly.
    assert ideal["locus"] > ideal["random"]
    # It is in Grid's league (within 50 %) when the loci are trustworthy.
    assert ideal["locus"] > 0.5 * ideal["grid"]
    # §6 caveat: under noise its edge over Random shrinks relative to Grid's.
    margin_ideal = ideal["locus"] - ideal["random"]
    margin_noisy = noisy["locus"] - noisy["random"]
    grid_margin_noisy = noisy["grid"] - noisy["random"]
    assert grid_margin_noisy > 0.0
    assert margin_noisy <= margin_ideal + 0.25
