"""Ablation A5 — interpretations of the §4.2.1 noise model.

DESIGN.md documents the ambiguity: the paper's formula
``dist ≤ R(1 + u·nf(B))`` read symmetrically (u per link or per beacon)
produces only a ≈5 % error increase at Noise = 0.5, far below the reported
"up to 33 %"; adding the paper's own §2.2 CM_thresh message-threshold rule
(our default, CM_thresh = 0.9) restores the reported magnitudes.  This bench
measures all three readings side by side.
"""

from repro.radio import BeaconNoiseModel
from repro.sim import Curve, CurveSet, mean_error_curve


READINGS = (
    ("symmetric-pair", dict(u_granularity="pair", cm_thresh=None)),
    ("symmetric-beacon", dict(u_granularity="beacon", cm_thresh=None)),
    ("cmthresh-0.9", dict(u_granularity="pair", cm_thresh=0.9)),
)


def test_ablation_noise_model_reading(benchmark, config, emit):
    cfg = config.with_fields(max(config.fields_per_density // 2, 5))

    def run():
        curves = []
        for label, kwargs in READINGS:
            def factory(noise, _kw=kwargs):
                return BeaconNoiseModel(cfg.radio_range, noise, **_kw)

            noisy = mean_error_curve(cfg, 0.5, model_factory=factory)
            curves.append(
                Curve(
                    label=label,
                    counts=noisy.counts,
                    densities=noisy.densities,
                    values=noisy.values,
                    ci_half_widths=noisy.ci_half_widths,
                    num_samples=noisy.num_samples,
                )
            )
        ideal = mean_error_curve(cfg, 0.0)
        curves.insert(0, Curve("ideal", ideal.counts, ideal.densities,
                               ideal.values, ideal.ci_half_widths, ideal.num_samples))
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_noise_model",
        CurveSet("A5: mean error at Noise=0.5 under three model readings", curves),
    )

    by_label = {c.label: c for c in curves}
    ideal_low = by_label["ideal"].values[1]
    pair_low = by_label["symmetric-pair"].values[1]
    thresh_low = by_label["cmthresh-0.9"].values[1]
    # Symmetric reading barely moves the curve; threshold reading moves it
    # decisively more (the paper reports up to +33 %).
    assert abs(pair_low - ideal_low) < 0.15 * ideal_low
    assert (thresh_low - ideal_low) > 2.0 * abs(pair_low - ideal_low)
