"""Figure 1 — beacon density vs granularity of localization regions.

The paper's conceptual figure contrasts a 2×2 with a 3×3 beacon grid:
the denser grid induces *more and smaller* localization regions (the shaded
areas).  This bench quantifies exactly that: number of distinct covered
regions and their mean area for k×k beacon grids on the paper terrain.
"""

import numpy as np

from repro.field import regular_grid_field
from repro.geometry import MeasurementGrid, decompose_regions
from repro.radio import IdealDiskModel
from repro.sim import paper_config


def region_granularity(per_axis: int, config, grid, realization):
    field = regular_grid_field(per_axis, config.side)
    conn = realization.connectivity(grid.points(), field)
    regions = decompose_regions(conn, grid)
    return {
        "beacons": per_axis * per_axis,
        "covered_regions": regions.num_covered_regions,
        "mean_region_area": regions.mean_covered_region_area(),
        "largest_region_area": float(regions.covered_region_areas().max()),
    }


def test_figure1_region_granularity(benchmark, emit_table):
    config = paper_config()
    grid = MeasurementGrid(config.side, 1.0)
    # Figure 1 assumes beacons whose disks tile the terrain; a 100 m square
    # with k×k beacons needs R ≥ side/k, so use a generous fixed range.
    realization = IdealDiskModel(40.0).realize(np.random.default_rng(0))

    def run():
        return [region_granularity(k, config, grid, realization) for k in (2, 3, 4, 5)]

    results = benchmark(run)

    rows = [
        (
            f"{int(np.sqrt(r['beacons']))}x{int(np.sqrt(r['beacons']))}",
            r["beacons"],
            r["covered_regions"],
            r["mean_region_area"],
            r["largest_region_area"],
        )
        for r in results
    ]
    emit_table(
        "figure1",
        ("grid", "beacons", "covered regions", "mean area (m^2)", "largest area (m^2)"),
        rows,
    )

    # Paper claim: 3x3 grid → more and smaller localization regions than 2x2.
    two, three = results[0], results[1]
    assert three["covered_regions"] > two["covered_regions"]
    assert three["mean_region_area"] < two["mean_region_area"]
