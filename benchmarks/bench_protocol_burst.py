"""Extension E10 — bursty vs i.i.d. loss under the §2.2 threshold rule.

Gilbert–Elliott bursts and i.i.d. loss with the SAME average rate interact
very differently with "connected = received fraction ≥ CM_thresh": i.i.d.
loss averages out over the listening window, bursts spend whole windows in
the BAD state.  The §2.2 rule is therefore far less stable under bursts —
the kind of propagation reality the paper's noise model abstracts, and the
reason adaptive placement must work from *measured* error, not channel
models.
"""

import numpy as np

from repro.field import random_uniform_field
from repro.protocol import GilbertElliottLoss, ProtocolConnectivityEstimator
from repro.radio import IdealDiskModel
from repro.sim import derive_rng


def run_loss_comparison(config, windows: int = 6):
    realization = IdealDiskModel(config.radio_range).realize(
        derive_rng(config.seed, "burst-real")
    )
    field = random_uniform_field(60, config.side, derive_rng(config.seed, "burst-field"))
    clients = derive_rng(config.seed, "burst-clients").uniform(0, config.side, (30, 2))
    geometric = realization.connectivity(clients, field)
    estimator = ProtocolConnectivityEstimator(
        period=1.0, listen_time=20.0, message_duration=0.005, cm_thresh=0.7
    )

    def observe(loss_factory):
        per_window = []
        for w in range(windows):
            burst = loss_factory(w)
            result = estimator.run(
                clients,
                field,
                realization,
                derive_rng(config.seed, "burst-run", w),
                burst_loss=burst,
            )
            per_window.append(result.connectivity)
        stack = np.stack(per_window)  # (W, P, N)
        flaps = (stack[1:] != stack[:-1]).sum()
        mean_links = stack.sum(axis=(1, 2)).mean()
        agreement = (stack == geometric[None]).mean()
        return mean_links, flaps, agreement

    def bursty(w):
        return GilbertElliottLoss(
            good_loss=0.02,
            bad_loss=0.95,
            mean_good_time=15.0,
            mean_bad_time=5.0,
            rng=derive_rng(config.seed, "ge", w),
        )

    rate = bursty(0).steady_state_loss

    def iid(w):
        return GilbertElliottLoss(
            good_loss=rate,
            bad_loss=rate,
            mean_good_time=1.0,
            mean_bad_time=1.0,
            rng=derive_rng(config.seed, "iid", w),
        )

    rows = []
    for name, factory in (("iid", iid), ("bursty", bursty)):
        mean_links, flaps, agreement = observe(factory)
        rows.append((name, f"{rate:.2f}", mean_links, int(flaps), agreement))
    return rows


def test_protocol_bursty_vs_iid_loss(benchmark, config, emit_table):
    rows = benchmark.pedantic(lambda: run_loss_comparison(config), rounds=1, iterations=1)
    emit_table(
        "protocol_burst",
        ("loss process", "avg loss", "mean links/window", "link flaps", "agreement"),
        rows,
        float_digits=3,
    )

    by_name = {r[0]: r for r in rows}
    # Same average rate, very different §2.2 behaviour: bursts destroy and
    # flap connectivity far more than i.i.d. loss.
    assert by_name["bursty"][3] > by_name["iid"][3]
    assert by_name["bursty"][4] < by_name["iid"][4] + 1e-9
