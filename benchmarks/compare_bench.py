#!/usr/bin/env python
"""Diff fresh ``BENCH_*.json`` numbers against committed baselines.

The perf benches (``bench_perf_kernels.py``, ``bench_dist_executor.py``)
overwrite ``benchmarks/results/BENCH_*.json`` in place, so a regression
only shows up if someone reads the diff.  This script makes the check
mechanical:

1. copy the committed baselines somewhere (CI does ``cp`` to a temp dir),
2. run the benches (they rewrite ``benchmarks/results/``),
3. ``python benchmarks/compare_bench.py --against TEMP_DIR``.

Comparison rules, per matching ``BENCH_*.json`` pair:

* top-level numeric keys containing ``speedup`` (except the ``min_*``
  assertion floors) are higher-is-better;
* ``best_seconds`` entries are lower-is-better, but only when the bench
  metadata (``sweep``, ``workers``, ``chunk``, ``rounds``) matches —
  absolute seconds from different sweep shapes or hosts are not
  comparable, while speedup ratios still are;
* a metric regressing by more than ``--tolerance`` (default 15%) fails
  the run with exit code 1.

Baselines missing a fresh counterpart (bench not run) are skipped with a
note — partial bench runs must not fail the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.15
RESULTS_DIR = Path(__file__).parent / "results"

#: Metadata keys that must match for absolute timings to be comparable.
TIMING_CONTEXT_KEYS = ("sweep", "workers", "chunk", "rounds")


def _speedup_keys(doc: dict) -> list[str]:
    return sorted(
        name
        for name, value in doc.items()
        if "speedup" in name
        and not name.startswith("min_")
        and isinstance(value, (int, float))
    )


def _timing_context(doc: dict) -> dict:
    return {key: doc.get(key) for key in TIMING_CONTEXT_KEYS}


def compare_docs(name: str, fresh: dict, base: dict, tolerance: float) -> list[dict]:
    """Compare one fresh/baseline pair; returns one row dict per metric.

    Each row has ``metric``, ``base``, ``fresh``, ``change`` (signed,
    positive = improvement) and ``regressed``.
    """
    rows: list[dict] = []

    for key in _speedup_keys(base):
        if key not in fresh:
            continue
        base_value, fresh_value = float(base[key]), float(fresh[key])
        change = fresh_value / base_value - 1.0 if base_value else 0.0
        rows.append({
            "metric": f"{name}:{key}",
            "base": base_value,
            "fresh": fresh_value,
            "change": change,
            "regressed": fresh_value < base_value * (1.0 - tolerance),
        })

    if _timing_context(base) == _timing_context(fresh):
        base_times = base.get("best_seconds", {})
        fresh_times = fresh.get("best_seconds", {})
        for label in sorted(base_times):
            if label not in fresh_times:
                continue
            base_value, fresh_value = float(base_times[label]), float(fresh_times[label])
            # Lower is better: improvement is the *drop* in seconds.
            change = 1.0 - fresh_value / base_value if base_value else 0.0
            rows.append({
                "metric": f"{name}:best_seconds[{label}]",
                "base": base_value,
                "fresh": fresh_value,
                "change": change,
                "regressed": fresh_value > base_value * (1.0 + tolerance),
            })
    else:
        print(
            f"note: {name} timing context differs from baseline "
            "(different sweep shape); comparing speedup ratios only"
        )

    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        default=str(RESULTS_DIR),
        metavar="DIR",
        help="directory holding the just-generated BENCH_*.json "
        "(default: benchmarks/results)",
    )
    parser.add_argument(
        "--against",
        default=str(RESULTS_DIR),
        metavar="DIR",
        help="directory holding the baseline BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRACTION",
        help="allowed fractional regression before failing (default: 0.15)",
    )
    args = parser.parse_args(argv)

    fresh_dir, base_dir = Path(args.fresh), Path(args.against)
    baselines = sorted(base_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines under {base_dir}", file=sys.stderr)
        return 2

    rows: list[dict] = []
    for base_path in baselines:
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            print(f"note: {base_path.name} has no fresh run, skipping")
            continue
        with base_path.open() as handle:
            base = json.load(handle)
        with fresh_path.open() as handle:
            fresh = json.load(handle)
        rows.extend(compare_docs(base_path.stem, fresh, base, args.tolerance))

    if not rows:
        print("error: nothing to compare (no overlapping metrics)", file=sys.stderr)
        return 2

    width = max(len(row["metric"]) for row in rows)
    for row in rows:
        flag = "REGRESSED" if row["regressed"] else "ok"
        print(
            f"{row['metric']:<{width}}  base {row['base']:>9.4f}  "
            f"fresh {row['fresh']:>9.4f}  {row['change']:+7.1%}  {flag}"
        )

    regressions = [row for row in rows if row["regressed"]]
    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed beyond "
            f"{args.tolerance:.0%} tolerance:",
            file=sys.stderr,
        )
        for row in regressions:
            print(f"  {row['metric']}: {row['change']:+.1%}", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} metric(s) within {args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
