"""Extension E13 — placement value under beacon failure.

The paper's premise is that beacon deployments degrade in the field
(battery exhaustion, node death) and that adaptive placement is how the
system recovers.  This bench quantifies that story: a low-density field
decays under a crash-fault model (exponential lifetimes) and at each
snapshot we measure what remains — surviving beacons, base localization
error — and what one adaptively-placed beacon buys back (Random / Max /
Grid), against a full weighted-k-means redeployment of the survivors as
the expensive comparator.

Expected shape: alive fraction falls, base error climbs, and the gain
from a single adaptive placement *grows* as the field degrades — exactly
the regime the paper argues adaptation is for.
"""

import numpy as np

from repro.faults import CrashFault
from repro.placement import WeightedRedeployment
from repro.sim import TrialWorld, build_world, derive_rng, run_placement_trial

LIFETIME = 60.0


def test_fault_degradation_and_placement_recovery(
    benchmark, config, paper_algorithms, emit_table
):
    count = config.beacon_counts[0]
    fields = min(config.fields_per_density, 6)
    times = [0.0, LIFETIME / 2, LIFETIME, 2 * LIFETIME]
    model = CrashFault(LIFETIME)

    def run():
        rows = []
        for t in times:
            alive: list[float] = []
            base: list[float] = []
            gains: dict[str, list[float]] = {a.name: [] for a in paper_algorithms}
            redeploy: list[float] = []
            for i in range(fields):
                world = build_world(config, 0.0, count, i, faults=model, fault_time=t)
                alive.append(len(world.field) / count)

                def rng_for(name, t=t, i=i):
                    return derive_rng(config.seed, "bench-faults", name, t, i)

                outcomes = run_placement_trial(world, paper_algorithms, rng_for)
                base.append(outcomes[0].base_mean)
                for o in outcomes:
                    gains[o.algorithm].append(o.improvement_mean)

                if len(world.field) == 0:
                    redeploy.append(float("nan"))
                    continue
                moved = WeightedRedeployment(iterations=20).redeploy(
                    world.field,
                    world.survey(),
                    derive_rng(config.seed, "bench-faults-rd", t, i),
                )
                new_world = TrialWorld(
                    moved, world.realization, world.grid, world.layout, world.localizer
                )
                redeploy.append(outcomes[0].base_mean - new_world.base_stats()[0])
            rows.append(
                (
                    f"{t:g}",
                    float(np.mean(alive)),
                    float(np.mean(base)),
                    *(float(np.mean(gains[a.name])) for a in paper_algorithms),
                    float(np.nanmean(redeploy)) if np.any(np.isfinite(redeploy)) else float("nan"),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_faults",
        (
            "time",
            "alive frac",
            "mean LE (m)",
            *(f"{a.name} gain (m)" for a in paper_algorithms),
            "redeploy-all gain (m)",
        ),
        rows,
    )

    alive_fracs = [r[1] for r in rows]
    base_errors = [r[2] for r in rows]
    # Crash faults are permanent: the surviving set only shrinks.
    assert all(a >= b for a, b in zip(alive_fracs, alive_fracs[1:]))
    # Losing ~86 % of the field must hurt localization.
    assert base_errors[-1] > base_errors[0]
    # On the degraded field, at least one adaptive algorithm still helps.
    worst = rows[-1]
    assert max(worst[3 : 3 + len(paper_algorithms)]) > 0.0
