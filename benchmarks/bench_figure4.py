"""Figure 4 — mean localization error vs beacon density (Ideal).

Paper claims: the mean error falls sharply with density, reaches the
*saturation density* ≈ 0.01 beacons/m² (≈ 7 beacons per coverage area) and
flattens around 4 m ≈ 0.3R; deploying beyond the saturation density buys
almost nothing.
"""

from repro.sim import CurveSet, mean_error_curve


def test_figure4_mean_error_vs_density(benchmark, config, emit):
    curve = benchmark.pedantic(
        lambda: mean_error_curve(config, 0.0), rounds=1, iterations=1
    )
    curve_set = CurveSet(
        "Figure 4: mean localization error vs beacon density (Ideal)",
        [curve],
        meta={"fields_per_density": config.fields_per_density},
    )
    emit("figure4", curve_set)

    values = curve.values
    # Sharp fall to saturation ...
    assert values[0] > 2.0 * min(values)
    # ... and a flat tail: last two sweep points within 15 % of each other.
    assert abs(values[-1] - values[-2]) <= 0.15 * values[-2] + 0.05
    # Saturation level in the right ballpark (paper: ~4 m = 0.27R).
    assert 0.1 <= min(values) / config.radio_range <= 0.45
