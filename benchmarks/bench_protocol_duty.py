"""Extension E12 — duty-cycled beacons through the full protocol stack.

The §1 power motivation executed end to end: beacons sleep through part of
every cycle, clients apply the §2.2 CM_thresh rule, localization quality
follows.  Sweep the awake fraction on a dense field and report decoded
fraction, protocol connectivity, and the §2.2 phase change at
awake ≈ CM_thresh.
"""

import numpy as np

from repro.field import random_uniform_field
from repro.protocol import RadioChannel, Simulator, start_duty_cycled_processes
from repro.radio import IdealDiskModel
from repro.sim import derive_rng


def run_duty_sweep(config, fractions, listen_time=40.0, cm_thresh=0.6):
    realization = IdealDiskModel(config.radio_range).realize(
        derive_rng(config.seed, "duty-real")
    )
    field = random_uniform_field(120, config.side, derive_rng(config.seed, "duty-field"))
    clients = derive_rng(config.seed, "duty-clients").uniform(0, config.side, (30, 2))
    geometric = realization.connectivity(clients, field)

    rows = []
    for fraction in fractions:
        sim = Simulator()
        channel = RadioChannel(
            sim, field, realization, clients, derive_rng(config.seed, "duty-chan", fraction)
        )
        txs = start_duty_cycled_processes(
            sim,
            channel,
            len(field),
            period=1.0,
            message_duration=0.002,
            jitter=0.05,
            rng=derive_rng(config.seed, "duty-tx", fraction),
            cycle_length=8.0,
            awake_fraction=fraction,
        )
        sim.run(until=listen_time)
        for tx in txs:
            tx.stop()
        sim.run()
        sent = np.array([tx.messages_sent + tx.messages_suppressed for tx in txs], float)
        received = channel.received_matrix(len(field)).astype(float)
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(sent[None, :] > 0, received / sent[None, :], 0.0)
        connectivity = frac >= cm_thresh
        rows.append(
            (
                fraction,
                float(frac[geometric].mean()) if geometric.any() else 0.0,
                int(geometric.sum()),
                int(connectivity.sum()),
            )
        )
    return rows


def test_protocol_duty_cycling(benchmark, config, emit_table):
    fractions = (1.0, 0.8, 0.5, 0.3)
    rows = benchmark.pedantic(
        lambda: run_duty_sweep(config, fractions), rounds=1, iterations=1
    )
    emit_table(
        "protocol_duty",
        ("awake fraction", "recv fraction (in range)", "geometric links", "CM_thresh links"),
        rows,
        float_digits=3,
    )

    # Received fraction tracks the duty fraction.
    for fraction, recv, _, _ in rows:
        assert abs(recv - fraction) < 0.15
    # §2.2 phase change: links collapse once awake fraction < CM_thresh (0.6).
    by_fraction = {r[0]: r for r in rows}
    assert by_fraction[0.8][3] >= 0.8 * by_fraction[0.8][2]
    assert by_fraction[0.3][3] <= 0.2 * by_fraction[0.3][2]
