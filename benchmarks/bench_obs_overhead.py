"""Overhead budget of the observability layer (not a paper figure).

The instrumentation in :mod:`repro.obs` is designed to cost nothing when
off (no-op singletons, no branches at record sites) and almost nothing
when on (per-cell spans against cells that run for tens of milliseconds).
This bench pins both claims on a real sweep:

* **off vs on** — the same ``mean_error_curve`` sweep runs with
  observability fully disabled and with metrics + tracing enabled
  (``--profile``'s cProfile is excluded: the deterministic profiler's
  interpreter hook is strictly opt-in diagnostics, never a tier-1 mode);
* **values** — the instrumented sweep must reproduce the uninstrumented
  curve exactly, point for point;
* **budget** — min-of-N wall clock with obs on must stay within 3% of
  obs off (with slack for timer noise on shared CI hosts, see below).

Results land in ``benchmarks/results/obs_overhead.txt``.
"""

import itertools
import time

from repro.obs import ObsSession, read_status, read_trace
from repro.sim import ExperimentConfig, mean_error_curve, resilient_mean_error_curve

# Budget from ISSUE/DESIGN: instrumentation may cost at most 3% of sweep
# wall clock.  Shared CI hosts jitter by a few percent on their own, so the
# assertion allows the budget plus a fixed noise floor while the recorded
# numbers stay honest.
OVERHEAD_BUDGET = 0.03
TIMER_NOISE_FLOOR = 0.04
REPEATS = 5


def _bench_sweep_config() -> ExperimentConfig:
    """A sweep big enough to time (~seconds) but far below paper fidelity."""
    return ExperimentConfig(
        side=150.0,
        radio_range=12.0,
        step=2.0,
        num_grids=100,
        beacon_counts=(30, 60, 120),
        noise_levels=(0.0, 0.3),
        fields_per_density=5,
        seed=99,
    )


def _timed(run) -> tuple[float, object]:
    start = time.perf_counter()
    value = run()
    return time.perf_counter() - start, value


def test_obs_overhead_within_budget(emit_table, tmp_path):
    config = _bench_sweep_config()
    noise = 0.3

    mean_error_curve(config, noise)  # warm imports and allocator

    run_dirs = iter(tmp_path / f"run{i}" for i in range(REPEATS))

    def instrumented():
        with ObsSession(next(run_dirs)):
            return mean_error_curve(config, noise)

    # Interleave the two modes so slow host drift (thermal, co-tenants)
    # hits both equally instead of biasing whichever runs last.
    off_seconds = on_seconds = float("inf")
    plain = observed = None
    for _ in range(REPEATS):
        seconds, plain = _timed(lambda: mean_error_curve(config, noise))
        off_seconds = min(off_seconds, seconds)
        seconds, observed = _timed(instrumented)
        on_seconds = min(on_seconds, seconds)

    # Instrumentation must not perturb the numbers.
    assert observed.values == plain.values
    assert observed.ci_half_widths == plain.ci_half_widths

    # And it must have recorded something real.
    _, records = read_trace(tmp_path / "run0" / "trace.jsonl")
    cells = [r for r in records if r.get("name") == "sweep.cell"]
    assert len(cells) == len(config.beacon_counts) * config.fields_per_density

    overhead = on_seconds / off_seconds - 1.0
    emit_table(
        "obs_overhead",
        ("mode", "best-of-%d (s)" % REPEATS, "overhead"),
        [
            ("obs off", f"{off_seconds:.3f}", "—"),
            ("obs on (metrics+trace)", f"{on_seconds:.3f}", f"{overhead:+.2%}"),
        ],
    )
    assert overhead < OVERHEAD_BUDGET + TIMER_NOISE_FLOOR, (
        f"observability overhead {overhead:.2%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget (+{TIMER_NOISE_FLOOR:.0%} timer slack)"
    )


def test_obs_live_telemetry_overhead_within_budget(emit_table, tmp_path):
    """The streaming additions (status ledger + live metrics dumps + span
    shipping) must fit the same budget on a journaled sweep.

    Both modes run with a fresh journal (so the status ledger, which any
    journaled sweep gets, is present in both); the instrumented mode adds
    metrics + tracing on top — the full ``beaconplace top`` telemetry path.
    """
    config = _bench_sweep_config()
    noise = 0.3
    counter = itertools.count()

    mean_error_curve(config, noise)  # warm imports and allocator

    def journaled(instrument: bool):
        run_dir = tmp_path / f"live{next(counter)}"
        if not instrument:
            return resilient_mean_error_curve(
                config, noise, journal_path=run_dir / "journal.jsonl"
            )
        with ObsSession(run_dir):
            curve = resilient_mean_error_curve(
                config, noise, journal_path=run_dir / "journal.jsonl"
            )
        # The ledger must have settled every cell it saw.
        status = read_status(run_dir)
        assert status["state"] == "complete"
        assert status["cells"]["done"] == status["cells"]["total"]
        return curve

    off_seconds = on_seconds = float("inf")
    plain = observed = None
    for _ in range(REPEATS):
        seconds, plain = _timed(lambda: journaled(False))
        off_seconds = min(off_seconds, seconds)
        seconds, observed = _timed(lambda: journaled(True))
        on_seconds = min(on_seconds, seconds)

    assert observed.values == plain.values
    assert observed.ci_half_widths == plain.ci_half_widths

    overhead = on_seconds / off_seconds - 1.0
    emit_table(
        "obs_live_overhead",
        ("mode", "best-of-%d (s)" % REPEATS, "overhead"),
        [
            ("journaled, obs off", f"{off_seconds:.3f}", "—"),
            ("journaled, live telemetry", f"{on_seconds:.3f}", f"{overhead:+.2%}"),
        ],
    )
    assert overhead < OVERHEAD_BUDGET + TIMER_NOISE_FLOOR, (
        f"live telemetry overhead {overhead:.2%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget (+{TIMER_NOISE_FLOOR:.0%} timer slack)"
    )
