"""Extension E11 — survey tour planning (travel cost of partial surveys).

Partial and active surveys produce unordered measurement sets; the robot
pays for the tour that visits them.  This bench measures the travel savings
of nearest-neighbour + 2-opt planning over naive visiting orders for the
survey shapes the package generates, and sanity-checks against the
serpentine lower bound for lattice sweeps.
"""

import numpy as np

from repro.exploration import ActiveSurveyPlanner, SurveyAgent, path_length, plan_tour
from repro.localization import CentroidLocalizer
from repro.sim import build_world, derive_rng


def test_extension_tour_planning(benchmark, config, emit_table):
    world = build_world(config, 0.0, config.beacon_counts[0], 0)
    agent = SurveyAgent(
        world.field,
        world.realization,
        CentroidLocalizer(config.side, config.policy),
        config.side,
    )
    rng = derive_rng(config.seed, "routing")

    point_sets = {
        "uniform-200": rng.uniform(0, config.side, (200, 2)),
        "active-200": ActiveSurveyPlanner(config.side).run(agent, 200, rng).points,
        "clustered-200": np.clip(
            rng.normal(50.0, 8.0, (200, 2)), 0.0, config.side
        ),
    }

    def run():
        rows = []
        for name, pts in point_sets.items():
            naive = path_length(pts)
            planned = path_length(plan_tour(pts))
            rows.append((name, naive, planned, planned / naive))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_routing",
        ("point set", "naive order (m)", "planned tour (m)", "ratio"),
        rows,
    )

    for _, naive, planned, ratio in rows:
        assert planned <= naive + 1e-9
        assert ratio < 0.6  # planning at least ~2x cheaper than naive order
