"""Ablation A3 — measurement step size (survey cost vs placement quality).

The paper measures every 1 m (P_T = 10201 points).  A real robot pays travel
time per measurement; this bench sweeps step ∈ {1, 2, 5} m and reports the
Grid algorithm's low-density gain next to the survey size — showing how much
coarser instrumentation the algorithm tolerates.
"""

from dataclasses import replace

from repro.placement import GridPlacement
from repro.sim import placement_improvement_curves


def test_ablation_measurement_step(benchmark, config, emit_table):
    cfg = config.with_counts([20]).with_fields(max(config.fields_per_density // 2, 5))

    def run():
        rows = []
        for step in (1.0, 2.0, 5.0):
            stepped = replace(cfg, step=step)
            algorithm = GridPlacement(stepped.grid_layout())
            mean_set, _ = placement_improvement_curves(stepped, 0.0, [algorithm])
            rows.append(
                (
                    f"{step:g} m",
                    stepped.num_measurement_points,
                    mean_set.curves[0].values[0],
                    mean_set.curves[0].ci_half_widths[0],
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "ablation_step",
        ("step", "P_T (survey points)", "grid mean gain (m)", "ci"),
        rows,
    )

    gains = [r[2] for r in rows]
    # All step sizes still deliver positive gains at low density …
    assert min(gains) > 0.0
    # … and a 25× cheaper survey (step 5) retains most of the benefit.
    assert gains[2] >= 0.5 * gains[0]
