"""Extension E1 — adding several beacons at once (§6 future work).

Compares, at low density with the Grid algorithm:

* ``single``      — the paper's setting: one beacon, gain per beacon;
* ``independent`` — k beacons planned from ONE survey with error
  suppression (no re-measurement — what a robot can do in one pass);
* ``sequential``  — greedy place → re-survey → place (k passes).

Expected: sequential ≥ independent ≫ k × nothing; diminishing returns per
beacon as the field approaches saturation.
"""

import numpy as np

from repro.placement import GridPlacement, plan_batch_independent, plan_batch_sequential
from repro.sim import build_world, derive_rng


K = 4


def run_modes(config, count, fields):
    algorithm = GridPlacement(config.grid_layout())
    rows = []
    for mode in ("independent", "sequential"):
        total_gains = []
        for i in range(fields):
            world = build_world(config, 0.0, count, i)
            base_mean, _ = world.base_stats()
            rng = derive_rng(config.seed, "batch", mode, count, i)
            if mode == "independent":
                picks = plan_batch_independent(
                    algorithm,
                    world.survey(),
                    rng,
                    K,
                    suppression_radius=config.radio_range,
                )
                final = world
                for pick in picks:
                    final = final.with_beacon(pick)
            else:
                state = {"world": world}

                def resurvey(pick, _state=state):
                    _state["world"] = _state["world"].with_beacon(pick)
                    return _state["world"].survey()

                plan_batch_sequential(algorithm, world.survey(), rng, K, resurvey)
                final = state["world"]
            final_mean, _ = final.base_stats()
            total_gains.append(base_mean - final_mean)
        rows.append((mode, K, float(np.mean(total_gains)), float(np.mean(total_gains)) / K))
    return rows


def test_extension_batch_placement(benchmark, config, emit_table):
    count = config.beacon_counts[0]
    fields = min(config.fields_per_density, 8)

    rows = benchmark.pedantic(
        lambda: run_modes(config, count, fields), rounds=1, iterations=1
    )

    # Single-beacon reference from the same worlds.
    algorithm = GridPlacement(config.grid_layout())
    singles = []
    for i in range(fields):
        world = build_world(config, 0.0, count, i)
        pick = algorithm.propose(world.survey(), derive_rng(config.seed, "batch1", i))
        singles.append(world.evaluate_candidate(pick)[0])
    rows.insert(0, ("single", 1, float(np.mean(singles)), float(np.mean(singles))))

    emit_table(
        "extension_batch",
        ("mode", "k", "total mean gain (m)", "gain per beacon (m)"),
        rows,
    )

    by_mode = {r[0]: r for r in rows}
    # Batches help more in total than one beacon.
    assert by_mode["independent"][2] > by_mode["single"][2]
    # Greedy re-measurement is at least as good as one-shot planning.
    assert by_mode["sequential"][2] >= 0.9 * by_mode["independent"][2]
    # Diminishing returns: per-beacon gain of a batch below the single gain.
    assert by_mode["sequential"][3] <= by_mode["single"][3] + 1e-9
