"""Figure 9 — performance of the Grid algorithm with noise.

Paper claims: Grid remains clearly the best algorithm under noise; noise
makes *moderate* densities (0.005–0.01 /m²) more improvable with Grid
(improvements of 0.5–1 m where the ideal case had less); median
improvements are relatively unchanged (the algorithms fix hot spots).
"""

import numpy as np

from _noise_figure import noise_figure_curves
from repro.placement import GridPlacement


def test_figure9_grid_with_noise(benchmark, config, emit):
    algorithm = GridPlacement(config.grid_layout())
    mean_set, median_set = benchmark.pedantic(
        lambda: noise_figure_curves(config, algorithm),
        rounds=1,
        iterations=1,
    )
    mean_set.title = "Figure 9a: Grid improvement in mean error (noise sweep)"
    median_set.title = "Figure 9b: Grid improvement in median error (noise sweep)"
    emit("figure9a_mean", mean_set)
    emit("figure9b_median", median_set)

    ideal = np.array(mean_set.curve("Ideal").values)
    noisy = np.array(mean_set.curve("Noise=0.5").values)
    densities = np.array(mean_set.curves[0].densities)

    # Grid gains decline with density.
    assert ideal[0] > ideal[-1]
    # Moderate densities (0.005–0.015) become MORE improvable under noise.
    moderate = (densities >= 0.005) & (densities <= 0.015)
    assert moderate.any()
    assert noisy[moderate].mean() >= ideal[moderate].mean() - 0.02
    # Grid still delivers the biggest low-density gains of the three
    # algorithms even at max noise (cross-checked against Figures 7/8 data
    # through the shared RNG streams; here: strictly positive and large).
    assert noisy[0] > 0.8
