"""Extension E16 — greedy-k over the full lattice vs the paper's algorithms.

The delta-engine (DESIGN.md §13) makes a formerly unaffordable baseline
cheap: greedily minimizing the *actual* post-placement mean LE over every
lattice point, k beacons in sequence.  This bench runs Random/Max/Grid and
:class:`~repro.placement.GreedyKPlacement` through the same
place-and-remeasure loop at an equal measurement budget (one fresh complete
survey per round, k rounds each) and compares the cumulative mean-LE gain.

Greedy-k is the optimization-community upper-ish bound the 2001 paper never
had the compute for; Max/Grid should capture a decent fraction of it at a
tiny fraction of the evaluations.
"""

import numpy as np

from repro.placement import (
    GreedyKPlacement,
    GridPlacement,
    MaxPlacement,
    RandomPlacement,
)
from repro.sim import build_world, derive_rng
from repro.sim.incremental import FieldState

K = 4
SUBSAMPLE = 16  # greedy-k candidate stride over the 10201-point lattice


def test_extension_greedyk_vs_paper_algorithms(benchmark, config, emit_table):
    count = config.beacon_counts[0]
    fields = min(config.fields_per_density, 4)

    def run():
        algorithms = [
            RandomPlacement(),
            MaxPlacement(),
            GridPlacement(config.grid_layout()),
            GreedyKPlacement(k=K, subsample=SUBSAMPLE),
        ]
        gains = {a.name: [] for a in algorithms}
        for i in range(fields):
            base_world = build_world(config, 0.0, count, i)
            base_state = FieldState.from_world(base_world)
            base_mean = base_state.base_stats()[0]
            for algorithm in algorithms:
                rng = derive_rng(config.seed, "greedyk", algorithm.name, i)
                state = base_state
                for _ in range(K):
                    pick = algorithm.propose(
                        state.survey(),
                        rng,
                        state if algorithm.requires_world else None,
                    )
                    state = state.with_beacon(pick)
                gains[algorithm.name].append(base_mean - state.base_stats()[0])
        return {name: float(np.mean(v)) for name, v in gains.items()}

    gains = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            name,
            value,
            value / gains["greedy-k"] if gains["greedy-k"] > 0 else float("nan"),
        )
        for name, value in gains.items()
    ]
    emit_table(
        "extension_greedyk",
        ("algorithm", f"mean gain after +{K} (m)", "fraction of greedy-k"),
        rows,
    )

    # Greedy-k exhaustively minimizes the post-placement mean each round; the
    # heuristics must not beat it, and must still capture real gain.
    assert gains["greedy-k"] >= gains["grid"] - 1e-9
    assert gains["greedy-k"] >= gains["max"] - 1e-9
    assert gains["greedy-k"] >= gains["random"] - 1e-9
    assert gains["grid"] > 0.0
