"""Figure 2 — illustration of the Max algorithm.

The paper's figure shows the measurement lattice and the candidate point.
This bench reproduces it as data on one concrete field: the measured error
surface (as an ASCII heatmap), the argmax point Max selects, and the
resulting improvement — verifying the pick really is the worst lattice
point.
"""

import numpy as np

from repro.placement import MaxPlacement
from repro.sim import bench_config, build_world, derive_rng
from repro.viz import heatmap


def test_figure2_max_illustration(benchmark, emit):
    config = bench_config()
    world = build_world(config, 0.0, 30, 0)

    def run():
        survey = world.survey()
        pick = MaxPlacement().propose(survey, derive_rng(config.seed, "fig2"))
        gain_mean, gain_median = world.evaluate_candidate(pick)
        return survey, pick, gain_mean, gain_median

    survey, pick, gain_mean, gain_median = benchmark(run)

    surface = world.error_surface()
    image = surface.as_image()[::4, ::4]  # decimate for display
    text = heatmap(image.T[::-1], title="localization error surface (darker = worse)")
    text += (
        f"\n\nMax pick: ({pick.x:.1f}, {pick.y:.1f})"
        f"  (worst measured LE = {surface.max_error():.2f} m)"
        f"\nimprovement in mean error:   {gain_mean:.3f} m"
        f"\nimprovement in median error: {gain_median:.3f} m"
    )
    emit("figure2", text)

    idx = world.grid.index_of(pick)
    assert survey.errors[idx] == np.nanmax(survey.errors)
