"""Ablation A6 — the spatial structure of localization error.

Two implicit assumptions in §3.2 get measured here:

* Max: *"points with high localization error are spatially correlated"* —
  Moran's I of the error surface should be strongly positive;
* Grid: the 2R grid side implicitly assumes the error field's correlation
  length is on the order of the radio range — the measured 1/e correlation
  length should sit near R and shrink with noise (which is why Max, which
  relies on pointwise values, degrades before Grid, which averages).
"""

import numpy as np

from repro.sim import build_world
from repro.stats import SpatialSummary


def test_spatial_structure_of_error(benchmark, config, emit_table):
    counts = (config.beacon_counts[0], config.beacon_counts[len(config.beacon_counts) // 2])
    fields = min(config.fields_per_density, 5)

    def run():
        rows = []
        for noise in (0.0, 0.5):
            for count in counts:
                morans, lengths = [], []
                for i in range(fields):
                    world = build_world(config, noise, count, i)
                    summary = SpatialSummary.of_error_surface(world.error_surface())
                    morans.append(summary.morans_i)
                    if np.isfinite(summary.correlation_length):
                        lengths.append(summary.correlation_length)
                rows.append(
                    (
                        noise,
                        count,
                        float(np.mean(morans)),
                        float(np.mean(lengths)) if lengths else float("nan"),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "spatial_correlation",
        ("noise", "beacons", "Moran's I", "corr length (m)"),
        rows,
    )

    # Max's premise holds: error is strongly spatially correlated everywhere.
    assert min(r[2] for r in rows) > 0.3
    # Correlation length is on the order of the radio range (same decade).
    finite = [r[3] for r in rows if np.isfinite(r[3])]
    assert finite
    assert 0.2 * config.radio_range <= np.mean(finite) <= 4.0 * config.radio_range
