"""Figure 3 — illustration of the Grid algorithm's overlapping-grid geometry.

Reproduces the figure's content as data: the N_G = 400 grid centers computed
from the paper's formula (Gc(1,1), Gc(2,2), Gc(5,5) are labelled in the
figure), each grid's side 2R, the per-grid point count P_G, and one worked
placement showing the winning grid's cumulative error.
"""

from repro.placement import GridPlacement
from repro.sim import bench_config, build_world, derive_rng, paper_config


def test_figure3_grid_geometry(benchmark, emit_table):
    paper = paper_config()
    layout = paper.grid_layout()

    def run():
        rows = []
        for i, j in ((1, 1), (2, 2), (5, 5), (20, 20)):
            center = layout.center(i, j)
            rows.append((f"Gc({i},{j})", center.x, center.y))
        return rows

    rows = benchmark(run)

    grid = paper.measurement_grid()
    pg = layout.points_per_grid(grid)
    rows.append(("gridSide", layout.grid_side, layout.grid_side))
    rows.append(("P_G min/max", float(pg.min()), float(pg.max())))
    emit_table("figure3", ("quantity", "x / min", "y / max"), rows)

    # Paper formula spot-checks: Gc(1,1) = (15, 15); spacing 70/19.
    assert rows[0][1] == 15.0 and rows[0][2] == 15.0
    assert abs(rows[1][1] - (15.0 + 70.0 / 19.0)) < 1e-9
    assert rows[3][1] == 85.0  # Gc(20,20) flush with the far border


def test_figure3_worked_placement(benchmark, emit):
    config = bench_config()
    world = build_world(config, 0.0, 30, 1)
    algorithm = GridPlacement(world.layout)

    def run():
        survey = world.survey()
        scores = algorithm.cumulative_errors(survey)
        pick = algorithm.propose(survey, derive_rng(config.seed, "fig3"))
        return scores, pick

    scores, pick = benchmark(run)
    gain_mean, _ = world.evaluate_candidate(pick)
    emit(
        "figure3_worked",
        (
            f"winning grid center: ({pick.x:.2f}, {pick.y:.2f})\n"
            f"winning cumulative error S(i,j): {scores.max():.1f} m over "
            f"{world.layout.points_per_grid(world.grid).max()} points\n"
            f"improvement in mean error: {gain_mean:.3f} m"
        ),
    )
    assert scores.shape == (world.layout.num_grids,)
    assert gain_mean > 0.0
