"""Performance of the hot kernels (not a paper figure — engineering checks).

Every figure bench runs millions of candidate evaluations; these
micro-benchmarks time the four kernels that dominate and pin the complexity
claim DESIGN.md makes: evaluating a candidate beacon through the cached
centroid state is O(P) and therefore much cheaper than re-evaluating the
whole field.
"""

import time

import numpy as np

from repro.localization import localization_errors
from repro.sim import build_world, paper_config


def _world():
    # Full paper geometry: 10201 lattice points, 120 beacons, noise on.
    return build_world(paper_config(), 0.3, 120, 0)


def test_perf_connectivity_matrix(benchmark):
    world = _world()
    points = world.points()

    def run():
        return world.realization.connectivity(points, world.field)

    conn = benchmark(run)
    assert conn.shape == (10201, 120)


def test_perf_full_error_surface(benchmark):
    world = _world()
    world.connectivity()  # pre-warm the connectivity cache

    def run():
        # Force the full localization pass (state + estimates + errors).
        world._errors = None
        world._state = None
        return world.errors()

    errors = benchmark(run)
    assert errors.shape == (10201,)


def test_perf_candidate_evaluation(benchmark):
    world = _world()
    world.errors()  # warm all caches, as in the sweep inner loop

    def run():
        return world.evaluate_candidate((37.0, 53.0))

    gain_mean, gain_median = benchmark(run)
    assert np.isfinite(gain_mean) and np.isfinite(gain_median)


def test_perf_grid_cumulative_scores(benchmark):
    from repro.placement import GridPlacement

    world = _world()
    survey = world.survey()
    algorithm = GridPlacement(world.layout)
    algorithm.cumulative_errors(survey)  # warm the mask cache

    scores = benchmark(algorithm.cumulative_errors, survey)
    assert scores.shape == (400,)


def test_incremental_candidate_beats_full_recompute(benchmark, emit_table):
    """The O(P) claim, measured: cached-state candidate evaluation must be
    several times faster than re-running the full localization pass."""
    world = _world()
    world.errors()

    incremental = benchmark(lambda: world.errors_with_candidate((37.0, 53.0)))
    assert incremental.shape == (10201,)
    incremental_time = benchmark.stats.stats.mean

    extended = world.field.with_beacon_at((37.0, 53.0))

    def full():
        conn = world.realization.connectivity(world.points(), extended)
        est = world.localizer.estimate(conn, extended.positions(), world.points())
        return localization_errors(est, world.points())

    repeats = 5
    start = time.perf_counter()
    for _ in range(repeats):
        full()
    recompute_time = (time.perf_counter() - start) / repeats

    emit_table(
        "perf_incremental",
        ("path", "seconds per candidate"),
        [
            ("incremental (cached state)", incremental_time),
            ("full recompute", recompute_time),
        ],
        float_digits=5,
    )
    assert incremental_time < recompute_time / 3.0
