"""Performance of the hot kernels (not a paper figure — engineering checks).

Every figure bench runs millions of candidate evaluations; these
micro-benchmarks time the four kernels that dominate and pin the complexity
claim DESIGN.md makes: evaluating a candidate beacon through the cached
centroid state is O(P) and therefore much cheaper than re-evaluating the
whole field.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.localization import localization_errors
from repro.sim import (
    ExperimentConfig,
    PoolExecutor,
    build_world,
    paper_config,
    run_cells,
    set_kernel_mode,
)
from repro.sim.resilient import _mean_error_cell

RESULTS_DIR = Path(__file__).parent / "results"


def _world():
    # Full paper geometry: 10201 lattice points, 120 beacons, noise on.
    return build_world(paper_config(), 0.3, 120, 0)


def test_perf_connectivity_matrix(benchmark):
    world = _world()
    points = world.points()

    def run():
        return world.realization.connectivity(points, world.field)

    conn = benchmark(run)
    assert conn.shape == (10201, 120)


def test_perf_full_error_surface(benchmark):
    world = _world()
    world.connectivity()  # pre-warm the connectivity cache

    def run():
        # Force the full localization pass (state + estimates + errors).
        world._errors = None
        world._state = None
        return world.errors()

    errors = benchmark(run)
    assert errors.shape == (10201,)


def test_perf_candidate_evaluation(benchmark):
    world = _world()
    world.errors()  # warm all caches, as in the sweep inner loop

    def run():
        return world.evaluate_candidate((37.0, 53.0))

    gain_mean, gain_median = benchmark(run)
    assert np.isfinite(gain_mean) and np.isfinite(gain_median)


def test_perf_grid_cumulative_scores(benchmark):
    from repro.placement import GridPlacement

    world = _world()
    survey = world.survey()
    algorithm = GridPlacement(world.layout)
    algorithm.cumulative_errors(survey)  # warm the mask cache

    scores = benchmark(algorithm.cumulative_errors, survey)
    assert scores.shape == (400,)


def test_incremental_candidate_beats_full_recompute(benchmark, emit_table):
    """The O(P) claim, measured: cached-state candidate evaluation must be
    several times faster than re-running the full localization pass."""
    world = _world()
    world.errors()

    incremental = benchmark(lambda: world.errors_with_candidate((37.0, 53.0)))
    assert incremental.shape == (10201,)
    incremental_time = benchmark.stats.stats.mean

    extended = world.field.with_beacon_at((37.0, 53.0))

    def full():
        conn = world.realization.connectivity(world.points(), extended)
        est = world.localizer.estimate(conn, extended.positions(), world.points())
        return localization_errors(est, world.points())

    repeats = 5
    start = time.perf_counter()
    for _ in range(repeats):
        full()
    recompute_time = (time.perf_counter() - start) / repeats

    emit_table(
        "perf_incremental",
        ("path", "seconds per candidate"),
        [
            ("incremental (cached state)", incremental_time),
            ("full recompute", recompute_time),
        ],
        float_digits=5,
    )
    assert incremental_time < recompute_time / 3.0


# -- Batched kernels: the sweep-level floor ----------------------------------

#: Acceptance bars for the vectorized kernels on the reference sweep (see
#: DESIGN.md §10): batched serial evaluation must beat the legacy scalar
#: serial path by this factor, and the chunked pool — which now plans each
#: chunk through the same kernels and attaches the shared-memory world
#: state — must beat scalar serial even on a small host.
MIN_BATCH_SERIAL_SPEEDUP = 3.0
MIN_POOL_OVER_SCALAR_SERIAL = 1.3

#: The CI perf-smoke job reduces the sweep (REPRO_BENCH_CELLS) so the floor
#: check fits a shared runner; the recorded numbers in
#: ``results/BENCH_kernels.json`` come from the full 600-cell reference.
SWEEP_CELLS = int(os.environ.get("REPRO_BENCH_CELLS", "600"))
SWEEP_ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "4"))
SWEEP_WORKERS = 2
SWEEP_CHUNK = 32


def test_batched_sweep_beats_scalar(emit_table):
    """The tentpole claim, measured: one (T × P × N) kernel pass per chunk
    must clearly beat per-cell scalar evaluation on the reference sweep,
    and produce bit-identical results while doing it."""
    import warnings

    warnings.filterwarnings("ignore", message=".*oversubscribes.*")
    config = ExperimentConfig(
        side=60.0,
        radio_range=12.0,
        step=5.0,
        num_grids=100,
        beacon_counts=(8,),
        noise_levels=(0.0,),
        fields_per_density=4,
        seed=7,
    )
    jobs = [
        ((0.0, 8, index), (config, 0.0, 8, index, None, 0.0))
        for index in range(SWEEP_CELLS)
    ]
    warm = jobs[:8]

    pool = PoolExecutor(workers=SWEEP_WORKERS, chunk=SWEEP_CHUNK)
    modes = {
        "serial scalar (legacy)": ("scalar", None),
        "serial batched": ("batch", None),
        f"pool batched (workers={SWEEP_WORKERS}, chunk={SWEEP_CHUNK})": (
            "batch",
            pool,
        ),
    }
    best = {name: float("inf") for name in modes}
    results = {}
    try:
        for kernels, executor in modes.values():
            set_kernel_mode(kernels)
            run_cells(warm, _mean_error_cell, executor=executor)
        for _ in range(SWEEP_ROUNDS):
            for name, (kernels, executor) in modes.items():
                set_kernel_mode(kernels)
                start = time.perf_counter()
                results[name] = run_cells(jobs, _mean_error_cell, executor=executor)
                best[name] = min(best[name], time.perf_counter() - start)
    finally:
        set_kernel_mode("batch")
        pool.close()

    scalar, batched, pooled = list(modes)
    for name, values in results.items():
        assert values == results[scalar], f"{name} diverged from scalar serial"

    serial_speedup = best[scalar] / best[batched]
    pool_speedup = best[scalar] / best[pooled]
    emit_table(
        "perf_kernels",
        ("mode", "best-of-%d (s)" % SWEEP_ROUNDS, "vs scalar serial"),
        [
            (name, f"{seconds:.3f}", f"{best[scalar] / seconds:.2f}x")
            for name, seconds in best.items()
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "sweep": {
            "cells": SWEEP_CELLS,
            "config": "side=60 range=12 step=5 beacons=8",
        },
        "workers": SWEEP_WORKERS,
        "chunk": SWEEP_CHUNK,
        "rounds": SWEEP_ROUNDS,
        "best_seconds": {name: round(seconds, 4) for name, seconds in best.items()},
        "batched_serial_speedup_over_scalar": round(serial_speedup, 3),
        "pool_speedup_over_scalar_serial": round(pool_speedup, 3),
        "min_batched_serial_speedup": MIN_BATCH_SERIAL_SPEEDUP,
        "min_pool_over_scalar_serial": MIN_POOL_OVER_SCALAR_SERIAL,
    }
    with (RESULTS_DIR / "BENCH_kernels.json").open("w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

    assert serial_speedup >= MIN_BATCH_SERIAL_SPEEDUP, (
        f"batched serial is only {serial_speedup:.2f}x faster than scalar "
        f"serial (needs >= {MIN_BATCH_SERIAL_SPEEDUP}x)"
    )
    assert pool_speedup >= MIN_POOL_OVER_SCALAR_SERIAL, (
        f"batched pool is only {pool_speedup:.2f}x faster than scalar "
        f"serial (needs >= {MIN_POOL_OVER_SCALAR_SERIAL}x)"
    )
