"""Performance of the hot kernels (not a paper figure — engineering checks).

Every figure bench runs millions of candidate evaluations; these
micro-benchmarks time the four kernels that dominate and pin the complexity
claim DESIGN.md makes: evaluating a candidate beacon through the cached
centroid state is O(P) and therefore much cheaper than re-evaluating the
whole field.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.localization import localization_errors
from repro.sim import (
    ExperimentConfig,
    PoolExecutor,
    build_world,
    paper_config,
    run_cells,
    set_kernel_mode,
)
from repro.sim.resilient import _mean_error_cell

RESULTS_DIR = Path(__file__).parent / "results"


def _world():
    # Full paper geometry: 10201 lattice points, 120 beacons, noise on.
    return build_world(paper_config(), 0.3, 120, 0)


def test_perf_connectivity_matrix(benchmark):
    world = _world()
    points = world.points()

    def run():
        return world.realization.connectivity(points, world.field)

    conn = benchmark(run)
    assert conn.shape == (10201, 120)


def test_perf_full_error_surface(benchmark):
    world = _world()
    world.connectivity()  # pre-warm the connectivity cache

    def run():
        # Force the full localization pass (state + estimates + errors).
        world._errors = None
        world._state = None
        return world.errors()

    errors = benchmark(run)
    assert errors.shape == (10201,)


def test_perf_candidate_evaluation(benchmark):
    world = _world()
    world.errors()  # warm all caches, as in the sweep inner loop

    def run():
        return world.evaluate_candidate((37.0, 53.0))

    gain_mean, gain_median = benchmark(run)
    assert np.isfinite(gain_mean) and np.isfinite(gain_median)


def test_perf_grid_cumulative_scores(benchmark):
    from repro.placement import GridPlacement

    world = _world()
    survey = world.survey()
    algorithm = GridPlacement(world.layout)
    algorithm.cumulative_errors(survey)  # warm the mask cache

    scores = benchmark(algorithm.cumulative_errors, survey)
    assert scores.shape == (400,)


# -- Incremental delta-engine: scan vs full recompute -------------------------

#: Acceptance bars for the delta-engine (DESIGN.md §13): a Max-style survey
#: scan of the top candidates must beat per-candidate full rebuilds by an
#: order of magnitude, and the greedy-k inner iteration — where one batched
#: connectivity pass amortizes over the whole lattice — by more.
MIN_SURVEY_SCAN_SPEEDUP = 10.0
MIN_GREEDY_ITER_SPEEDUP = 25.0

#: The CI incremental-smoke job reduces the candidate counts so the check
#: fits a shared runner; the recorded numbers in
#: ``results/BENCH_incremental.json`` come from the full reference run.
INCR_CANDIDATES = int(os.environ.get("REPRO_BENCH_INCR_CANDIDATES", "64"))
GREEDY_CANDIDATES = int(os.environ.get("REPRO_BENCH_GREEDY_CANDIDATES", "400"))
INCR_ROUNDS = int(os.environ.get("REPRO_BENCH_INCR_ROUNDS", "3"))
INCR_FULL_REPEATS = int(os.environ.get("REPRO_BENCH_INCR_FULL_REPEATS", "3"))


def test_incremental_scan_beats_full_recompute():
    """The delta-engine claim, measured: scanning K add-candidates through
    one :class:`FieldState` (one base field + K cheap deltas) must be an
    order of magnitude cheaper per candidate than rebuilding the world, on
    both a 64-candidate Max survey scan and a greedy-k lattice round."""
    from repro.placement import MaxPlacement
    from repro.sim.incremental import FieldState

    world = _world()
    world.errors()
    state = FieldState.from_world(world)
    survey = world.survey()

    top = MaxPlacement().top_candidates(survey, INCR_CANDIDATES)
    stride = max(1, survey.points.shape[0] // GREEDY_CANDIDATES)
    lattice = survey.points[::stride]

    def full(position):
        extended = world.field.with_beacon_at(tuple(position))
        conn = world.realization.connectivity(world.points(), extended)
        est = world.localizer.estimate(conn, extended.positions(), world.points())
        return localization_errors(est, world.points())

    full_best = float("inf")
    for _ in range(INCR_ROUNDS):
        start = time.perf_counter()
        for position in top[:INCR_FULL_REPEATS]:
            full(position)
        full_best = min(
            full_best, (time.perf_counter() - start) / INCR_FULL_REPEATS
        )

    scan_best = greedy_best = float("inf")
    scan_means = None
    for _ in range(INCR_ROUNDS):
        start = time.perf_counter()
        scan_means = state.scan_add_candidates(top)
        scan_best = min(
            scan_best, (time.perf_counter() - start) / top.shape[0]
        )
        start = time.perf_counter()
        state.scan_add_candidates(lattice)
        greedy_best = min(
            greedy_best, (time.perf_counter() - start) / lattice.shape[0]
        )

    # Spot-check: the engine's scan agrees with the full rebuild (byte-level
    # identity of committed deltas is pinned in tests/test_sim_incremental.py;
    # the O(P) peek is allclose by design).
    spot = np.array(
        [float(np.nanmean(full(p))) for p in top[:INCR_FULL_REPEATS]]
    )
    assert np.allclose(scan_means[:INCR_FULL_REPEATS], spot)

    survey_speedup = full_best / scan_best
    greedy_speedup = full_best / greedy_best
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "sweep": {
            "config": "paper side=100 range=15 step=1 beacons=120 noise=0.3",
            "scan_candidates": int(top.shape[0]),
            "greedy_candidates": int(lattice.shape[0]),
            "full_repeats": INCR_FULL_REPEATS,
        },
        "rounds": INCR_ROUNDS,
        "best_seconds": {
            "full_rebuild_per_candidate": round(full_best, 5),
            "engine_scan_per_candidate": round(scan_best, 5),
            "greedy_iteration_per_candidate": round(greedy_best, 5),
        },
        "survey_scan_speedup_over_full": round(survey_speedup, 3),
        "greedy_iter_speedup_over_full": round(greedy_speedup, 3),
        "min_survey_scan_speedup": MIN_SURVEY_SCAN_SPEEDUP,
        "min_greedy_iter_speedup": MIN_GREEDY_ITER_SPEEDUP,
    }
    with (RESULTS_DIR / "BENCH_incremental.json").open("w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

    assert survey_speedup >= MIN_SURVEY_SCAN_SPEEDUP, (
        f"engine survey scan is only {survey_speedup:.1f}x faster than full "
        f"rebuilds (needs >= {MIN_SURVEY_SCAN_SPEEDUP}x)"
    )
    assert greedy_speedup >= MIN_GREEDY_ITER_SPEEDUP, (
        f"greedy-k iteration is only {greedy_speedup:.1f}x faster than full "
        f"rebuilds (needs >= {MIN_GREEDY_ITER_SPEEDUP}x)"
    )


# -- Batched kernels: the sweep-level floor ----------------------------------

#: Acceptance bars for the vectorized kernels on the reference sweep (see
#: DESIGN.md §10): batched serial evaluation must beat the legacy scalar
#: serial path by this factor, and the chunked pool — which now plans each
#: chunk through the same kernels and attaches the shared-memory world
#: state — must beat scalar serial even on a small host.
MIN_BATCH_SERIAL_SPEEDUP = 3.0
MIN_POOL_OVER_SCALAR_SERIAL = 1.3

#: The CI perf-smoke job reduces the sweep (REPRO_BENCH_CELLS) so the floor
#: check fits a shared runner; the recorded numbers in
#: ``results/BENCH_kernels.json`` come from the full 600-cell reference.
SWEEP_CELLS = int(os.environ.get("REPRO_BENCH_CELLS", "600"))
SWEEP_ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "4"))
SWEEP_WORKERS = 2
SWEEP_CHUNK = 32


def test_batched_sweep_beats_scalar(emit_table):
    """The tentpole claim, measured: one (T × P × N) kernel pass per chunk
    must clearly beat per-cell scalar evaluation on the reference sweep,
    and produce bit-identical results while doing it."""
    import warnings

    warnings.filterwarnings("ignore", message=".*oversubscribes.*")
    config = ExperimentConfig(
        side=60.0,
        radio_range=12.0,
        step=5.0,
        num_grids=100,
        beacon_counts=(8,),
        noise_levels=(0.0,),
        fields_per_density=4,
        seed=7,
    )
    jobs = [
        ((0.0, 8, index), (config, 0.0, 8, index, None, 0.0))
        for index in range(SWEEP_CELLS)
    ]
    warm = jobs[:8]

    pool = PoolExecutor(workers=SWEEP_WORKERS, chunk=SWEEP_CHUNK)
    modes = {
        "serial scalar (legacy)": ("scalar", None),
        "serial batched": ("batch", None),
        f"pool batched (workers={SWEEP_WORKERS}, chunk={SWEEP_CHUNK})": (
            "batch",
            pool,
        ),
    }
    best = {name: float("inf") for name in modes}
    results = {}
    try:
        for kernels, executor in modes.values():
            set_kernel_mode(kernels)
            run_cells(warm, _mean_error_cell, executor=executor)
        for _ in range(SWEEP_ROUNDS):
            for name, (kernels, executor) in modes.items():
                set_kernel_mode(kernels)
                start = time.perf_counter()
                results[name] = run_cells(jobs, _mean_error_cell, executor=executor)
                best[name] = min(best[name], time.perf_counter() - start)
    finally:
        set_kernel_mode("batch")
        pool.close()

    scalar, batched, pooled = list(modes)
    for name, values in results.items():
        assert values == results[scalar], f"{name} diverged from scalar serial"

    serial_speedup = best[scalar] / best[batched]
    pool_speedup = best[scalar] / best[pooled]
    emit_table(
        "perf_kernels",
        ("mode", "best-of-%d (s)" % SWEEP_ROUNDS, "vs scalar serial"),
        [
            (name, f"{seconds:.3f}", f"{best[scalar] / seconds:.2f}x")
            for name, seconds in best.items()
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "sweep": {
            "cells": SWEEP_CELLS,
            "config": "side=60 range=12 step=5 beacons=8",
        },
        "workers": SWEEP_WORKERS,
        "chunk": SWEEP_CHUNK,
        "rounds": SWEEP_ROUNDS,
        "best_seconds": {name: round(seconds, 4) for name, seconds in best.items()},
        "batched_serial_speedup_over_scalar": round(serial_speedup, 3),
        "pool_speedup_over_scalar_serial": round(pool_speedup, 3),
        "min_batched_serial_speedup": MIN_BATCH_SERIAL_SPEEDUP,
        "min_pool_over_scalar_serial": MIN_POOL_OVER_SCALAR_SERIAL,
    }
    with (RESULTS_DIR / "BENCH_kernels.json").open("w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

    assert serial_speedup >= MIN_BATCH_SERIAL_SPEEDUP, (
        f"batched serial is only {serial_speedup:.2f}x faster than scalar "
        f"serial (needs >= {MIN_BATCH_SERIAL_SPEEDUP}x)"
    )
    assert pool_speedup >= MIN_POOL_OVER_SCALAR_SERIAL, (
        f"batched pool is only {pool_speedup:.2f}x faster than scalar "
        f"serial (needs >= {MIN_POOL_OVER_SCALAR_SERIAL}x)"
    )
