"""Figure 6 — mean localization error vs beacon density under noise
(Noise ∈ {0, 0.1, 0.3, 0.5}).

Paper claims: a steady increase in mean localization error at every density
as noise grows (up to ≈33 %), and a saturation density that moves right by
up to ≈50 % (0.01 → 0.015 /m²).  The general fall-then-flatten trend of
Figure 4 is preserved.  (See DESIGN.md on the CM_thresh interpretation of
the noise model that reproduces these magnitudes.)
"""

import numpy as np

from repro.sim import CurveSet, PAPER_NOISE_LEVELS, mean_error_curve


def test_figure6_mean_error_with_noise(benchmark, config, emit):
    def run():
        return [mean_error_curve(config, noise) for noise in PAPER_NOISE_LEVELS]

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    curve_set = CurveSet(
        "Figure 6: mean localization error vs density (Noise sweep)", curves
    )
    emit("figure6", curve_set)

    ideal = np.array(curves[0].values)
    worst = np.array(curves[-1].values)  # Noise = 0.5

    # Steady increase: noise=0.5 above ideal at (almost) every density.
    assert (worst >= ideal - 1e-6).mean() >= 0.8
    # Magnitude: the largest relative increase lands in the paper's range.
    rel = (worst - ideal) / np.maximum(ideal, 1e-9)
    assert rel.max() > 0.10
    # Monotone in noise at the low-density end.
    low_end = [c.values[1] for c in curves]
    assert low_end[0] <= low_end[-1]
    # Trend preserved: still falls sharply with density under max noise.
    assert worst[0] > 2.0 * worst.min()
