"""Executor scaling: serial vs per-cell pool vs chunked pool vs socket.

Paper-fidelity sweeps spend their time in orchestration once the kernels
are incremental (see ``results/BENCH_incremental.json``): one pickled task
per cell and a rebuilt world per cell.  This bench pins the wins of the
:mod:`repro.sim.executors` rework on a small paper-geometry sweep:

* **per-cell pool** — ``PoolExecutor(chunk=1)``: the dispatch granularity
  of the legacy pool (one pickled round-trip per cell);
* **chunked pool** — ``PoolExecutor(chunk=32)``: one round-trip carries 32
  cells, so pickle/pipe/future overhead is amortized ~32×.  Must be at
  least ``MIN_CHUNKED_SPEEDUP`` faster than per-cell dispatch;
* **socket** — ``SocketExecutor`` serving two ``run_worker`` processes
  over loopback TCP: the multi-machine path, recorded for scale (base64 +
  JSON framing costs more than a local pipe; no assertion);
* **values** — every backend must reproduce the serial results exactly.

Worker start-up (spawn re-imports the package) is excluded by warming each
executor with a small sweep first — executors keep their pools/connections
across ``run_cells`` sessions, so real multi-panel runs pay start-up once
too.  Modes are interleaved across rounds and scored best-of-N to shrug
off co-tenant noise on shared hosts.

Results land in ``benchmarks/results/dist_executor.txt`` and
``benchmarks/results/BENCH_executors.json``.
"""

import json
import time
import warnings
from pathlib import Path

from repro.sim import (
    ExperimentConfig,
    PoolExecutor,
    SocketExecutor,
    run_cells,
    run_worker,
    spawn_context,
)
from repro.sim.resilient import _mean_error_cell

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance bar: chunked dispatch must beat per-cell dispatch by this
#: factor on the bench sweep (the whole point of shipping B cells per
#: round-trip).
MIN_CHUNKED_SPEEDUP = 1.5

ROUNDS = 4
CELLS = 600
CHUNK = 32
WORKERS = 2


def _bench_sweep_config() -> ExperimentConfig:
    """Paper geometry, cells small enough that dispatch overhead shows.

    Orchestration cost per cell is roughly constant, so the lighter the
    cell the starker the per-cell vs chunked contrast — this mirrors the
    paper's low-density cells, which are the cheap, numerous ones.
    """
    return ExperimentConfig(
        side=60.0,
        radio_range=12.0,
        step=5.0,
        num_grids=100,
        beacon_counts=(8,),
        noise_levels=(0.0,),
        fields_per_density=4,
        seed=7,
    )


def _socket_worker_main(host, port):
    run_worker((host, port), connect_timeout=120.0)


def test_dist_executor_scaling(emit_table):
    warnings.filterwarnings("ignore", message=".*oversubscribes.*")
    config = _bench_sweep_config()
    jobs = [
        ((0.0, 8, index), (config, 0.0, 8, index, None, 0.0))
        for index in range(CELLS)
    ]
    warm = jobs[:8]

    ctx = spawn_context()
    socket_executor = SocketExecutor(chunk=CHUNK)
    host, port = socket_executor.address
    socket_workers = [
        ctx.Process(target=_socket_worker_main, args=(host, port), daemon=True)
        for _ in range(WORKERS)
    ]
    for proc in socket_workers:
        proc.start()

    modes = {
        "serial": None,
        f"pool per-cell (workers={WORKERS}, chunk=1)": PoolExecutor(
            workers=WORKERS, chunk=1
        ),
        f"pool chunked (workers={WORKERS}, chunk={CHUNK})": PoolExecutor(
            workers=WORKERS, chunk=CHUNK
        ),
        f"socket ({WORKERS} workers, chunk={CHUNK})": socket_executor,
    }
    per_cell, chunked = list(modes)[1], list(modes)[2]
    best = {name: float("inf") for name in modes}
    results = {}
    try:
        for executor in modes.values():
            run_cells(warm, _mean_error_cell, executor=executor)
        for _ in range(ROUNDS):
            for name, executor in modes.items():
                start = time.perf_counter()
                results[name] = run_cells(jobs, _mean_error_cell, executor=executor)
                best[name] = min(best[name], time.perf_counter() - start)
    finally:
        for executor in modes.values():
            if executor is not None:
                executor.close()
    for proc in socket_workers:
        proc.join(timeout=30.0)

    # Every backend must reproduce the serial sweep exactly.
    for name, values in results.items():
        assert values == results["serial"], f"{name} diverged from serial"

    speedup = best[per_cell] / best[chunked]
    emit_table(
        "dist_executor",
        ("executor", "best-of-%d (s)" % ROUNDS, "vs per-cell pool"),
        [
            (name, f"{seconds:.3f}", f"{best[per_cell] / seconds:.2f}x")
            for name, seconds in best.items()
        ],
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "sweep": {"cells": CELLS, "config": "side=60 range=12 step=5 beacons=8"},
        "workers": WORKERS,
        "chunk": CHUNK,
        "rounds": ROUNDS,
        "best_seconds": {name: round(seconds, 4) for name, seconds in best.items()},
        "chunked_speedup_over_per_cell": round(speedup, 3),
        "min_required_speedup": MIN_CHUNKED_SPEEDUP,
    }
    with (RESULTS_DIR / "BENCH_executors.json").open("w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

    assert speedup >= MIN_CHUNKED_SPEEDUP, (
        f"chunked pool is only {speedup:.2f}x faster than per-cell dispatch "
        f"(needs >= {MIN_CHUNKED_SPEEDUP}x)"
    )
