"""Extension E6 — partial, noisy exploration (§3.1 generalization).

The paper's evaluation assumes complete terrain exploration with no
measurement noise and flags the general case as open.  This bench runs the
Grid algorithm on surveys collected by a real agent along different paths —
complete boustrophedon sweep, lawnmower at 2/5/10 m track spacing, random
walk — with and without 2 m GPS error, reporting placement gain per meter
of robot travel.
"""

import numpy as np

from repro.exploration import (
    GpsErrorModel,
    SurveyAgent,
    boustrophedon_sweep,
    lawnmower_path,
    path_length,
    random_walk_path,
)
from repro.localization import CentroidLocalizer
from repro.placement import GridPlacement
from repro.sim import build_world, derive_rng


def survey_plans(config):
    grid = config.measurement_grid()
    return [
        ("full sweep", boustrophedon_sweep(grid)),
        ("lawnmower 5m", lawnmower_path(config.side, 5.0, config.step)),
        ("lawnmower 10m", lawnmower_path(config.side, 10.0, config.step)),
        ("random walk", random_walk_path(
            config.side, 2500, 2.0, derive_rng(config.seed, "walkpath")
        )),
    ]


def run_exploration(config, gps_sigma, fields):
    count = config.beacon_counts[0]
    algorithm = GridPlacement(config.grid_layout())
    gps = GpsErrorModel(gps_sigma, clamp_side=config.side) if gps_sigma > 0 else None
    rows = []
    for label, path in survey_plans(config):
        gains = []
        for i in range(fields):
            world = build_world(config, 0.3, count, i)
            agent = SurveyAgent(
                world.field,
                world.realization,
                CentroidLocalizer(config.side, config.policy),
                config.side,
                gps=gps,
            )
            survey = agent.measure_at(
                path, derive_rng(config.seed, "explore", label, gps_sigma, i)
            )
            pick = algorithm.propose(
                survey, derive_rng(config.seed, "explore-alg", label, i)
            )
            gains.append(world.evaluate_candidate(pick)[0])
        rows.append(
            (
                label,
                f"{gps_sigma:g}",
                path.shape[0],
                float(path_length(path)),
                float(np.mean(gains)),
            )
        )
    return rows


def test_extension_partial_exploration(benchmark, config, emit_table):
    fields = min(config.fields_per_density, 5)

    def run():
        return run_exploration(config, 0.0, fields) + run_exploration(config, 2.0, fields)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_exploration",
        ("path", "gps sigma (m)", "measurements", "travel (m)", "grid mean gain (m)"),
        rows,
    )

    by_key = {(r[0], r[1]): r for r in rows}
    full = by_key[("full sweep", "0")]
    coarse = by_key[("lawnmower 10m", "0")]
    # Grid tolerates drastically cheaper surveys …
    assert coarse[3] < 0.25 * full[3]
    assert coarse[4] > 0.4 * full[4]
    # … and moderate GPS error.
    noisy_full = by_key[("full sweep", "2")]
    assert noisy_full[4] > 0.4 * full[4]
