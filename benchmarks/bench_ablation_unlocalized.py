"""Ablation A1 — the unlocalizable-point policy.

The paper never specifies the position estimate for clients hearing zero
beacons; DESIGN.md documents our default (TERRAIN_CENTER).  This bench
quantifies how each policy shifts the Figure-4 curve: the low-density anchor
moves by many meters, the saturated region barely at all — evidence that the
policy choice matters exactly where the paper's curves are anchored.
"""

from dataclasses import replace

from repro.localization import UnlocalizedPolicy
from repro.sim import CurveSet, mean_error_curve


POLICIES = (
    UnlocalizedPolicy.TERRAIN_CENTER,
    UnlocalizedPolicy.NEAREST_BEACON,
    UnlocalizedPolicy.EXCLUDE,
    UnlocalizedPolicy.ZERO_ERROR,
)


def test_ablation_unlocalized_policy(benchmark, config, emit):
    small = config.with_fields(max(config.fields_per_density // 2, 3))

    def run():
        curves = []
        for policy in POLICIES:
            cfg = replace(small, policy=policy)
            curves.append(
                replace(mean_error_curve(cfg, 0.0), label=policy.value)
            )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_unlocalized",
        CurveSet("A1: mean error vs density by unlocalized-point policy", curves),
    )

    by_label = {c.label: c for c in curves}
    low, high = 0, -1
    # ZERO_ERROR is the most charitable, TERRAIN_CENTER more pessimistic.
    assert by_label["zero_error"].values[low] < by_label["terrain_center"].values[low]
    # EXCLUDE ignores uncovered points entirely → lowest-looking low-density error.
    assert by_label["exclude"].values[low] < by_label["terrain_center"].values[low]
    # At saturation (full coverage) every policy agrees.
    values_at_top = [c.values[high] for c in curves]
    assert max(values_at_top) - min(values_at_top) < 0.3
