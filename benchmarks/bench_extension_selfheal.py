"""Extension E15 — closed-loop self-healing vs unattended degradation.

E14 (``bench_timeline``) records how a beacon field dies; this bench asks
what a repair budget buys.  The same three fault families run through
:func:`repro.selfheal.selfheal_timeline` twice over paired fields and fault
realizations: a monitor-only baseline arm, and an arm where the closed-loop
controller (threshold breach -> fault-aware add-k / survivor redeployment /
blind drops, with hysteresis and a hard beacon budget) fights back.

Expected shape on the crash schedule: both arms breach the mean-LE
threshold together as exponential lifetimes thin the field; the controller
arm then buys its error back under the threshold within a sample period or
two (finite time-to-recover) while the unattended arm never returns, and
the area under the degradation curve shrinks by well over half.  Battery
fields collapse entirely without repair, so there the controller's value
shows up as surviving beacons after the lifetime band.  Bootstrap CIs and
every repair decision are seed-derived: rerunning reproduces the recorded
results bit for bit at a given fidelity.
"""

from pathlib import Path

import numpy as np

from repro.faults import BatteryFault, CrashFault, IntermittentFault
from repro.selfheal import ControllerConfig, selfheal_timeline
from repro.sim import TimelineConfig, write_time_curve_set
from repro.viz import format_table, format_timeline_set, line_chart

RESULTS_DIR = Path(__file__).parent / "results"

LIFETIME = 60.0
BEACONS = 50


def test_controller_recovers_what_faults_destroy(benchmark, config, emit):
    timeline = TimelineConfig(
        times=(0.0, 15.0, 30.0, 45.0, 60.0, 90.0, 120.0),
        beacons=BEACONS,
        noise=0.0,
        trials=min(config.fields_per_density, 6),
        resamples=200,
    )
    models = [
        ("crash", CrashFault(LIFETIME)),
        ("battery", BatteryFault(LIFETIME, spread=0.2)),
        ("intermittent", IntermittentFault(30.0, 10.0)),
    ]
    # Threshold sits between the healthy 50-beacon error (~8.3 m) and the
    # first degraded samples; the budget is 60% of the designed field.
    controller = ControllerConfig(
        mean_threshold=12.0, budget=30, repair_k=8, horizon=30.0
    )

    def run():
        return selfheal_timeline(config, timeline, models, controller)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    for curve_set, suffix in (
        (result.on_mean, "on_mean"),
        (result.on_upper, "on_p90"),
        (result.off_mean, "off_mean"),
        (result.off_upper, "off_p90"),
    ):
        write_time_curve_set(
            curve_set, RESULTS_DIR / f"extension_selfheal_{suffix}.csv"
        )

    rows = []
    for name, _ in models:
        on = result.on_mean.curve(name)
        off = result.off_mean.curve(name)
        rows.append(
            [
                name,
                f"{result.repairs[name]}",
                f"{result.added[name]}",
                f"{on.meta['time_to_recover']:g}",
                f"{off.meta['time_to_recover']:g}",
                f"{on.meta['area_under_degradation']:.1f}",
                f"{off.meta['area_under_degradation']:.1f}",
                f"{on.meta['alive_fraction'][-1]:.2f}",
                f"{off.meta['alive_fraction'][-1]:.2f}",
            ]
        )
    summary = format_table(
        [
            "model",
            "repairs",
            "added",
            "ttr on",
            "ttr off",
            "aud on",
            "aud off",
            "alive on",
            "alive off",
        ],
        rows,
    )
    text = format_timeline_set(result.on_mean)
    text += "\n\n" + format_timeline_set(result.off_mean)
    series = [
        ("crash on", result.on_mean.curve("crash").times,
         result.on_mean.curve("crash").values),
        ("crash off", result.off_mean.curve("crash").times,
         result.off_mean.curve("crash").values),
    ]
    text += "\n\n" + line_chart(
        series,
        title="Mean LE vs time: controller on vs off (crash)",
        x_label="time",
        y_label="meters",
        y_min=0.0,
    )
    text += "\n\nrecovery summary (threshold = 12 m):\n" + summary
    emit("extension_selfheal", text)

    assert result.on_mean.meta["failed_cells"] == 0

    # The acceptance bar: on the crash schedule the controller measurably
    # improves time-to-recover and post-fault mean LE over no controller.
    crash_on = result.on_mean.curve("crash")
    crash_off = result.off_mean.curve("crash")
    assert np.isfinite(crash_on.meta["time_to_recover"])
    assert crash_on.meta["time_to_recover"] < crash_off.meta["time_to_recover"]
    assert crash_off.meta["time_to_recover"] == float("inf")
    assert (
        crash_on.meta["area_under_degradation"]
        < 0.5 * crash_off.meta["area_under_degradation"]
    )
    # Post-fault service: every late sample is better with the controller.
    for on_v, off_v in zip(crash_on.values[3:], crash_off.values[3:]):
        assert on_v < off_v
    assert crash_on.meta["alive_fraction"][-1] > crash_off.meta["alive_fraction"][-1]
    assert result.repairs["crash"] >= timeline.trials  # every trial repaired
    assert result.added["crash"] <= timeline.trials * controller.budget

    # Battery fields die entirely without repair; the controller's adds have
    # fresh fault clocks, so beacons outlive the original lifetime band.
    battery_on = result.on_mean.curve("battery")
    battery_off = result.off_mean.curve("battery")
    on_alive = battery_on.meta["alive_fraction"]
    off_alive = battery_off.meta["alive_fraction"]
    assert off_alive[-1] == 0.0
    assert sum(on_alive) > sum(off_alive)

    # Intermittent fields flap around steady state instead of trending to
    # zero — the paired arms stay close and the budget is barely touched.
    flap_added = result.added["intermittent"]
    assert flap_added <= result.added["crash"]
