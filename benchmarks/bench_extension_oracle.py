"""Extension E5 — oracle-greedy upper bound vs the paper's algorithms.

How much headroom do Random/Max/Grid leave?  The oracle evaluates every
overlapping-grid center against the true counterfactual error field and
picks the best — unimplementable on a robot, but it calibrates the
algorithms: at low density Grid should capture a large fraction of the
oracle's gain (the paper's implicit claim that Grid is "good enough").
"""

import numpy as np

from repro.placement import (
    GridPlacement,
    MaxPlacement,
    OracleGreedyPlacement,
    RandomPlacement,
)
from repro.sim import build_world, derive_rng, run_placement_trial


def test_extension_oracle_headroom(benchmark, config, emit_table):
    count = config.beacon_counts[0]
    fields = min(config.fields_per_density, 6)

    def run():
        algorithms = [
            RandomPlacement(),
            MaxPlacement(),
            GridPlacement(config.grid_layout()),
            OracleGreedyPlacement(),
        ]
        gains = {a.name: [] for a in algorithms}
        for i in range(fields):
            world = build_world(config, 0.0, count, i)
            outcomes = run_placement_trial(
                world,
                algorithms,
                lambda name, _i=i: derive_rng(config.seed, "oracle", name, _i),
            )
            for outcome in outcomes:
                gains[outcome.algorithm].append(outcome.improvement_mean)
        return {name: float(np.mean(v)) for name, v in gains.items()}

    gains = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (name, value, value / gains["oracle"] if gains["oracle"] > 0 else float("nan"))
        for name, value in gains.items()
    ]
    emit_table(
        "extension_oracle",
        ("algorithm", "mean gain (m)", "fraction of oracle"),
        rows,
    )

    assert gains["oracle"] >= gains["grid"] - 1e-9  # oracle dominates by construction
    assert gains["grid"] >= 0.5 * gains["oracle"]  # Grid captures most of it
    assert gains["random"] < gains["grid"]
