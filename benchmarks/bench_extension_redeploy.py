"""Extension E7 — adaptation vs complete redeployment (§3's definition).

The paper defines adaptation as "adjusting beacon placement or adding a few
beacons rather than by completely re-deploying all beacons."  This bench
quantifies the trade at low density: mean-error reduction per *beacon
moved or added* for

* one adaptive Grid beacon (1 placement),
* k = 4 sequential Grid beacons (4 placements),
* full weighted-k-means redeployment of all N beacons (N placements).

Redeployment should win on absolute error (it has N degrees of freedom);
adaptation should win decisively on gain per placement — the paper's
economic argument.
"""

import numpy as np

from repro.placement import GridPlacement, WeightedRedeployment, plan_batch_sequential
from repro.sim import TrialWorld, build_world, derive_rng


def test_extension_adaptation_vs_redeployment(benchmark, config, emit_table):
    count = config.beacon_counts[0]
    fields = min(config.fields_per_density, 6)
    algorithm = GridPlacement(config.grid_layout())

    def run():
        gains = {"adapt-1": [], "adapt-4": [], "redeploy-all": []}
        costs = {"adapt-1": 1, "adapt-4": 4, "redeploy-all": count}
        for i in range(fields):
            world = build_world(config, 0.0, count, i)
            base, _ = world.base_stats()

            pick = algorithm.propose(
                world.survey(), derive_rng(config.seed, "rd1", i)
            )
            gains["adapt-1"].append(base - world.with_beacon(pick).base_stats()[0])

            state = {"world": world}

            def resurvey(p, _s=state):
                _s["world"] = _s["world"].with_beacon(p)
                return _s["world"].survey()

            plan_batch_sequential(
                algorithm, world.survey(), derive_rng(config.seed, "rd4", i), 4, resurvey
            )
            gains["adapt-4"].append(base - state["world"].base_stats()[0])

            redeployed = WeightedRedeployment(iterations=30).redeploy(
                world.field, world.survey(), derive_rng(config.seed, "rdall", i)
            )
            new_world = TrialWorld(
                redeployed, world.realization, world.grid, world.layout, world.localizer
            )
            gains["redeploy-all"].append(base - new_world.base_stats()[0])
        return [
            (name, costs[name], float(np.mean(v)), float(np.mean(v)) / costs[name])
            for name, v in gains.items()
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_redeploy",
        ("strategy", "placements", "mean gain (m)", "gain per placement (m)"),
        rows,
    )

    by_name = {r[0]: r for r in rows}
    # Everything helps.
    for r in rows:
        assert r[2] > 0.0
    # Adaptation dominates on gain per placement.
    assert by_name["adapt-1"][3] > by_name["redeploy-all"][3]
    # More beacons give more total gain.
    assert by_name["adapt-4"][2] > by_name["adapt-1"][2]
