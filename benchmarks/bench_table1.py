"""Table 1 — simulation parameters, plus the derived quantities the paper
quotes in its text (P_T, gridSide, P_G, the density range on both axes).

Paper values: Side = 100 m, R = 15 m, step = 1 m, N_G = 400.
"""

from repro.sim import paper_config


def test_table1_parameters(benchmark, emit_table):
    config = paper_config()

    def build_rows():
        return [
            ("Side", f"{config.side:g} m", "Table 1"),
            ("R", f"{config.radio_range:g} m", "Table 1"),
            ("step", f"{config.step:g} m", "Table 1"),
            ("N_G", str(config.num_grids), "Table 1"),
            ("P_T", str(config.num_measurement_points), "derived: (Side/step+1)^2"),
            ("gridSide", f"{config.grid_side:g} m", "derived: 2R"),
            ("P_G", f"{config.points_per_grid:.2f}", "derived: P_T (2R)^2/Side^2"),
            (
                "density sweep",
                f"{config.densities()[0]:.3f}..{config.densities()[-1]:.3f} /m^2",
                "§4.1: 20..240 beacons",
            ),
            (
                "per coverage area",
                f"{config.coverage_densities()[0]:.2f}..{config.coverage_densities()[-1]:.2f}",
                "§4.1: 1.41..17",
            ),
            ("noise levels", ", ".join(f"{n:g}" for n in config.noise_levels), "§4.2.1"),
            ("fields per density", str(config.fields_per_density), "§4.1: 1000"),
        ]

    rows = benchmark(build_rows)
    emit_table("table1", ("parameter", "value", "source"), rows)

    # The derived quantities must match the paper's quoted values exactly.
    assert config.num_measurement_points == 10201
    assert config.grid_side == 30.0
    assert round(config.points_per_grid) == 918
