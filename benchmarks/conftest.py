"""Shared fixtures for the figure-reproduction benchmarks.

Every bench regenerates one table or figure of the paper at configurable
fidelity (see ``repro.sim.bench_config``: ``REPRO_FIELDS``,
``REPRO_DENSITIES``, ``REPRO_FULL=1``), prints the reproduced series, and
persists them under ``benchmarks/results/`` (CSV + rendered text) so the
output survives pytest's capture.

Run with::

    pytest benchmarks/ --benchmark-only            # default fidelity
    REPRO_FULL=1 pytest benchmarks/ --benchmark-only   # paper fidelity (hours)
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sim import CurveSet, bench_config, write_curve_set
from repro.viz import format_curve_set, format_table, line_chart

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config():
    """The bench-fidelity experiment configuration."""
    return bench_config()


@pytest.fixture(scope="session")
def paper_algorithms(config):
    """Random, Max, Grid at the paper's configuration."""
    from repro.placement import GridPlacement, MaxPlacement, RandomPlacement

    return [
        RandomPlacement(),
        MaxPlacement(),
        GridPlacement(config.grid_layout()),
    ]


@pytest.fixture(scope="session")
def emit():
    """Persist + print a curve set (or raw text) for one experiment id."""

    def _emit(experiment_id: str, payload, *, chart: bool = True) -> str:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        if isinstance(payload, CurveSet):
            text = format_curve_set(payload)
            if chart and payload.curves and len(payload.curves[0]) > 1:
                series = [(c.label, c.densities, c.values) for c in payload.curves]
                text += "\n\n" + line_chart(
                    series,
                    title=payload.title,
                    x_label="beacons per m^2",
                    y_label="meters",
                    y_min=0.0,
                )
            write_curve_set(payload, RESULTS_DIR / f"{experiment_id}.csv")
        else:
            text = str(payload)
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        print(f"\n=== {experiment_id} ===\n{text}\n")
        return text

    return _emit


@pytest.fixture(scope="session")
def emit_table(emit):
    """Persist + print a plain table for one experiment id."""

    def _emit(experiment_id: str, headers, rows, **kwargs) -> str:
        return emit(experiment_id, format_table(headers, rows, **kwargs))

    return _emit
