"""Shared driver for Figures 7–9: one algorithm's improvements across the
noise sweep (mean and median metrics, one curve per noise level)."""

from __future__ import annotations

from dataclasses import replace

from repro.sim import CurveSet, PAPER_NOISE_LEVELS, placement_improvement_curves


def noise_figure_curves(config, algorithm):
    """(mean CurveSet, median CurveSet) with one series per noise level."""
    mean_curves, median_curves = [], []
    for noise in PAPER_NOISE_LEVELS:
        mean_set, median_set = placement_improvement_curves(config, noise, [algorithm])
        label = "Ideal" if noise == 0.0 else f"Noise={noise:g}"
        mean_curves.append(replace(mean_set.curves[0], label=label))
        median_curves.append(replace(median_set.curves[0], label=label))
    name = algorithm.name.capitalize()
    return (
        CurveSet(f"{name}: improvement in mean error vs density (noise sweep)", mean_curves),
        CurveSet(f"{name}: improvement in median error vs density (noise sweep)", median_curves),
    )
