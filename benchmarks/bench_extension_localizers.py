"""Extension E9 — how much accuracy does the centroid summary leave behind?

Section 2.2 argues for the centroid because time-of-flight and signal
strength were impractical; §6 keeps the locus perspective "worth pursuing
from a theoretical standpoint".  This bench puts numbers on that ladder at
low and saturated density (ideal and Noise = 0.5):

centroid → weighted centroid → fingerprinting (RADAR) → grid-Bayes
(information-theoretic ceiling for connectivity observations).
"""

import numpy as np

from repro.localization import (
    CentroidLocalizer,
    FingerprintLocalizer,
    GridBayesLocalizer,
    WeightedCentroidLocalizer,
    localization_errors,
)
from repro.geometry import MeasurementGrid
from repro.sim import TrialWorld, build_world, derive_rng


def run_ladder(config, noise, count, fields):
    grid = MeasurementGrid(config.side, 2.0)  # coarser lattice: Bayes is O(P·Q)
    results = {}
    for i in range(fields):
        base = build_world(config, noise, count, i)
        pts = grid.points()
        conn = base.realization.connectivity(pts, base.field)
        positions = base.field.positions()

        fingerprint = FingerprintLocalizer(config.side, base.realization, k=3)
        fingerprint.calibrate(MeasurementGrid(config.side, 4.0).points(), base.field)

        localizers = {
            "centroid": CentroidLocalizer(config.side, config.policy),
            "weighted": WeightedCentroidLocalizer(
                config.side, config.radio_range, alpha=1.5
            ),
            "fingerprint": fingerprint,
            "grid-bayes": GridBayesLocalizer(
                grid, config.radio_range, noise=noise, cm_thresh=config.cm_thresh
            ),
        }
        for name, localizer in localizers.items():
            estimates = localizer.estimate(conn, positions, pts)
            err = float(np.nanmean(localization_errors(estimates, pts)))
            results.setdefault(name, []).append(err)
    return {name: float(np.mean(v)) for name, v in results.items()}


def test_extension_localizer_ladder(benchmark, config, emit_table):
    counts = (config.beacon_counts[0], config.beacon_counts[-1])
    fields = min(config.fields_per_density, 5)

    def run():
        rows = []
        for noise in (0.0, 0.5):
            for count in counts:
                ladder = run_ladder(config, noise, count, fields)
                rows.append((noise, count, *ladder.values()))
                if not rows[0][2:]:
                    raise RuntimeError("empty ladder")
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_localizers",
        ("noise", "beacons", "centroid (m)", "weighted (m)", "fingerprint (m)", "grid-bayes (m)"),
        rows,
    )

    for row in rows:
        centroid, weighted, fingerprint, bayes = row[2:]
        # The ladder is ordered: richer information never hurts on average
        # (small tolerance: Bayes assumes an approximate channel model under
        # the CM_thresh world, see GridBayesLocalizer docs).
        assert weighted <= centroid + 0.3
        assert bayes <= centroid + 0.5
        assert fingerprint <= centroid + 0.5
