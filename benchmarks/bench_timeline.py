"""Extension E14 — error-vs-time curves through the resilient timeline sweep.

Where E13 (``bench_faults``) asks what adaptive placement buys back on a
degraded snapshot, this bench produces the degradation curves themselves:
mean and p90 localization error over time under three fault families —
permanent crashes, battery exhaustion (near-deterministic lifetimes) and
intermittent duty-cycling — driven through :func:`repro.sim.fault_error_timeline`,
i.e. the same journaled/executor-backed cell engine the figure sweeps use.

Expected shape: the crash curve climbs steadily as exponential lifetimes
thin the field; the battery curve stays near-pristine until the lifetime
band and then collapses (its spread is a tight uniform window, not a long
exponential tail); the intermittent curve is roughly flat — beacons flap
but the population never trends to zero.  Bootstrap CIs are seed-derived,
so rerunning this bench reproduces the recorded results bit-for-bit at a
given fidelity.
"""

from pathlib import Path

import numpy as np

from repro.faults import BatteryFault, CrashFault, IntermittentFault
from repro.sim import TimelineConfig, fault_error_timeline, write_time_curve_set
from repro.viz import format_timeline_set, line_chart

RESULTS_DIR = Path(__file__).parent / "results"

LIFETIME = 60.0


def test_error_vs_time_under_fault_models(benchmark, config, emit):
    timeline = TimelineConfig(
        times=(0.0, 15.0, 30.0, 45.0, 60.0, 90.0, 120.0),
        beacons=config.beacon_counts[len(config.beacon_counts) // 2],
        noise=0.0,
        trials=min(config.fields_per_density, 6),
        resamples=200,
    )
    models = [
        ("crash", CrashFault(LIFETIME)),
        ("battery", BatteryFault(LIFETIME, spread=0.2)),
        ("intermittent", IntermittentFault(30.0, 10.0)),
    ]

    def run():
        return fault_error_timeline(config, timeline, models)

    mean_set, upper_set = benchmark.pedantic(run, rounds=1, iterations=1)

    for set_, suffix in ((mean_set, "mean"), (upper_set, "p90")):
        text = format_timeline_set(set_)
        series = [(c.label, c.times, c.values) for c in set_.curves]
        text += "\n\n" + line_chart(
            series,
            title=set_.title,
            x_label="time",
            y_label="meters",
            y_min=0.0,
        )
        write_time_curve_set(set_, RESULTS_DIR / f"extension_timeline_{suffix}.csv")
        emit(f"extension_timeline_{suffix}", text)

    assert mean_set.meta["failed_cells"] == 0
    crash = mean_set.curve("crash")
    # Crashes only remove beacons: alive falls, error climbs.
    alive = crash.alive_fraction()
    assert all(a >= b for a, b in zip(alive, alive[1:]))
    finite = [v for v in crash.values if not np.isnan(v)]
    assert finite[-1] > finite[0]
    # Battery fields are pristine before the lifetime band starts (t=48).
    battery = mean_set.curve("battery")
    assert battery.alive_fraction()[0] == 1.0
    assert battery.values[1] == battery.values[0]
    # ... and dead after it ends (t >= 72 > 1.2 * lifetime).
    assert battery.alive_fraction()[-1] == 0.0
    # Intermittent beacons flap but the field never trends to empty.
    flap = mean_set.curve("intermittent")
    assert all(a > 0.0 for a in flap.alive_fraction())
    # The upper tail bounds the mean wherever both exist.
    for m, u in zip(crash.values, upper_set.curve("crash").values):
        if not np.isnan(m):
            assert u >= m
