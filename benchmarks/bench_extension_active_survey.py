"""Extension E6b — active vs systematic exploration at equal budget.

Given a fixed measurement budget (the §3.1 generalization), is a robot
better off sweeping systematically or concentrating measurements where the
errors it has already seen are worst?  Compares Grid-placement gain from

* a lawnmower survey of B points,
* a uniform random-sample survey of B points,
* an active (explore-then-refine) survey of B points,

at two budgets, low density, Noise = 0.3.
"""

import numpy as np

from repro.exploration import ActiveSurveyPlanner, SurveyAgent, lawnmower_path
from repro.localization import CentroidLocalizer
from repro.placement import GridPlacement
from repro.sim import build_world, derive_rng


def gain_for_survey(world, survey, algorithm, rng):
    pick = algorithm.propose(survey, rng)
    return world.evaluate_candidate(pick)[0]


def test_extension_active_survey(benchmark, config, emit_table):
    count = config.beacon_counts[0]
    fields = min(config.fields_per_density, 5)
    algorithm = GridPlacement(config.grid_layout())

    def run():
        rows = []
        for budget in (150, 400):
            gains = {"lawnmower": [], "uniform": [], "active": []}
            for i in range(fields):
                world = build_world(config, 0.3, count, i)
                agent = SurveyAgent(
                    world.field,
                    world.realization,
                    CentroidLocalizer(config.side, config.policy),
                    config.side,
                )
                rng = derive_rng(config.seed, "active", budget, i)

                # Lawnmower of ~budget points.
                spacing = config.side / max(int(np.sqrt(budget)) - 1, 1)
                path = lawnmower_path(config.side, spacing, spacing)[:budget]
                gains["lawnmower"].append(
                    gain_for_survey(world, agent.measure_at(path), algorithm, rng)
                )

                uniform_pts = rng.uniform(0, config.side, (budget, 2))
                gains["uniform"].append(
                    gain_for_survey(world, agent.measure_at(uniform_pts), algorithm, rng)
                )

                planner = ActiveSurveyPlanner(config.side, seed_points_per_axis=6)
                active_survey = planner.run(agent, budget, rng, rounds=3)
                gains["active"].append(
                    gain_for_survey(world, active_survey, algorithm, rng)
                )
            for name, values in gains.items():
                rows.append((budget, name, float(np.mean(values))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_active_survey",
        ("budget", "survey strategy", "grid mean gain (m)"),
        rows,
    )

    by_key = {(r[0], r[1]): r[2] for r in rows}
    # All strategies produce positive gains at both budgets.
    assert min(by_key.values()) > 0.0
    # Active surveying is competitive with the best systematic strategy at
    # the small budget (where sample placement matters most).
    best_systematic = max(by_key[(150, "lawnmower")], by_key[(150, "uniform")])
    assert by_key[(150, "active")] >= 0.6 * best_systematic
