"""Figure 5 — improvement in mean and median error vs density (Ideal),
Random vs Max vs Grid.

Paper claims: Random improves least; at low densities (≤ 0.005 /m²) Grid's
mean-error improvement is at least twice Max's; at moderate densities
(0.008–0.02) Max edges out Grid; at very high densities (≥ 0.02) everything
is saturated and the three are equal; median improvements are roughly a
quarter of the mean improvements for Grid (hot spots get fixed first).
"""

import numpy as np

from repro.sim import placement_improvement_curves


def test_figure5_improvements_ideal(benchmark, config, paper_algorithms, emit):
    mean_set, median_set = benchmark.pedantic(
        lambda: placement_improvement_curves(config, 0.0, paper_algorithms),
        rounds=1,
        iterations=1,
    )
    mean_set.title = "Figure 5a: improvement in mean error vs density (Ideal)"
    median_set.title = "Figure 5b: improvement in median error vs density (Ideal)"
    emit("figure5a_mean", mean_set)
    emit("figure5b_median", median_set)

    low = 0  # lowest-density sweep point (20 beacons = 0.002 /m²)
    grid_low = mean_set.curve("grid").values[low]
    max_low = mean_set.curve("max").values[low]
    random_low = mean_set.curve("random").values[low]

    # Random is the sanity-check floor.
    assert random_low < max_low
    assert random_low < grid_low
    # Grid ≥ ~2× Max at low density.
    assert grid_low >= 1.6 * max_low
    # Saturation: all three improvements near zero at the top density.
    top = [mean_set.curve(label).values[-1] for label in mean_set.labels()]
    assert max(np.abs(top)) < 0.3
    # Median gains exist but are a fraction of mean gains for Grid.
    grid_median_low = median_set.curve("grid").values[low]
    assert 0.0 < grid_median_low < grid_low
