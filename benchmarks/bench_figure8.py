"""Figure 8 — performance of the Max algorithm with noise.

Paper claims: same relative trend as ideal (gains shrink with density);
noise makes moderate densities somewhat more improvable, though less so
than with Grid; median improvements stay roughly unchanged.
"""

import numpy as np

from _noise_figure import noise_figure_curves
from repro.placement import MaxPlacement


def test_figure8_max_with_noise(benchmark, config, emit):
    mean_set, median_set = benchmark.pedantic(
        lambda: noise_figure_curves(config, MaxPlacement()),
        rounds=1,
        iterations=1,
    )
    mean_set.title = "Figure 8a: Max improvement in mean error (noise sweep)"
    median_set.title = "Figure 8b: Max improvement in median error (noise sweep)"
    emit("figure8a_mean", mean_set)
    emit("figure8b_median", median_set)

    ideal = np.array(mean_set.curve("Ideal").values)
    noisy = np.array(mean_set.curve("Noise=0.5").values)
    # Gains decline with density in both regimes.
    assert ideal[0] > ideal[-1]
    assert noisy[0] > noisy[-1]
    # Positive improvements at low density under every noise level.
    for label in mean_set.labels():
        assert mean_set.curve(label).values[0] > 0.0
