"""Extension E3 — recasting placement for multilateration (§6 future work).

The paper: proximity error is governed by placement *density*, whereas
multilateration error is governed by beacon *geometry*; it plans to recast
its algorithms accordingly.  Two experiments:

1. the paper's algorithms run unchanged on a multilateration error survey
   (5 % ranging noise), plus the geometry-native GDOP placement;
2. baseline error of centroid vs multilateration vs weighted centroid
   across densities — the "error characteristics of the two are
   significantly different" claim.
"""

import numpy as np

from repro.localization import (
    CentroidLocalizer,
    MultilaterationLocalizer,
    WeightedCentroidLocalizer,
)
from repro.placement import GdopPlacement, MaxPlacement, RandomPlacement
from repro.sim import TrialWorld, build_world, derive_rng, run_placement_trial


def localizer_comparison(config, counts, fields):
    rows = []
    for count in counts:
        per_localizer = {"centroid": [], "weighted": [], "multilateration": []}
        for i in range(fields):
            base = build_world(config, 0.0, count, i)
            noise_rng = derive_rng(config.seed, "mlat-noise", count, i)
            localizers = {
                "centroid": CentroidLocalizer(config.side, config.policy),
                "weighted": WeightedCentroidLocalizer(
                    config.side, config.radio_range, alpha=1.5
                ),
                "multilateration": MultilaterationLocalizer(
                    config.side, range_noise=0.05, rng=noise_rng
                ),
            }
            for name, localizer in localizers.items():
                world = TrialWorld(
                    base.field, base.realization, base.grid, base.layout, localizer
                )
                per_localizer[name].append(world.error_surface().mean_error())
        rows.append(
            (count, *(float(np.mean(per_localizer[k])) for k in per_localizer))
        )
    return rows


def test_extension_localizer_error_characteristics(benchmark, config, emit_table):
    counts = [config.beacon_counts[0], config.beacon_counts[-1]]
    fields = min(config.fields_per_density, 5)
    rows = benchmark.pedantic(
        lambda: localizer_comparison(config, counts, fields), rounds=1, iterations=1
    )
    emit_table(
        "extension_multilateration_baselines",
        ("beacons", "centroid (m)", "weighted (m)", "multilateration (m)"),
        rows,
    )

    # With enough well-spread beacons and 5 % ranging, multilateration beats
    # the connectivity centroid by a wide margin at high density.
    high = rows[-1]
    assert high[3] < high[1]
    # Weighted centroid sits between plain centroid and full ranging.
    assert high[2] <= high[1] + 0.1


def test_extension_placement_for_multilateration(benchmark, config, emit_table):
    count = config.beacon_counts[0]
    fields = min(config.fields_per_density, 5)

    def run():
        algorithms = [RandomPlacement(), MaxPlacement(), GdopPlacement(stride=8)]
        gains = {a.name: [] for a in algorithms}
        for i in range(fields):
            base = build_world(config, 0.0, count, i)
            localizer = MultilaterationLocalizer(
                config.side,
                range_noise=0.05,
                rng=derive_rng(config.seed, "mlat-place", i),
            )
            world = TrialWorld(
                base.field, base.realization, base.grid, base.layout, localizer
            )
            outcomes = run_placement_trial(
                world,
                algorithms,
                lambda name, _i=i: derive_rng(config.seed, "mlat-alg", name, _i),
            )
            for outcome in outcomes:
                gains[outcome.algorithm].append(outcome.improvement_mean)
        return {name: float(np.mean(v)) for name, v in gains.items()}

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_multilateration_placement",
        ("algorithm", "mean gain (m, multilateration error)"),
        list(gains.items()),
    )

    # Measurement-driven and geometry-driven placement both beat Random.
    assert gains["max"] > gains["random"]
    assert gains["gdop"] > gains["random"]
