"""Figure 7 — performance of the Random algorithm with noise.

Paper claim: the gains in both metrics with Random are *"somewhat unchanged
with noise"* — expected, because noise is not an input to an algorithm that
makes no measurements.
"""

import numpy as np

from _noise_figure import noise_figure_curves
from repro.placement import RandomPlacement


def test_figure7_random_with_noise(benchmark, config, emit):
    mean_set, median_set = benchmark.pedantic(
        lambda: noise_figure_curves(config, RandomPlacement()),
        rounds=1,
        iterations=1,
    )
    mean_set.title = "Figure 7a: Random improvement in mean error (noise sweep)"
    median_set.title = "Figure 7b: Random improvement in median error (noise sweep)"
    emit("figure7a_mean", mean_set)
    emit("figure7b_median", median_set)

    ideal = np.array(mean_set.curve("Ideal").values)
    noisy = np.array(mean_set.curve("Noise=0.5").values)
    # Noise-invariance: curves stay close (Random never reads the noise).
    assert np.abs(ideal - noisy).max() < 0.6
    # And the gains themselves are small everywhere.
    assert np.abs(ideal).max() < 1.0
