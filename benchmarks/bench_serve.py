"""Load bench for the placement service (not a paper figure).

Drives a fleet of concurrent asyncio clients — 1000 by default — against
one in-process :class:`repro.serve.PlacementServer` and records
``results/BENCH_serve.json``: p50/p99 request latency, sustained
queries/s, the cache hit rate of the burst, and the repeat-query speedup
(cold p50 over warm p50) that the shared expected-LE field cache buys.
That last ratio is the gated metric: ``compare_bench.py`` treats any
top-level ``*speedup*`` key as higher-is-better, while the absolute
timings only compare when the sweep context matches.

Every sampled response is also checked byte-identical to
:func:`repro.serve.solve_request` run directly — the service must never
trade correctness for throughput.

The CI serve-smoke job shrinks the fleet via ``REPRO_BENCH_SERVE_*`` so
the burst fits a shared runner; the committed numbers come from the full
1000-client run.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from pathlib import Path

from repro.serve import (
    AsyncPlacementClient,
    PlacementRequest,
    PlacementServer,
    solve_request,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance floor: answering a warmed repeat query must be at least this
#: much faster (p50) than a cold query that builds its field state.
MIN_REPEAT_QUERY_SPEEDUP = 1.5

CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "1000"))
QUERIES_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVE_QUERIES", "2"))
DISTINCT_SPECS = int(os.environ.get("REPRO_BENCH_SERVE_SPECS", "8"))

#: The field each query describes: mid-sized (961 lattice points) so a
#: cold build visibly costs more than a cache hit, small enough that a
#: thousand-client burst finishes on one core.
SPEC = dict(
    side=60.0,
    step=2.0,
    radio_range=12.0,
    num_grids=64,
    count=24,
    noise=0.2,
    algorithm="grid",
)


def _request(index: int) -> PlacementRequest:
    return PlacementRequest(field_index=index % DISTINCT_SPECS, **SPEC)


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class _ServerThread:
    """The server under test, on its own event-loop thread."""

    def __init__(self):
        self._holder: dict = {}
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._started.wait(30), "placement server failed to start"

    def _run(self):
        async def body():
            server = PlacementServer(cache_capacity=DISTINCT_SPECS + 4)
            await server.start()
            self._holder["server"] = server
            self._holder["loop"] = asyncio.get_running_loop()
            self._started.set()
            await server.serve_forever()
            await server.aclose()

        asyncio.run(body())

    @property
    def server(self) -> PlacementServer:
        return self._holder["server"]

    def stop(self):
        loop = self._holder["loop"]
        if not loop.is_closed():
            loop.call_soon_threadsafe(self.server._done.set)
        self._thread.join(30)


async def _one_client(address, client_index: int, latencies: list):
    client = await AsyncPlacementClient.connect(address)
    try:
        hits = 0
        for query in range(QUERIES_PER_CLIENT):
            request = _request(client_index + query)
            start = time.perf_counter()
            solution = await client.place(request)
            latencies.append(time.perf_counter() - start)
            hits += bool(solution.cache_hit)
        return hits
    finally:
        await client.close()


async def _burst(address):
    latencies: list[float] = []
    started = time.perf_counter()
    hits = await asyncio.gather(
        *(_one_client(address, i, latencies) for i in range(CLIENTS))
    )
    elapsed = time.perf_counter() - started
    return latencies, sum(hits), elapsed


async def _serial_pass(address, *, expect_hits: bool, repeats: int = 1):
    """One unloaded client touching every distinct spec; identity-checked.

    Serial on purpose: cold-vs-warm latency is only a cache measurement
    when both sides queue behind nothing.  (The concurrent burst measures
    queueing and throughput separately.)
    """
    client = await AsyncPlacementClient.connect(address)
    latencies: list[float] = []
    try:
        for repeat in range(repeats):
            for index in range(DISTINCT_SPECS):
                request = _request(index)
                start = time.perf_counter()
                wire = await client.place(request)
                latencies.append(time.perf_counter() - start)
                assert wire.cache_hit == expect_hits, (
                    f"expected cache_hit={expect_hits} "
                    f"for spec {index} repeat {repeat}"
                )
                if repeat == 0:
                    direct = solve_request(request)
                    assert wire.picks == direct.picks, request.payload()
                    assert wire.errors.tobytes() == direct.errors.tobytes()
                    assert wire.base_mean == direct.base_mean
    finally:
        await client.close()
    return latencies


def test_serve_concurrent_burst():
    harness = _ServerThread()
    try:
        address = harness.server.address
        cold = asyncio.run(_serial_pass(address, expect_hits=False))
        warm = asyncio.run(_serial_pass(address, expect_hits=True, repeats=5))
        latencies, hits, elapsed = asyncio.run(_burst(address))
    finally:
        harness.stop()

    total = CLIENTS * QUERIES_PER_CLIENT
    assert len(latencies) == total
    hit_rate = hits / total
    # Every burst query re-asks one of the DISTINCT_SPECS fields the cold
    # pass already built, so the burst must be essentially all cache hits.
    assert hit_rate > 0.95, f"cache hit rate {hit_rate:.3f} in the warm burst"

    cold.sort()
    warm.sort()
    latencies.sort()
    cold_p50 = _percentile(cold, 0.50)
    warm_p50 = _percentile(warm, 0.50)
    burst_p50 = _percentile(latencies, 0.50)
    burst_p99 = _percentile(latencies, 0.99)
    speedup = cold_p50 / warm_p50

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "sweep": {
            "config": (
                f"side={SPEC['side']:g} range={SPEC['radio_range']:g} "
                f"step={SPEC['step']:g} beacons={SPEC['count']} "
                f"noise={SPEC['noise']:g} algorithm={SPEC['algorithm']}"
            ),
            "clients": CLIENTS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "distinct_specs": DISTINCT_SPECS,
        },
        "best_seconds": {
            "cold_query_p50": round(cold_p50, 5),
            "warm_query_p50": round(warm_p50, 5),
            "burst_query_p50": round(burst_p50, 5),
            "burst_query_p99": round(burst_p99, 5),
        },
        "queries_per_second": round(total / elapsed, 1),
        "cache_hit_rate": round(hit_rate, 4),
        "repeat_query_speedup": round(speedup, 3),
        "min_repeat_query_speedup": MIN_REPEAT_QUERY_SPEEDUP,
    }
    with (RESULTS_DIR / "BENCH_serve.json").open("w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")

    assert speedup >= MIN_REPEAT_QUERY_SPEEDUP, (
        f"repeat queries are only {speedup:.2f}x faster than cold ones "
        f"(needs >= {MIN_REPEAT_QUERY_SPEEDUP}x)"
    )
