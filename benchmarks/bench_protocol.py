"""Extension E4 — the §2.2 beacon protocol, executed as a DES.

Two questions the geometric shortcut cannot answer:

1. **Validation** — with modest airtime and t ≫ T, does the protocol's
   CM_thresh rule reproduce the geometric connectivity matrix?  (It must:
   the whole §4 evaluation rests on the shortcut.)
2. **Self-interference** (§1 motivation for limiting beacon density) — as
   beacon count × airtime grows, collisions destroy message delivery and
   protocol connectivity collapses below its geometric ceiling.
"""

import numpy as np

from repro.field import random_uniform_field
from repro.protocol import ProtocolConnectivityEstimator
from repro.radio import IdealDiskModel
from repro.sim import derive_rng


SIDE = 100.0
R = 15.0


def run_density_sweep(config):
    realization = IdealDiskModel(R).realize(derive_rng(config.seed, "proto-real"))
    client_rng = derive_rng(config.seed, "proto-clients")
    clients = client_rng.uniform(0, SIDE, (60, 2))
    rows = []
    for count in (40, 120, 240, 480):
        field = random_uniform_field(
            count, SIDE, derive_rng(config.seed, "proto-field", count)
        )
        estimator = ProtocolConnectivityEstimator(
            period=1.0, listen_time=20.0, message_duration=0.02, cm_thresh=0.75
        )
        result = estimator.run(
            clients, field, realization, derive_rng(config.seed, "proto-run", count)
        )
        geo = realization.connectivity(clients, field)
        rows.append(
            (
                count,
                float(result.collision_rate),
                int(geo.sum()),
                int(result.connectivity.sum()),
                float((result.connectivity == geo).mean()),
            )
        )
    return rows


def test_protocol_validation_and_self_interference(benchmark, config, emit_table):
    rows = benchmark.pedantic(lambda: run_density_sweep(config), rounds=1, iterations=1)
    emit_table(
        "protocol",
        ("beacons", "collision rate", "geometric links", "protocol links", "agreement"),
        rows,
        float_digits=3,
    )

    # Validation: at low density the protocol reproduces geometry almost exactly.
    assert rows[0][4] > 0.97
    # Self-interference: collision rate grows monotonically with density …
    collision = [r[1] for r in rows]
    assert all(b >= a for a, b in zip(collision, collision[1:]))
    # … and at the top density the protocol delivers far fewer usable links
    # than geometry promises (the §1 argument for limiting beacon density).
    assert rows[-1][3] < 0.7 * rows[-1][2]


def test_protocol_listen_time_convergence(benchmark, config, emit_table):
    """Longer listening windows sharpen the received-fraction estimate: the
    §2.2 requirement t ≫ T quantified."""
    realization = IdealDiskModel(R).realize(derive_rng(config.seed, "conv-real"))
    field = random_uniform_field(60, SIDE, derive_rng(config.seed, "conv-field"))
    clients = derive_rng(config.seed, "conv-clients").uniform(0, SIDE, (40, 2))
    geo = realization.connectivity(clients, field)

    def run():
        rows = []
        for periods in (2, 5, 20, 50):
            estimator = ProtocolConnectivityEstimator(
                period=1.0,
                listen_time=float(periods),
                message_duration=0.01,
                cm_thresh=0.75,
            )
            agreements = []
            for trial in range(3):
                result = estimator.run(
                    clients,
                    field,
                    realization,
                    derive_rng(config.seed, "conv", periods, trial),
                )
                agreements.append(float((result.connectivity == geo).mean()))
            rows.append((periods, float(np.mean(agreements))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table("protocol_listen_time", ("t/T (periods)", "agreement"), rows)

    assert rows[-1][1] >= rows[0][1] - 0.02  # longer windows never hurt much
    assert rows[-1][1] > 0.97
