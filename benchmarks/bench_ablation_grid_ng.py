"""Ablation A2 — Grid algorithm sensitivity to N_G (number of grids).

The paper fixes N_G = 400 without justification.  This bench sweeps
N_G ∈ {100, 400, 900} at a low density (where Grid dominates): more grids
mean finer center placement but the same 2R grid side, so gains saturate
once the center lattice is fine relative to R.
"""

from repro.geometry import OverlappingGridLayout
from repro.placement import GridPlacement
from repro.sim import Curve, CurveSet, placement_improvement_curves


def test_ablation_grid_ng(benchmark, config, emit):
    cfg = config.with_counts([20, 40]).with_fields(
        max(config.fields_per_density // 2, 5)
    )

    def run():
        curves = []
        for num_grids in (100, 400, 900):
            layout = OverlappingGridLayout.for_radio_range(
                cfg.side, cfg.radio_range, num_grids
            )
            algorithm = GridPlacement(layout)
            mean_set, _ = placement_improvement_curves(cfg, 0.0, [algorithm])
            base = mean_set.curves[0]
            curves.append(
                Curve(
                    label=f"N_G={num_grids}",
                    counts=base.counts,
                    densities=base.densities,
                    values=base.values,
                    ci_half_widths=base.ci_half_widths,
                    num_samples=base.num_samples,
                )
            )
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_grid_ng",
        CurveSet("A2: Grid mean-error improvement vs N_G (low density)", curves),
    )

    by_label = {c.label: c for c in curves}
    # All configurations deliver positive low-density gains.
    for c in curves:
        assert c.values[0] > 0.0
    # The paper's 400 is within 25 % of the best of the three.
    best = max(c.values[0] for c in curves)
    assert by_label["N_G=400"].values[0] >= 0.75 * best
