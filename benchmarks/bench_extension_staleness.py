"""Extension E8 — time-varying propagation and survey staleness (§6).

The paper's noise is static in time; its future work plans time-varying
loss.  The operational question that raises: the robot surveys at epoch 0
but the beacon serves clients at epochs k > 0 — how fast does the placement
gain decay with staleness, and how does channel persistence change that?

Setup: beacon-noise model (Noise = 0.5) wrapped in TimeVaryingModel; Grid
places from the epoch-0 survey; the gain is evaluated at epoch k.
"""

import numpy as np

from repro.localization import CentroidLocalizer
from repro.placement import GridPlacement
from repro.radio import BeaconNoiseModel, TimeVaryingModel
from repro.sim import TrialWorld, build_world, derive_rng


def staleness_gains(config, persistence, epochs, fields):
    algorithm = GridPlacement(config.grid_layout())
    count = config.beacon_counts[0]
    rows = []
    for epoch in epochs:
        gains = []
        for i in range(fields):
            def factory(noise, _p=persistence):
                return TimeVaryingModel(
                    BeaconNoiseModel(config.radio_range, noise, cm_thresh=config.cm_thresh),
                    persistence=_p,
                )

            world = build_world(config, 0.5, count, i, model_factory=factory)
            pick = algorithm.propose(
                world.survey(), derive_rng(config.seed, "stale", persistence, epoch, i)
            )
            # Evaluate the pick in the world as it exists at `epoch`.
            future = TrialWorld(
                world.field,
                world.realization.at_epoch(epoch),
                world.grid,
                world.layout,
                world.localizer,
            )
            gains.append(future.evaluate_candidate(pick)[0])
        rows.append((persistence, epoch, float(np.mean(gains))))
    return rows


def test_extension_survey_staleness(benchmark, config, emit_table):
    fields = min(config.fields_per_density, 5)
    epochs = (0, 2, 8)

    def run():
        return staleness_gains(config, 0.9, epochs, fields) + staleness_gains(
            config, 0.2, epochs, fields
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "extension_staleness",
        ("persistence", "epochs stale", "grid mean gain (m)"),
        rows,
    )

    by_key = {(r[0], r[1]): r[2] for r in rows}
    # Fresh surveys always help.
    assert by_key[(0.9, 0)] > 0.0
    assert by_key[(0.2, 0)] > 0.0
    # A persistent channel keeps stale surveys more useful than a volatile one.
    decay_persistent = by_key[(0.9, 0)] - by_key[(0.9, 8)]
    decay_volatile = by_key[(0.2, 0)] - by_key[(0.2, 8)]
    assert decay_persistent <= decay_volatile + 0.3
