"""Resilient sweep execution: checkpoints, retries, degraded aggregation.

Paper-fidelity sweeps are hours of work; a single stuck or crashing worker
must not discard them.  This module wraps the per-cell fan-out of
:mod:`repro.sim.parallel` in three layers of protection:

* **Checkpoint journal** (:class:`SweepJournal`) — an append-only JSONL file
  next to the CSV outputs.  Every completed cell is one flushed line, so a
  killed sweep resumes from the journal and recomputes only missing cells.
  Cells are pure functions of the config seed, so a resumed sweep is
  *identical* to an uninterrupted one.  The journal header carries a
  fingerprint of (sweep kind, config, algorithms); resuming against a
  journal written for different parameters is refused loudly.
* **Bounded retry with backoff** (:class:`RetryPolicy`) — a cell that
  raises is retried up to ``max_attempts`` times with exponential backoff;
  in pool mode a per-cell ``timeout`` additionally catches stuck workers
  (the tainted pool is discarded and rebuilt, pending cells are requeued).
* **Degraded aggregation** — a cell that exhausts its retries degrades to
  NaN instead of aborting the sweep.  :meth:`Curve.from_samples` drops NaNs
  and records per-point sample coverage in ``Curve.meta["coverage"]``; the
  returned curve sets record the failed-cell count in their ``meta``.

*Where* cells run is delegated to :mod:`repro.sim.executors`: in-process
(:class:`~repro.sim.executors.SerialExecutor`), on a local spawn pool
(:class:`~repro.sim.executors.PoolExecutor`), or across machines over TCP
(:class:`~repro.sim.executors.SocketExecutor`).  Every backend reports cell
outcomes through the same ``emit`` callback, so journal and retry semantics
are identical regardless of backend.  Timeouts are enforced per in-flight
batch deadline, collected in completion order — a stuck worker is detected
within ``timeout × batch`` of *its own* deadline, not after every earlier
batch has been awaited (the old batch-ordered collection delayed detection
by up to ``workers × timeout``).
"""

from __future__ import annotations

import enum
import hashlib
import json
import time as _time
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..obs import (
    STATUS_FILENAME,
    disable_live,
    enable_live,
    get_live,
    get_metrics,
    get_tracer,
)
from ..placement import PlacementAlgorithm
from .config import ExperimentConfig
from .executors import CellExecutor, make_executor, register_batch_planner
from .executors.shm import publish_for_executor
from .kernels import DEFAULT_BLOCK_ELEMENTS, batch_surface_stats, warm_worlds
from .results import Curve, CurveSet
from .rng import derive_rng
from .sweep import build_world
from .trial import run_placement_trial

__all__ = [
    "RetryPolicy",
    "SweepJournal",
    "run_cells",
    "sweep_fingerprint",
    "resilient_mean_error_curve",
    "resilient_placement_improvement_curves",
]

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before degrading a cell to NaN.

    Attributes:
        max_attempts: total tries per cell (1 = no retry).
        timeout: per-cell wall-clock limit in seconds (pool mode only; the
            serial path cannot preempt a running cell).  ``None`` disables.
        backoff: sleep before retry k is ``backoff · 2^(k-1)`` seconds
            (0 disables sleeping — used by tests).
    """

    max_attempts: int = 3
    timeout: float | None = None
    backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be non-negative, got {self.backoff}")

    def sleep_before(self, attempt: int) -> None:
        """Back off before retry ``attempt`` (2, 3, …)."""
        if self.backoff > 0:
            _time.sleep(self.backoff * 2 ** (attempt - 2))


def _canon_key(key) -> tuple:
    """Canonicalize a cell key for dict lookup and JSON round-tripping."""
    out = []
    for part in key:
        if isinstance(part, bool):
            raise TypeError("cell keys must be str/int/float")
        if isinstance(part, (int, np.integer)):
            out.append(int(part))
        elif isinstance(part, (float, np.floating)):
            out.append(float(part))
        elif isinstance(part, str):
            out.append(part)
        else:
            raise TypeError(f"unsupported cell-key part {part!r}")
    return tuple(out)


def _canon_json(obj, where: str):
    """Validate/convert a fingerprint payload to JSON-canonical values.

    The old ``json.dumps(..., default=str)`` escape hatch silently hashed
    ``str(obj)`` for unknown objects — anything whose ``str()`` embeds a
    memory address fingerprinted differently every run, defeating journal
    resume without any error.  Canonicalization is now explicit: enums
    stringify (matching what ``default=str`` produced, so existing journal
    fingerprints survive), numpy scalars narrow to Python numbers, and
    anything else raises instead of degrading.
    """
    if obj is None or isinstance(obj, (str, bool)):
        return obj
    if isinstance(obj, enum.Enum):
        return str(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, (list, tuple)):
        return [_canon_json(x, where) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canon_json(v, where) for k, v in obj.items()}
    raise TypeError(
        f"sweep_fingerprint: {where} contains non-JSON-canonical value {obj!r} "
        f"({type(obj).__name__}); pass plain str/int/float/bool/list/dict — "
        "for fault models, their spec()"
    )


def sweep_fingerprint(kind: str, config: ExperimentConfig, extra=None) -> str:
    """A stable identity for one sweep's parameter set.

    Two runs share a journal iff their fingerprints match — same kind of
    sweep, same config (seed included), same extras (e.g. algorithm names).

    Raises:
        TypeError: if ``extra`` (or the config) holds a value with no
            JSON-canonical form — an unstable ``str()`` would silently
            produce a fresh fingerprint every process.
    """
    payload = {
        "kind": kind,
        "config": _canon_json(asdict(config), "config"),
        "extra": _canon_json(extra, "extra"),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class _TruncatedHeader(Exception):
    """The journal's first line never made it to disk intact (killed run)."""


class SweepJournal:
    """Append-only JSONL checkpoint journal for sweep cells.

    Line 1 is a header ``{"kind": "header", "fingerprint": …, "version": 1}``;
    every further line is one cell:
    ``{"kind": "cell", "key": [...], "ok": true, "attempts": 1, "value": …}``
    (failed cells carry ``"ok": false`` and an ``"error"`` string instead of
    a value).  Lines are flushed as written, so a crashed run loses at most
    the line being written; a trailing partial line is ignored on load.  A
    run killed *during creation* leaves a truncated (or empty) header line —
    there is nothing to resume, so :meth:`open` recreates the journal with a
    warning instead of refusing the path forever.

    Use :meth:`open` — it validates the fingerprint of an existing journal
    and creates a fresh one otherwise.
    """

    VERSION = 1

    def __init__(self, path: Path, fingerprint: str, entries: dict):
        self.path = path
        self.fingerprint = fingerprint
        self._entries = entries
        self._handle = None

    @classmethod
    def open(cls, path, fingerprint: str) -> "SweepJournal":
        """Open (resuming), create, or recreate the journal at ``path``.

        Raises:
            ValueError: if an existing journal's fingerprint does not match
                — the journal belongs to a different sweep; delete it or
                pick another path.
        """
        p = Path(path)
        entries: dict = {}
        if p.exists():
            try:
                header, cells = cls._load(p)
            except _TruncatedHeader:
                warnings.warn(
                    f"journal {p} has a truncated header (the creating run "
                    "was killed mid-write); no cells are recoverable — "
                    "starting a fresh journal at this path",
                    RuntimeWarning,
                    stacklevel=2,
                )
                cls._create(p, fingerprint)
            else:
                if header.get("fingerprint") != fingerprint:
                    raise ValueError(
                        f"journal {p} was written for a different sweep "
                        f"(fingerprint {header.get('fingerprint')!r} != {fingerprint!r}); "
                        "delete it or choose another --journal path"
                    )
                entries = cells
        else:
            cls._create(p, fingerprint)
        return cls(p, fingerprint, entries)

    @classmethod
    def _create(cls, p: Path, fingerprint: str) -> None:
        p.parent.mkdir(parents=True, exist_ok=True)
        with p.open("w") as handle:
            handle.write(
                json.dumps(
                    {"kind": "header", "fingerprint": fingerprint, "version": cls.VERSION}
                )
                + "\n"
            )

    @staticmethod
    def _load(path: Path) -> tuple[dict, dict]:
        header: dict = {}
        cells: dict = {}
        with path.open() as handle:
            for i, line in enumerate(handle):
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if i == 0:
                        # The header itself is the partial line — the run
                        # died during journal creation; nothing to resume.
                        raise _TruncatedHeader(path) from None
                    # Partial trailing line from a killed run; everything
                    # before it is intact (one line per flushed cell).
                    break
                if i == 0:
                    if record.get("kind") != "header":
                        raise ValueError(f"journal {path} has no header line")
                    header = record
                elif record.get("kind") == "cell":
                    cells[_canon_key(record["key"])] = record
        if not header:
            # Zero complete lines: the file was created but the header never
            # hit the disk before the kill.
            raise _TruncatedHeader(path)
        return header, cells

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_completed(self) -> int:
        """Cells recorded with a usable value."""
        return sum(1 for e in self._entries.values() if e["ok"])

    def entry(self, key) -> dict | None:
        """The recorded entry for ``key``, or None."""
        return self._entries.get(_canon_key(key))

    def record(self, key, *, ok: bool, value=None, attempts: int, error: str | None = None) -> None:
        """Append one cell outcome (flushed immediately)."""
        k = _canon_key(key)
        entry = {"kind": "cell", "key": list(k), "ok": bool(ok), "attempts": int(attempts)}
        if ok:
            entry["value"] = value
        else:
            entry["error"] = error or "unknown"
        if self._handle is None:
            self._handle = self.path.open("a")
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()
        self._entries[k] = entry

    def close(self) -> None:
        """Close the append handle (reopened on the next record)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_cells(
    jobs: Sequence[tuple],
    fn: Callable,
    *,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    journal: SweepJournal | None = None,
    progress: ProgressFn | None = None,
    mp_context=None,
    executor: CellExecutor | None = None,
) -> dict:
    """Execute ``fn(args)`` for every ``(key, args)`` job, resiliently.

    Journaled cells with a recorded value are returned without recomputation
    (previously *failed* cells are retried — a resumed run gets a fresh
    chance).  Cells that exhaust :class:`RetryPolicy` map to ``None``.

    Args:
        jobs: ``(key, args)`` pairs; keys must be unique tuples of
            str/int/float.
        fn: the cell function; must be picklable (module-level) for pool
            mode and importable by reference for socket workers.
        workers: process count when no ``executor`` is given; ``<= 1`` runs
            in-process (no timeouts).
        policy: retry/timeout policy (default :class:`RetryPolicy`).
        journal: optional checkpoint journal.
        progress: optional callback for per-cell status lines.
        mp_context: multiprocessing context override (default: spawn).
        executor: a :class:`~repro.sim.executors.CellExecutor` to run cells
            on; overrides ``workers``.  The caller keeps ownership (it is
            not closed here), so one executor — and its connected socket
            workers — can serve several sweeps.

    Returns:
        ``{canonical key: value or None}`` for every job.
    """
    policy = policy or RetryPolicy()
    results: dict = {}
    pending: list[tuple] = []
    seen = set()
    for key, args in jobs:
        k = _canon_key(key)
        if k in seen:
            raise ValueError(f"duplicate cell key {k}")
        seen.add(k)
        entry = journal.entry(k) if journal is not None else None
        if entry is not None and entry["ok"]:
            results[k] = entry["value"]
        else:
            pending.append((k, args))
    if journal is not None and results:
        get_metrics().counter("sweep.cells.resumed").inc(len(results))
        if progress is not None:
            progress(f"resumed {len(results)} cell(s) from {journal.path}")
    # A journaled run keeps a live status ledger (status.json beside the
    # journal) so `beaconplace top`/`status` can watch progress.  Nested
    # run_cells calls (one CLI command sweeping several panels) reuse the
    # outer ledger rather than fight over the file.
    live = None
    if journal is not None and not get_live().enabled:
        live = enable_live(
            journal.path.parent / STATUS_FILENAME,
            fingerprint=journal.fingerprint,
            total=len(jobs),
        )
        for k, value in results.items():
            live.note_outcome(k, ok=True, value=value, resumed=True)
    if not pending:
        if live is not None:
            disable_live()
        return results

    def emit(key, *, ok, value=None, attempts, error=None):
        _note_outcome(
            results, journal, progress, key,
            ok=ok, value=value, attempts=attempts, error=error,
        )

    owned = executor is None
    if owned:
        executor = make_executor(workers=workers, mp_context=mp_context)
    try:
        with get_tracer().span(
            "sweep.run_cells", cells=len(pending), workers=max(workers, 1)
        ):
            executor.execute(
                pending, fn,
                policy=policy, emit=emit, progress=progress,
                fingerprint=journal.fingerprint if journal is not None else None,
            )
    finally:
        if owned:
            executor.close()
        if live is not None:
            disable_live()
    return results


def _note_outcome(results, journal, progress, key, *, ok, value=None, attempts, error=None):
    results[key] = value if ok else None
    get_metrics().counter("sweep.cells.completed" if ok else "sweep.cells.failed").inc()
    get_live().note_outcome(key, ok=ok, value=value)
    if journal is not None:
        journal.record(key, ok=ok, value=value, attempts=attempts, error=error)
    if progress is not None and not ok:
        progress(f"cell {key} FAILED after {attempts} attempt(s): {error}")


# -- Sweep drivers ----------------------------------------------------------


def _mean_error_cell(args) -> float:
    config, noise, count, index, faults, fault_time = args
    world = build_world(config, noise, count, index, faults=faults, fault_time=fault_time)
    return world.error_surface().mean_error()


def _improvement_cell(args) -> dict:
    config, noise, count, index, faults, fault_time, algorithms = args

    def rng_for(name: str):
        return derive_rng(config.seed, "alg", name, noise, count, index)

    world = build_world(config, noise, count, index, faults=faults, fault_time=fault_time)
    outcomes = run_placement_trial(world, list(algorithms), rng_for)
    return {
        o.algorithm: (o.improvement_mean, o.improvement_median) for o in outcomes
    }


def _mean_error_cells_planner(args_list):
    """Batch plan for :func:`_mean_error_cell`: one kernel pass per block.

    Worlds are built the normal way (field/realization caches make that
    cheap), pre-warmed through the batched kernels, reduced with
    :func:`batch_surface_stats`, and *dropped* — the returned thunks close
    over plain floats, so planning a chunk retains no arrays.  A cell whose
    world fails to build gets no thunk (``None``); the executor's scalar
    path recomputes it and surfaces the error with per-cell attribution.
    """
    thunks: list = [None] * len(args_list)
    worlds: list = []
    slots: list = []
    elements = 0

    def flush():
        nonlocal elements
        if not worlds:
            return
        warm_worlds(worlds)
        means, _ = batch_surface_stats(worlds, medians=False)
        for slot, mean in zip(slots, means):
            value = float(mean)
            thunks[slot] = lambda _v=value: _v
        worlds.clear()
        slots.clear()
        elements = 0

    for i, args in enumerate(args_list):
        config, noise, count, index, faults, fault_time = args
        try:
            world = build_world(
                config, noise, count, index, faults=faults, fault_time=fault_time
            )
        except Exception:  # noqa: BLE001 — scalar path owns the failure
            continue
        worlds.append(world)
        slots.append(i)
        elements += world.points().shape[0] * max(len(world.field), 1)
        if elements >= DEFAULT_BLOCK_ELEMENTS:
            flush()
    flush()
    return thunks


def _improvement_cells_planner(args_list):
    """Batch plan for :func:`_improvement_cell`: warm worlds, defer trials.

    The placement trial itself is order-sensitive, survey-driven scalar code
    — only the *initial* world evaluation (connectivity, centroid state, the
    base error surface) batches.  Each thunk runs the unchanged
    :func:`run_placement_trial` against its pre-warmed world with the exact
    RNG substreams :func:`_improvement_cell` would derive, and releases the
    world as soon as it runs so chunk memory peaks at one warmed chunk.
    """
    thunks: list = [None] * len(args_list)
    worlds: list = []
    for i, args in enumerate(args_list):
        config, noise, count, index, faults, fault_time, algorithms = args
        try:
            world = build_world(
                config, noise, count, index, faults=faults, fault_time=fault_time
            )
        except Exception:  # noqa: BLE001 — scalar path owns the failure
            continue
        worlds.append(world)
        holder = [world]

        def thunk(
            holder=holder,
            config=config,
            noise=noise,
            count=count,
            index=index,
            algorithms=algorithms,
        ):
            warmed, holder[0] = holder[0], None

            def rng_for(name: str):
                return derive_rng(config.seed, "alg", name, noise, count, index)

            outcomes = run_placement_trial(warmed, list(algorithms), rng_for)
            return {
                o.algorithm: (o.improvement_mean, o.improvement_median)
                for o in outcomes
            }

        thunks[i] = thunk
    warm_worlds(worlds)
    return thunks


register_batch_planner(_mean_error_cell, _mean_error_cells_planner)
register_batch_planner(_improvement_cell, _improvement_cells_planner)


def _open_journal(journal_path, fingerprint) -> SweepJournal | None:
    if journal_path is None:
        return None
    return SweepJournal.open(journal_path, fingerprint)


def _stable_describe(obj):
    """A run-independent JSON-able description of a parameter object.

    ``repr`` would embed object addresses for nested models (breaking
    fingerprint stability across processes); this recurses into ``__dict__``
    instead.
    """
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (list, tuple)):
        return [_stable_describe(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _stable_describe(v) for k, v in obj.items()}
    if getattr(obj, "__dict__", None):
        described = {k: _stable_describe(v) for k, v in vars(obj).items()}
        return {"__type__": type(obj).__name__, **described}
    return f"{type(obj).__name__}()"


def _fault_extra(faults, fault_time) -> dict | None:
    if faults is None:
        return None
    described = faults.spec() if hasattr(faults, "spec") else _stable_describe(faults)
    return {"faults": described, "time": fault_time}


def resilient_mean_error_curve(
    config: ExperimentConfig,
    noise: float,
    *,
    workers: int = 1,
    journal_path=None,
    policy: RetryPolicy | None = None,
    label: str | None = None,
    faults=None,
    fault_time: float = 0.0,
    progress: ProgressFn | None = None,
    executor: CellExecutor | None = None,
) -> Curve:
    """Figure 4/6 series with checkpointing, retries and NaN degradation.

    With no journal, no failures and ``workers <= 1`` this is byte-identical
    to :func:`repro.sim.mean_error_curve`; with a journal it resumes an
    interrupted run and still produces the identical curve.

    Args:
        config: experiment parameters.
        noise: the model's noise level for every cell.
        workers: process count (``<= 1`` = in-process).
        journal_path: JSONL checkpoint path (next to your CSV output);
            ``None`` disables checkpointing.
        policy: per-cell retry/timeout policy.
        label: series label override.
        faults: optional :class:`repro.faults.FaultModel` degrading every
            world (see :func:`repro.sim.build_world`).
        fault_time: snapshot time for ``faults``.
        progress: optional status callback.
        executor: run cells on this backend instead of ``workers`` local
            processes (see :mod:`repro.sim.executors`); stays open for the
            caller to reuse.
    """
    if label is None:
        label = "Ideal" if noise == 0.0 else f"Noise={noise:g}"
    fingerprint = sweep_fingerprint("mean-error", config, _fault_extra(faults, fault_time))
    journal = _open_journal(journal_path, fingerprint)
    jobs = [
        ((noise, count, index), (config, noise, count, index, faults, fault_time))
        for count in config.beacon_counts
        for index in range(config.fields_per_density)
    ]
    shared = None
    owned_executor = None
    if executor is None and workers > 1:
        # Build the pool here (instead of inside run_cells) so the shared
        # world state can be published on it before the first dispatch.
        owned_executor = executor = make_executor(workers=workers)
    try:
        shared = publish_for_executor(executor, config, noises=[noise])
        cells = run_cells(
            jobs, _mean_error_cell,
            workers=workers, policy=policy, journal=journal, progress=progress,
            executor=executor,
        )
    finally:
        if shared is not None:
            executor.shared_handle = None
            shared.unlink()
        if owned_executor is not None:
            owned_executor.close()
        if journal is not None:
            journal.close()
    samples_per_count = []
    failed = 0
    for count in config.beacon_counts:
        samples = np.empty(config.fields_per_density)
        for index in range(config.fields_per_density):
            value = cells[_canon_key((noise, count, index))]
            if value is None:
                failed += 1
                samples[index] = np.nan
            else:
                samples[index] = value
        samples_per_count.append(samples)
    curve = Curve.from_samples(
        label,
        config.beacon_counts,
        config.densities(),
        samples_per_count,
        confidence=config.confidence,
    )
    curve.meta["failed_cells"] = failed
    return curve


def resilient_placement_improvement_curves(
    config: ExperimentConfig,
    noise: float,
    algorithms: Sequence[PlacementAlgorithm],
    *,
    workers: int = 1,
    journal_path=None,
    policy: RetryPolicy | None = None,
    faults=None,
    fault_time: float = 0.0,
    progress: ProgressFn | None = None,
    executor: CellExecutor | None = None,
) -> tuple[CurveSet, CurveSet]:
    """Figure 5/7–9 series with checkpointing, retries and NaN degradation.

    Failure of a cell degrades that replication to NaN for *every*
    algorithm (the comparison stays paired); per-point coverage lands in
    each curve's ``meta["coverage"]`` and the failed-cell total in the
    curve sets' ``meta["failed_cells"]``.  See
    :func:`resilient_mean_error_curve` for the argument semantics.
    """
    names = [a.name for a in algorithms]
    if len(set(names)) != len(names):
        raise ValueError(f"algorithm names must be unique, got {names}")
    fingerprint = sweep_fingerprint(
        "improvement", config,
        {"algorithms": names, **(_fault_extra(faults, fault_time) or {})},
    )
    journal = _open_journal(journal_path, fingerprint)
    jobs = [
        (
            (noise, count, index),
            (config, noise, count, index, faults, fault_time, tuple(algorithms)),
        )
        for count in config.beacon_counts
        for index in range(config.fields_per_density)
    ]
    shared = None
    owned_executor = None
    if executor is None and workers > 1:
        owned_executor = executor = make_executor(workers=workers)
    try:
        shared = publish_for_executor(executor, config, noises=[noise])
        cells = run_cells(
            jobs, _improvement_cell,
            workers=workers, policy=policy, journal=journal, progress=progress,
            executor=executor,
        )
    finally:
        if shared is not None:
            executor.shared_handle = None
            shared.unlink()
        if owned_executor is not None:
            owned_executor.close()
        if journal is not None:
            journal.close()

    mean_samples = {n: [] for n in names}
    median_samples = {n: [] for n in names}
    failed = 0
    for count in config.beacon_counts:
        cell_mean = {n: np.empty(config.fields_per_density) for n in names}
        cell_median = {n: np.empty(config.fields_per_density) for n in names}
        for index in range(config.fields_per_density):
            value = cells[_canon_key((noise, count, index))]
            if value is None:
                failed += 1
                for n in names:
                    cell_mean[n][index] = np.nan
                    cell_median[n][index] = np.nan
            else:
                for n in names:
                    pair = value[n]
                    cell_mean[n][index] = pair[0]
                    cell_median[n][index] = pair[1]
        for n in names:
            mean_samples[n].append(cell_mean[n])
            median_samples[n].append(cell_median[n])

    def to_set(samples: dict, metric: str) -> CurveSet:
        curves = [
            Curve.from_samples(
                n,
                config.beacon_counts,
                config.densities(),
                samples[n],
                confidence=config.confidence,
            )
            for n in names
        ]
        return CurveSet(
            title=f"Improvement in {metric} error (noise={noise:g})",
            curves=curves,
            meta={
                "noise": noise,
                "fields_per_density": config.fields_per_density,
                "metric": metric,
                "workers": workers,
                "failed_cells": failed,
            },
        )

    return to_set(mean_samples, "mean"), to_set(median_samples, "median")
