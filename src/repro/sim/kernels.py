"""Batched evaluation of sweep cells: many worlds through one array pass.

The scalar hot path costs each cell a fresh ``(P × N)`` connectivity +
centroid localization pass — dozens of small NumPy calls whose fixed
overhead dominates the arithmetic at sweep geometry.  This module evaluates
a *chunk* of cells at once:

1. build every cell's :class:`~repro.sim.TrialWorld` the normal way (cheap —
   field generation and a realization seed; no heavy arrays yet),
2. group the worlds by (lattice, model family, beacon count, localizer),
3. run one ``(T × P × N)`` pass per group through the batched connectivity
   kernel (:mod:`repro.radio.kernels`) and the centroid estimate/error
   arithmetic, blocked over trials to bound memory,
4. **pre-warm** each world's caches with its slice of the batch, so the
   ordinary per-cell code (``error_surface()``, ``run_placement_trial``)
   finds everything computed and never touches the scalar hot path.

Bit-identity is the design invariant, not an aspiration: elementwise ops are
IEEE-deterministic per element regardless of batch shape, and every
order-sensitive reduction (the centroid mat-vec, means/medians, the
unlocalized-policy nearest-beacon search) runs per-trial through the *same
calls* the scalar path makes.  ``tests/test_sim_kernels.py`` asserts
equality down to the bit across localizer policies, empty fields, fault
masks and NaN-degraded cells.

Worlds the kernels cannot express (non-centroid localizers, exotic
propagation models) are silently left cold — downstream code computes them
through the unchanged scalar path, so batching is never a correctness
decision.  ``REPRO_KERNELS=scalar`` (or :func:`set_kernel_mode`) disables
batching globally for A/B measurement.
"""

from __future__ import annotations

import os

import numpy as np

from ..field import Beacon
from ..geometry import Point
from ..localization import (
    CentroidLocalizer,
    CentroidState,
    UnlocalizedPolicy,
    apply_unlocalized_policy,
)
from ..obs import get_metrics, get_profile
from ..radio.kernels import batch_params_from_realization, batched_connectivity
from .trial import TrialWorld

__all__ = [
    "kernel_mode",
    "set_kernel_mode",
    "warm_worlds",
    "batch_surface_stats",
    "candidate_columns",
    "DEFAULT_BLOCK_ELEMENTS",
]

#: Trials per batched pass are sized so one (T, P, N) float64 temporary
#: stays near this many elements (~32 MB) — paper fidelity (P=10201, N=240)
#: still batches a couple of trials per pass; bench geometry batches
#: thousands.
DEFAULT_BLOCK_ELEMENTS = 4_000_000

_VALID_MODES = ("batch", "scalar")
_mode = os.environ.get("REPRO_KERNELS", "batch")
if _mode not in _VALID_MODES:
    _mode = "batch"


def kernel_mode() -> str:
    """The active kernel mode: ``"batch"`` (default) or ``"scalar"``."""
    return _mode


def set_kernel_mode(mode: str) -> None:
    """Select the kernel mode (propagated to workers via dispatch payloads).

    Args:
        mode: ``"batch"`` — vectorized kernels pre-warm world caches;
            ``"scalar"`` — every cell runs the legacy per-world path.
    """
    global _mode
    if mode not in _VALID_MODES:
        raise ValueError(f"kernel mode must be one of {_VALID_MODES}, got {mode!r}")
    _mode = mode


def candidate_columns(realization, points, beacon_id, positions) -> np.ndarray:
    """``(P, K)`` connectivity columns of ``K`` candidate beacons, one pass.

    Every candidate probes under the SAME id ``beacon_id`` — the id the
    next added beacon would actually receive — so column ``k`` is
    byte-identical to ``realization.connectivity(points, [Beacon(beacon_id,
    p_k)])[:, 0]``.  Duplicate ids are legal in a probe sequence: only the
    ``(seed, id)`` hash enters the per-link noise, never id uniqueness.

    Batchable realizations run one ``(1, P, K)`` kernel pass; other model
    families (and ``REPRO_KERNELS=scalar``) take the scalar call, which
    produces the identical bytes — the mode is a perf toggle, not a
    correctness decision.  This is the survey-scan primitive behind
    :meth:`repro.sim.incremental.FieldState.scan_add_candidates`.
    """
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"expected (K, 2) candidate positions, got {pos.shape}")
    params = batch_params_from_realization(realization)
    if params is None or kernel_mode() == "scalar":
        probes = [
            Beacon(int(beacon_id), Point(float(x), float(y))) for x, y in pos
        ]
        return realization.connectivity(points, probes)
    seeds = np.array([realization.seed], dtype=np.uint64)
    ids = np.full((1, pos.shape[0]), int(beacon_id), dtype=np.uint64)
    stacked = batched_connectivity(params, seeds, ids, pos[None, :, :], points)
    return np.ascontiguousarray(stacked[0])


def _world_group_key(world: TrialWorld, params) -> tuple:
    """Worlds sharing this key may be evaluated in one stacked pass."""
    localizer = world.localizer
    return (
        world.grid,
        params.key(),
        len(world.field),
        localizer.policy,
        localizer.terrain_side,
    )


def _eligible(world: TrialWorld):
    """The world's batch parameters, or None if it must stay scalar."""
    if type(world.localizer) is not CentroidLocalizer:
        return None
    if world._conn is not None or world._state is not None or world._errors is not None:
        return None  # already (partially) evaluated; don't disturb caches
    return batch_params_from_realization(world.realization)


def warm_worlds(
    worlds: "list[TrialWorld]", *, block_elements: int = DEFAULT_BLOCK_ELEMENTS
) -> int:
    """Pre-compute connectivity, centroid state and errors for many worlds.

    Groups eligible worlds, runs the batched kernels, and fills each world's
    private caches with its slice — afterwards ``world.errors()`` /
    ``world.survey()`` / ``run_placement_trial`` are cache hits.  Ineligible
    worlds are left untouched (the scalar path evaluates them lazily).

    Args:
        worlds: the worlds of one dispatch chunk, in any order.
        block_elements: memory bound — trials are blocked so one
            ``(T, P, N)`` float64 temporary holds at most this many elements.

    Returns:
        The number of worlds that were warmed.
    """
    metrics = get_metrics()
    groups: dict = {}
    for world in worlds:
        params = _eligible(world)
        if params is None:
            metrics.counter("kernel.scalar.worlds").inc()
            continue
        groups.setdefault(_world_group_key(world, params), (params, []))[1].append(world)
    warmed = 0
    with get_profile().section("kernel.batch"):
        for (_, _, n_beacons, policy, terrain_side), (params, members) in groups.items():
            pts = members[0].points()
            per_trial = max(1, pts.shape[0] * max(n_beacons, 1))
            t_block = max(1, block_elements // per_trial)
            for start in range(0, len(members), t_block):
                block = members[start : start + t_block]
                _warm_block(block, params, pts, policy, terrain_side)
                warmed += len(block)
            metrics.counter("kernel.batch.groups").inc()
    if warmed:
        metrics.counter("kernel.batch.worlds").inc(warmed)
    return warmed


def _warm_block(worlds, params, pts, policy, terrain_side) -> None:
    """One stacked pass: connectivity → centroid state → estimates → errors."""
    seeds = np.asarray([np.uint64(w.realization.seed) for w in worlds], dtype=np.uint64)
    ids = np.asarray(
        [np.asarray(w.field.beacon_ids, dtype=np.uint64) for w in worlds],
        dtype=np.uint64,
    ).reshape(len(worlds), -1)
    positions = np.asarray([w.field.positions() for w in worlds], dtype=float).reshape(
        len(worlds), -1, 2
    )
    conn3 = batched_connectivity(params, seeds, ids, positions, pts)  # (T, P, N)
    counts3 = conn3.sum(axis=2)  # exact integers; per-row order-independent
    # The stacked mat-mul runs the same (P, N) @ (N, 2) product per trial
    # slice that ``CentroidState.from_connectivity`` would (same operand
    # values, dtypes and layout per slice ⇒ same bits — enforced by the
    # kernel identity tests); counts are exact integers from the batched sum.
    sums3 = conn3.astype(float) @ positions  # (T, P, 2)
    states = [
        CentroidState(coord_sums=sums3[i], counts=counts3[i])
        for i in range(len(worlds))
    ]
    # Estimates are elementwise: coord_sums / max(counts, 1).
    safe3 = np.maximum(counts3, 1).astype(float)
    est3 = sums3 / safe3[:, :, None]
    unheard3 = counts3 == 0
    if policy is UnlocalizedPolicy.TERRAIN_CENTER:
        est3[unheard3] = terrain_side / 2.0
    elif policy is UnlocalizedPolicy.EXCLUDE:
        est3[unheard3] = np.nan
    elif policy is UnlocalizedPolicy.ZERO_ERROR:
        est3[unheard3] = np.broadcast_to(pts[None], est3.shape)[unheard3]
    else:
        # NEAREST_BEACON (and any future policy): order-sensitive per-trial
        # search — delegate to the scalar implementation slice by slice.
        for i, world in enumerate(worlds):
            est3[i] = apply_unlocalized_policy(
                est3[i],
                unheard3[i],
                policy,
                points=pts,
                beacon_positions=world.field.positions(),
                terrain_side=terrain_side,
            )
    # LE = sqrt(dx² + dy²): a two-term, order-fixed reduction (matches
    # localization_errors elementwise).
    diff3 = est3 - pts[None, :, :]
    errors3 = np.sqrt(np.einsum("tpk,tpk->tp", diff3, diff3))
    for i, world in enumerate(worlds):
        world.prewarm(
            conn=conn3[i], state=states[i], errors=np.ascontiguousarray(errors3[i])
        )


def batch_surface_stats(
    worlds: "list[TrialWorld]", *, medians: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Per-world ``(mean LE, median LE)`` in one stacked reduction.

    Bit-identical to calling ``world.error_surface().mean_error()`` /
    ``.median_error()`` per world: NumPy's nan-reductions over the rows of a
    contiguous stack use the same pairwise summation as the per-row calls
    (enforced by ``tests/test_sim_kernels.py``), and all-NaN rows yield NaN
    exactly like :class:`~repro.localization.ErrorSurface`'s guard.

    Args:
        worlds: worlds whose error caches are (or will lazily be) available.
        medians: skip the median reduction when only means are needed.

    Returns:
        ``(means, medians)`` float arrays aligned with ``worlds`` (medians
        all-NaN when not requested).
    """
    means = np.full(len(worlds), np.nan)
    meds = np.full(len(worlds), np.nan)
    by_size: dict = {}
    for i, world in enumerate(worlds):
        errors = world.errors()
        idxs, rows = by_size.setdefault(errors.shape[0], ([], []))
        idxs.append(i)
        rows.append(errors)
    for idxs, rows in by_size.values():
        stacked = np.stack(rows)
        measured = ~np.isnan(stacked).all(axis=1)
        if not measured.any():
            continue
        where = np.asarray(idxs)[measured]
        sub = stacked[measured]
        means[where] = np.nanmean(sub, axis=1)
        if medians:
            meds[where] = np.nanmedian(sub, axis=1)
    return means, meds
