"""Hierarchical random-number streams.

Reproducibility rule for the whole package: every random quantity descends
from one master seed through *named substreams*, so that

* the i-th field of density d at noise ν is the same no matter which subset
  of the sweep you run (benches at reduced fidelity sample the exact fields
  the full run would use),
* algorithms evaluated on the same field see the same world but draw their
  own decisions from independent streams, and
* two processes can compute disjoint slices of a sweep without coordination.

Streams are derived with :class:`numpy.random.SeedSequence` spawn keys from
hashed string/integer key paths.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["derive_rng", "derive_seed_sequence"]


def _key_to_int(key) -> int:
    """Map a str/int/float key to a stable 32-bit integer."""
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    if isinstance(key, float):
        return zlib.crc32(repr(key).encode()) & 0xFFFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode()) & 0xFFFFFFFF
    raise TypeError(f"unsupported rng key type: {type(key).__name__}")


def derive_seed_sequence(seed: int, *keys) -> np.random.SeedSequence:
    """A seed sequence for the named substream ``seed / keys[0] / keys[1] …``.

    Args:
        seed: the master seed.
        keys: path of str/int/float components naming the substream, e.g.
            ``("fig5", noise, num_beacons, field_index)``.
    """
    return np.random.SeedSequence(
        entropy=int(seed), spawn_key=tuple(_key_to_int(k) for k in keys)
    )


def derive_rng(seed: int, *keys) -> np.random.Generator:
    """A PCG64 generator for the named substream (see module docstring)."""
    return np.random.Generator(np.random.PCG64(derive_seed_sequence(seed, *keys)))
