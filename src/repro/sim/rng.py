"""Hierarchical random-number streams.

Reproducibility rule for the whole package: every random quantity descends
from one master seed through *named substreams*, so that

* the i-th field of density d at noise ν is the same no matter which subset
  of the sweep you run (benches at reduced fidelity sample the exact fields
  the full run would use),
* algorithms evaluated on the same field see the same world but draw their
  own decisions from independent streams, and
* two processes can compute disjoint slices of a sweep without coordination.

Streams are derived with :class:`numpy.random.SeedSequence` spawn keys from
hashed string/integer key paths.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["derive_rng", "derive_seed_sequence"]


def _key_to_int(key) -> int:
    """Map a str/int/float key to a stable 32-bit integer."""
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    if isinstance(key, float):
        return zlib.crc32(repr(key).encode()) & 0xFFFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode()) & 0xFFFFFFFF
    raise TypeError(f"unsupported rng key type: {type(key).__name__}")


def derive_seed_sequence(seed: int, *keys) -> np.random.SeedSequence:
    """A seed sequence for the named substream ``seed / keys[0] / keys[1] …``.

    Args:
        seed: the master seed.
        keys: path of str/int/float components naming the substream, e.g.
            ``("fig5", noise, num_beacons, field_index)``.
    """
    return np.random.SeedSequence(
        entropy=int(seed), spawn_key=tuple(_key_to_int(k) for k in keys)
    )


#: Initial PCG64 states per substream identity.  Deriving a stream means
#: hashing the key path into a SeedSequence and pooling its entropy — pure
#: recomputation for substreams a sweep revisits (field streams are shared
#: across every noise level and fault time).  Restoring a cached state is
#: byte-identical to re-deriving it and roughly halves the cost.
_STATE_CACHE: "dict[tuple, dict]" = {}
_STATE_CACHE_MAX = 4096


def derive_rng(seed: int, *keys) -> np.random.Generator:
    """A PCG64 generator for the named substream (see module docstring)."""
    identity = (int(seed), tuple(_key_to_int(k) for k in keys))
    state = _STATE_CACHE.get(identity)
    if state is None:
        bit_gen = np.random.PCG64(
            np.random.SeedSequence(entropy=identity[0], spawn_key=identity[1])
        )
        if len(_STATE_CACHE) >= _STATE_CACHE_MAX:
            _STATE_CACHE.pop(next(iter(_STATE_CACHE)))
        _STATE_CACHE[identity] = bit_gen.state
    else:
        bit_gen = np.random.PCG64(0)
        bit_gen.state = state
    return np.random.Generator(bit_gen)
