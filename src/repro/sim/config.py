"""Experiment configuration — Table 1 of the paper and derived quantities.

====================  =======================
Parameter             Value
====================  =======================
Side                  100 m
R                     15 m
step                  1 m
N_G                   400
====================  =======================

plus the §4.1 methodology: beacon counts 20..240 in steps of 10 (densities
0.002..0.024 /m², i.e. 1.41..17 beacons per nominal coverage area), noise
levels {0, 0.1, 0.3, 0.5}, 1000 random fields per density, 95 % confidence
intervals.

:class:`ExperimentConfig` carries all of it; :func:`paper_config` builds the
exact paper values.  Benches scale ``fields_per_density`` (and optionally
subsample the density sweep) through environment variables — same code path,
wider confidence intervals.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace

from ..field import density_from_count, paper_density_sweep
from ..geometry import MeasurementGrid, OverlappingGridLayout
from ..localization import UnlocalizedPolicy

__all__ = ["ExperimentConfig", "paper_config", "bench_config"]

#: The paper's noise sweep (§4.2.1).
PAPER_NOISE_LEVELS = (0.0, 0.1, 0.3, 0.5)


@dataclass(frozen=True)
class ExperimentConfig:
    """Full parameterization of a placement experiment.

    Attributes:
        side: terrain side (``Side``), meters.
        radio_range: nominal range (``R``), meters.
        step: measurement lattice spacing (``step``), meters.
        num_grids: overlapping grids (``N_G``) for the Grid algorithm.
        beacon_counts: the density sweep, as beacon counts.
        noise_levels: ``Noise`` values for the beacon-noise model.
        fields_per_density: replications per (density, noise) cell.
        seed: master seed; everything derives from it.
        policy: unlocalizable-point convention (see DESIGN.md).
        confidence: confidence level for interval reporting.
        cm_thresh: connectivity-threshold interpretation of the noise model
            (see DESIGN.md §"noise-model interpretation"): None evaluates the
            paper's formula symmetrically; a value in [0.5, 1] applies the
            §2.2 message-threshold rule, shrinking each noisy beacon's
            effective range by ``(2·CM_thresh − 1)·nf(B)·R``.  The default
            0.9 reproduces the paper's reported noise magnitudes (+≈33 %
            mean error, +≈50 % saturation density at Noise = 0.5); the
            symmetric reading yields only +5–7 % (ablation bench).
    """

    side: float = 100.0
    radio_range: float = 15.0
    step: float = 1.0
    num_grids: int = 400
    beacon_counts: tuple[int, ...] = field(
        default_factory=lambda: tuple(paper_density_sweep())
    )
    noise_levels: tuple[float, ...] = PAPER_NOISE_LEVELS
    fields_per_density: int = 1000
    seed: int = 20010416  # ICDCS 2001, Phoenix, April — arbitrary but memorable
    policy: UnlocalizedPolicy = UnlocalizedPolicy.TERRAIN_CENTER
    confidence: float = 0.95
    cm_thresh: float | None = 0.9

    def __post_init__(self) -> None:
        if self.fields_per_density < 1:
            raise ValueError(
                f"fields_per_density must be >= 1, got {self.fields_per_density}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if not self.beacon_counts:
            raise ValueError("beacon_counts must not be empty")

    # -- Derived quantities (the values quoted in the paper text) ----------

    def measurement_grid(self) -> MeasurementGrid:
        """The ``(Side/step + 1)²``-point measurement lattice."""
        return MeasurementGrid(self.side, self.step)

    def grid_layout(self) -> OverlappingGridLayout:
        """The ``N_G`` overlapping grids with ``gridSide = 2R``."""
        return OverlappingGridLayout.for_radio_range(
            self.side, self.radio_range, self.num_grids
        )

    @property
    def num_measurement_points(self) -> int:
        """``P_T = (Side/step + 1)²`` (10201 for the paper values)."""
        return self.measurement_grid().num_points

    @property
    def grid_side(self) -> float:
        """``gridSide = 2R`` (30 m for the paper values)."""
        return 2.0 * self.radio_range

    @property
    def points_per_grid(self) -> float:
        """``P_G = P_T · (2R)² / Side²`` (the paper's interior formula)."""
        return self.num_measurement_points * self.grid_side**2 / self.side**2

    def densities(self) -> list[float]:
        """Beacons per m² for each entry of the count sweep."""
        return [density_from_count(n, self.side) for n in self.beacon_counts]

    def coverage_densities(self) -> list[float]:
        """Beacons per nominal coverage area ``π R²`` for each count."""
        area = math.pi * self.radio_range**2
        return [d * area for d in self.densities()]

    def with_counts(self, counts) -> "ExperimentConfig":
        """A copy with a different density sweep."""
        return replace(self, beacon_counts=tuple(int(c) for c in counts))

    def with_fields(self, fields_per_density: int) -> "ExperimentConfig":
        """A copy with a different replication count."""
        return replace(self, fields_per_density=fields_per_density)


def paper_config() -> ExperimentConfig:
    """The exact §4.1 configuration (1000 fields per density)."""
    return ExperimentConfig()


def bench_config() -> ExperimentConfig:
    """The default bench fidelity, controlled by environment variables.

    * ``REPRO_FULL=1`` — the exact paper configuration.
    * ``REPRO_FIELDS=k`` — replications per density (default 40).
    * ``REPRO_DENSITIES=n`` — keep every ⌈23/n⌉-th count of the sweep so it
      has about ``n`` points (default 8; the endpoints always survive).
    """
    if os.environ.get("REPRO_FULL") == "1":
        return paper_config()
    fields = int(os.environ.get("REPRO_FIELDS", "40"))
    target = int(os.environ.get("REPRO_DENSITIES", "8"))
    full = paper_density_sweep()
    stride = max(1, round(len(full) / max(target, 2)))
    counts = full[::stride]
    if full[-1] not in counts:
        counts = counts + [full[-1]]
    return ExperimentConfig(beacon_counts=tuple(counts), fields_per_density=fields)
