"""Multiprocess execution of sweep cells.

Paper-fidelity sweeps (1000 fields × 23 densities × 4 noises) are hours of
single-core work but embarrassingly parallel: every (count, field-index)
cell is independent by construction (named RNG streams, no shared state).
These helpers fan the per-field loop of the §4 drivers across a process
pool; determinism is untouched because each worker derives exactly the same
streams the serial loop would.

Workers receive only picklable plain data (the config dataclass, scalars,
algorithm instances); custom ``model_factory`` closures are therefore not
supported in parallel mode — parameterize via ``config`` instead.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

import numpy as np

from ..obs import get_metrics, instrumented_call, metrics_enabled
from ..placement import PlacementAlgorithm
from .config import ExperimentConfig
from .executors import spawn_context, validate_workers
from .results import Curve, CurveSet
from .rng import derive_rng
from .sweep import build_world
from .trial import run_placement_trial

__all__ = [
    "parallel_mean_error_curve",
    "parallel_placement_improvement_curves",
    "spawn_context",
    "validate_workers",
]


def _mean_error_cell(args) -> float:
    config, noise, count, index = args
    world = build_world(config, noise, count, index)
    return world.error_surface().mean_error()


def _improvement_cell(args) -> dict:
    config, noise, count, index, algorithms = args

    def rng_for(name: str):
        return derive_rng(config.seed, "alg", name, noise, count, index)

    world = build_world(config, noise, count, index)
    outcomes = run_placement_trial(world, list(algorithms), rng_for)
    return {
        o.algorithm: (o.improvement_mean, o.improvement_median) for o in outcomes
    }


def _map(fn, jobs, workers: int):
    if workers <= 1:
        return [fn(job) for job in jobs]
    chunksize = max(len(jobs) // (workers * 4), 1)
    with ProcessPoolExecutor(max_workers=workers, mp_context=spawn_context()) as pool:
        if not metrics_enabled():
            return list(pool.map(fn, jobs, chunksize=chunksize))
        # Observability on: run each cell under a worker-local registry and
        # fold the shipped snapshots into the parent registry (see
        # repro.obs.instrumented_call).
        metrics = get_metrics()
        values = []
        payloads = [(fn, job) for job in jobs]
        for wrapped in pool.map(instrumented_call, payloads, chunksize=chunksize):
            metrics.merge(wrapped["metrics"])
            values.append(wrapped["value"])
        return values


def parallel_mean_error_curve(
    config: ExperimentConfig,
    noise: float,
    *,
    workers: int,
    label: str | None = None,
) -> Curve:
    """Figure 4/6 series computed on a process pool.

    Identical output to :func:`repro.sim.mean_error_curve` (same streams),
    just faster.  ``workers <= 1`` degrades to the serial loop.
    """
    validate_workers(workers)
    if label is None:
        label = "Ideal" if noise == 0.0 else f"Noise={noise:g}"
    samples_per_count = []
    for count in config.beacon_counts:
        jobs = [
            (config, noise, count, i) for i in range(config.fields_per_density)
        ]
        samples_per_count.append(np.asarray(_map(_mean_error_cell, jobs, workers)))
    return Curve.from_samples(
        label,
        config.beacon_counts,
        config.densities(),
        samples_per_count,
        confidence=config.confidence,
    )


def parallel_placement_improvement_curves(
    config: ExperimentConfig,
    noise: float,
    algorithms: Sequence[PlacementAlgorithm],
    *,
    workers: int,
) -> tuple[CurveSet, CurveSet]:
    """Figure 5/7–9 series computed on a process pool.

    Identical output to :func:`repro.sim.placement_improvement_curves`.
    """
    validate_workers(workers)
    names = [a.name for a in algorithms]
    if len(set(names)) != len(names):
        raise ValueError(f"algorithm names must be unique, got {names}")

    mean_samples = {n: [] for n in names}
    median_samples = {n: [] for n in names}
    for count in config.beacon_counts:
        jobs = [
            (config, noise, count, i, tuple(algorithms))
            for i in range(config.fields_per_density)
        ]
        cells = _map(_improvement_cell, jobs, workers)
        for name in names:
            mean_samples[name].append(np.asarray([c[name][0] for c in cells]))
            median_samples[name].append(np.asarray([c[name][1] for c in cells]))

    def to_set(samples: dict, metric: str) -> CurveSet:
        curves = [
            Curve.from_samples(
                n,
                config.beacon_counts,
                config.densities(),
                samples[n],
                confidence=config.confidence,
            )
            for n in names
        ]
        return CurveSet(
            title=f"Improvement in {metric} error (noise={noise:g})",
            curves=curves,
            meta={
                "noise": noise,
                "fields_per_density": config.fields_per_density,
                "metric": metric,
                "workers": workers,
            },
        )

    return to_set(mean_samples, "mean"), to_set(median_samples, "median")
