"""Result persistence: curves ⇄ CSV.

Sweeps at paper fidelity take hours; benches and examples persist their
curves so figures can be re-rendered (or diffed against EXPERIMENTS.md)
without recomputation.  The format is a flat CSV with one row per
(series, density) pair — trivially loadable by any plotting tool.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .results import Curve, CurveSet

__all__ = ["write_curve_set", "read_curve_set"]

_FIELDS = ["label", "count", "density", "value", "ci_half_width", "num_samples"]


def write_curve_set(curve_set: CurveSet, path) -> Path:
    """Write a curve set to CSV (directories created as needed).

    Returns:
        The written path.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for row in curve_set.as_rows():
            writer.writerow(row)
    return out


def read_curve_set(path, title: str | None = None) -> CurveSet:
    """Read a curve set written by :func:`write_curve_set`.

    Args:
        path: the CSV path.
        title: title for the reconstructed set (defaults to the file stem).
    """
    src = Path(path)
    series: dict[str, list[dict]] = {}
    with src.open(newline="") as handle:
        for row in csv.DictReader(handle):
            series.setdefault(row["label"], []).append(row)

    curves = []
    for label, rows in series.items():
        curves.append(
            Curve(
                label=label,
                counts=tuple(int(r["count"]) for r in rows),
                densities=tuple(float(r["density"]) for r in rows),
                values=tuple(float(r["value"]) for r in rows),
                ci_half_widths=tuple(float(r["ci_half_width"]) for r in rows),
                num_samples=tuple(int(r["num_samples"]) for r in rows),
            )
        )
    return CurveSet(title=title or src.stem, curves=curves)
