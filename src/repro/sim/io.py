"""Result persistence: curves ⇄ CSV.

Sweeps at paper fidelity take hours; benches and examples persist their
curves so figures can be re-rendered (or diffed against EXPERIMENTS.md)
without recomputation.  The format is a flat CSV with one row per
(series, density) pair — trivially loadable by any plotting tool.  Degraded
sweeps carry a ``coverage`` column (fraction of scheduled replications that
produced a finite sample; 1.0 for clean runs) which round-trips into
``Curve.meta["coverage"]``.

Timeline sweeps (:mod:`repro.sim.timeline`) persist the same way but over a
time axis with asymmetric bootstrap bounds: one row per (series, time) pair
with ``ci_low``/``ci_high`` instead of a symmetric half-width, plus the
per-point ``alive_fraction`` — see :func:`write_time_curve_set`.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .results import Curve, CurveSet, TimeCurve

__all__ = [
    "write_curve_set",
    "read_curve_set",
    "write_time_curve_set",
    "read_time_curve_set",
]

_FIELDS = ["label", "count", "density", "value", "ci_half_width", "num_samples", "coverage"]

#: column -> converter; ``coverage`` is optional for pre-coverage CSVs.
_REQUIRED = {
    "label": str,
    "count": int,
    "density": float,
    "value": float,
    "ci_half_width": float,
    "num_samples": int,
}


def write_curve_set(curve_set: CurveSet, path) -> Path:
    """Write a curve set to CSV (directories created as needed).

    Returns:
        The written path.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for row in curve_set.as_rows():
            writer.writerow(row)
    return out


def _parse_row(src: Path, line: int, row: dict) -> dict:
    parsed = {}
    for column, convert in _REQUIRED.items():
        raw = row.get(column)
        if raw is None or raw == "":
            raise ValueError(
                f"{src}: row {line} is missing column {column!r} "
                f"(expected columns {_FIELDS})"
            )
        try:
            parsed[column] = convert(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"{src}: row {line} has malformed value {raw!r} in column "
                f"{column!r} (expected {convert.__name__})"
            ) from None
    raw_coverage = row.get("coverage")
    if raw_coverage in (None, ""):
        parsed["coverage"] = 1.0  # pre-coverage CSVs
    else:
        try:
            parsed["coverage"] = float(raw_coverage)
        except ValueError:
            raise ValueError(
                f"{src}: row {line} has malformed value {raw_coverage!r} in "
                f"column 'coverage' (expected float)"
            ) from None
    return parsed


def read_curve_set(path, title: str | None = None) -> CurveSet:
    """Read a curve set written by :func:`write_curve_set`.

    Args:
        path: the CSV path.
        title: title for the reconstructed set (defaults to the file stem).

    Raises:
        ValueError: naming the file and the missing/malformed column, if the
            CSV does not parse as a curve set.
    """
    src = Path(path)
    series: dict[str, list[dict]] = {}
    with src.open(newline="") as handle:
        reader = csv.DictReader(handle)
        header = reader.fieldnames or []
        missing = [c for c in _REQUIRED if c not in header]
        if missing:
            raise ValueError(
                f"{src}: header {header} is missing required "
                f"column(s) {missing} — not a curve-set CSV?"
            )
        for line, row in enumerate(reader, start=2):
            parsed = _parse_row(src, line, row)
            series.setdefault(parsed["label"], []).append(parsed)

    curves = []
    for label, rows in series.items():
        coverage = tuple(r["coverage"] for r in rows)
        meta = {} if all(c == 1.0 for c in coverage) else {"coverage": coverage}
        curves.append(
            Curve(
                label=label,
                counts=tuple(r["count"] for r in rows),
                densities=tuple(r["density"] for r in rows),
                values=tuple(r["value"] for r in rows),
                ci_half_widths=tuple(r["ci_half_width"] for r in rows),
                num_samples=tuple(r["num_samples"] for r in rows),
                meta=meta,
            )
        )
    return CurveSet(title=title or src.stem, curves=curves)


_TIME_FIELDS = [
    "label",
    "time",
    "value",
    "ci_low",
    "ci_high",
    "num_samples",
    "coverage",
    "alive_fraction",
]

#: column -> converter; every timeline column is required (the format is new,
#: there are no pre-coverage files to tolerate).
_TIME_REQUIRED = {
    "label": str,
    "time": float,
    "value": float,
    "ci_low": float,
    "ci_high": float,
    "num_samples": int,
    "coverage": float,
    "alive_fraction": float,
}


def write_time_curve_set(curve_set: CurveSet, path) -> Path:
    """Write a timeline curve set (of :class:`TimeCurve`) to CSV.

    NaN points (total-outage times, exhausted cells) are written as ``nan``
    and survive the round trip.

    Returns:
        The written path.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_TIME_FIELDS)
        writer.writeheader()
        for row in curve_set.as_rows():
            writer.writerow(row)
    return out


def _parse_time_row(src: Path, line: int, row: dict) -> dict:
    parsed = {}
    for column, convert in _TIME_REQUIRED.items():
        raw = row.get(column)
        if raw is None or raw == "":
            raise ValueError(
                f"{src}: row {line} is missing column {column!r} "
                f"(expected columns {_TIME_FIELDS})"
            )
        try:
            parsed[column] = convert(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"{src}: row {line} has malformed value {raw!r} in column "
                f"{column!r} (expected {convert.__name__})"
            ) from None
    return parsed


def read_time_curve_set(path, title: str | None = None) -> CurveSet:
    """Read a timeline curve set written by :func:`write_time_curve_set`.

    Args:
        path: the CSV path.
        title: title for the reconstructed set (defaults to the file stem).

    Raises:
        ValueError: naming the file and the missing/malformed column, if the
            CSV does not parse as a timeline curve set.
    """
    src = Path(path)
    series: dict[str, list[dict]] = {}
    with src.open(newline="") as handle:
        reader = csv.DictReader(handle)
        header = reader.fieldnames or []
        missing = [c for c in _TIME_REQUIRED if c not in header]
        if missing:
            raise ValueError(
                f"{src}: header {header} is missing required "
                f"column(s) {missing} — not a timeline curve-set CSV?"
            )
        for line, row in enumerate(reader, start=2):
            parsed = _parse_time_row(src, line, row)
            series.setdefault(parsed["label"], []).append(parsed)

    curves = []
    for label, rows in series.items():
        curves.append(
            TimeCurve(
                label=label,
                times=tuple(r["time"] for r in rows),
                values=tuple(r["value"] for r in rows),
                ci_low=tuple(r["ci_low"] for r in rows),
                ci_high=tuple(r["ci_high"] for r in rows),
                num_samples=tuple(r["num_samples"] for r in rows),
                meta={
                    "coverage": tuple(r["coverage"] for r in rows),
                    "alive_fraction": tuple(r["alive_fraction"] for r in rows),
                },
            )
        )
    return CurveSet(title=title or src.stem, curves=curves)
