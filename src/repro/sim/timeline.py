"""Time-series fault sweeps: error-vs-time curves through the resilient engine.

The paper evaluates placement quality as error-vs-*density* curves; this
module produces the temporal analogue — localization error vs. *time* as
beacons die under :mod:`repro.faults` schedules — which is the evaluation
substrate fault-aware placement needs.  It is a second sweep *kind* on the
same resilient machinery (:func:`repro.sim.resilient.run_cells`): cells are
journaled, retried, NaN-degraded and executable on any backend
(:mod:`repro.sim.executors`), which is the proof that the cell/journal
abstraction is sweep-agnostic.

One cell is ``(fault model, trial, time index)``:

1. rebuild the fault model from its JSON spec (the only model state that
   crosses the wire — see :func:`repro.faults.fault_model_from_spec`),
2. draw its :class:`~repro.faults.FaultRealization` from a seed derived
   purely from ``(config.seed, model name, trial)`` — deterministic on any
   worker, and cached per process so the time cells of one trial replay the
   same drawn outage pattern without re-realizing
   (:func:`repro.sim.executors.cache.cached_fault_realization`),
3. snapshot the trial's field at ``times[time index]`` with
   :func:`repro.faults.apply_faults` and localize the full measurement grid
   on the surviving beacons,
4. return mean and upper-percentile localization error plus the surviving
   beacon count.  When *every* beacon is down there is no localization
   service at all — the cell degrades to NaN (counted by the
   ``timeline.all_dead`` metric) rather than reporting the localizer's
   unlocalized-policy fallback as if it were service.

Aggregation produces one :class:`~repro.sim.results.TimeCurve` per
(model, metric) with percentile-bootstrap intervals — error under
degradation is skewed, so symmetric t-intervals would lie — drawn from
seed-derived generators, making the curves (values *and* CIs) bit-identical
across Serial/Pool/Socket executors and across resumed runs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..faults import FaultModel, apply_faults, fault_model_from_spec
from ..field import random_uniform_field
from ..obs import get_metrics
from .config import ExperimentConfig
from .executors import CellExecutor
from .executors.cache import (
    cached_fault_realization,
    cached_grid,
    cached_layout,
    cached_localizer,
)
from .resilient import (
    RetryPolicy,
    _canon_key,
    _open_journal,
    run_cells,
    sweep_fingerprint,
)
from .results import CurveSet, TimeCurve
from .rng import derive_rng
from .sweep import default_model_factory
from .trial import TrialWorld

__all__ = ["TimelineConfig", "fault_error_timeline", "timeline_models_from_specs"]

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class TimelineConfig:
    """Parameters of one error-vs-time sweep.

    Attributes:
        times: snapshot times (seconds since deployment), in display order
            (monotone input not required; cell keys carry the time *index*).
        beacons: pristine field size of every trial.
        noise: propagation noise level for every cell.
        trials: independent random fields per fault model (each trial pairs
            one field with one drawn fault realization; every snapshot time
            sees the same pair).
        percentile: upper-tail LE percentile tracked alongside the mean
            (the paper's mean hides the outage tail).
        resamples: bootstrap iterations behind each confidence interval.
    """

    times: tuple[float, ...]
    beacons: int = 40
    noise: float = 0.0
    trials: int = 10
    percentile: float = 90.0
    resamples: int = 500

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", tuple(float(t) for t in self.times))
        if not self.times:
            raise ValueError("times must not be empty")
        if any(t < 0.0 for t in self.times):
            raise ValueError(f"times must be non-negative, got {self.times}")
        if len(set(self.times)) != len(self.times):
            raise ValueError(f"times must be distinct, got {self.times}")
        if self.beacons < 1:
            raise ValueError(f"beacons must be >= 1, got {self.beacons}")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if not 0.0 < self.percentile < 100.0:
            raise ValueError(
                f"percentile must be in (0, 100), got {self.percentile}"
            )
        if self.resamples < 1:
            raise ValueError(f"resamples must be >= 1, got {self.resamples}")


def _spec_token(spec: dict) -> str:
    """A hashable canonical form of a model spec (cache keys)."""
    return json.dumps(spec, sort_keys=True)


def _timeline_cell(args) -> dict:
    """One ``(model, trial, time index)`` cell — pure in the config seed.

    Module-level and reconstructible from plain-JSON args, so it is
    picklable for the pool backend and importable by reference for socket
    workers; the fault model travels as its spec, never as an object.
    """
    config, timeline, name, spec, trial, time_index = args
    metrics = get_metrics()
    metrics.counter("timeline.cells").inc()
    realization = cached_fault_realization(
        (config.seed, name, _spec_token(spec), trial),
        lambda: fault_model_from_spec(spec).realize(
            derive_rng(config.seed, "timeline-faults", name, trial)
        ),
    )
    field_rng = derive_rng(config.seed, "field", timeline.beacons, trial)
    field = random_uniform_field(timeline.beacons, config.side, field_rng)
    degraded = apply_faults(field, realization, timeline.times[time_index])
    if degraded.num_alive == 0:
        # No surviving beacon means no localization service; reporting the
        # unlocalized-policy fallback error here would dress total outage
        # up as degraded service.
        metrics.counter("timeline.all_dead").inc()
        return {"mean": float("nan"), "upper": float("nan"), "alive": 0}
    world_rng = derive_rng(
        config.seed, "world", timeline.noise, timeline.beacons, trial
    )
    world = TrialWorld(
        field=degraded.field,
        realization=default_model_factory(config)(timeline.noise).realize(world_rng),
        grid=cached_grid(config.side, config.step),
        layout=cached_layout(config.side, config.radio_range, config.num_grids),
        localizer=cached_localizer(config.side, config.policy),
    )
    errors = world.errors()
    return {
        "mean": float(np.mean(errors)),
        "upper": float(np.percentile(errors, timeline.percentile)),
        "alive": degraded.num_alive,
    }


def _named_models(models) -> list[tuple[str, FaultModel]]:
    if isinstance(models, Mapping):
        pairs = [(str(name), model) for name, model in models.items()]
    else:
        pairs = [(str(name), model) for name, model in models]
    if not pairs:
        raise ValueError("fault_error_timeline needs at least one fault model")
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        raise ValueError(f"fault-model names must be unique, got {names}")
    return pairs


def timeline_models_from_specs(specs: Sequence[tuple]) -> list[tuple[str, FaultModel]]:
    """Rebuild a timeline's ``(name, model)`` list from ``(name, spec)`` pairs."""
    return [(str(name), fault_model_from_spec(spec)) for name, spec in specs]


def fault_error_timeline(
    config: ExperimentConfig,
    timeline: TimelineConfig,
    models,
    *,
    workers: int = 1,
    journal_path=None,
    policy: RetryPolicy | None = None,
    progress: ProgressFn | None = None,
    executor: CellExecutor | None = None,
) -> tuple[CurveSet, CurveSet]:
    """Per-fault-model error-vs-time curves through the resilient engine.

    Every cell is a pure function of ``(config.seed, model name, trial,
    time index)``, so the produced curves — bootstrap intervals included —
    are bit-identical across executors, worker counts and resumed runs.

    Args:
        config: terrain/propagation parameters (``fields_per_density`` and
            ``beacon_counts`` are unused; the timeline has its own axes).
        timeline: the time axis and trial parameters.
        models: ``{name: FaultModel}`` mapping or ``(name, model)`` pairs;
            names label the curves and key the cells.
        workers: process count when no ``executor`` is given.
        journal_path: JSONL checkpoint journal; an interrupted sweep
            resumes from it without recomputing finished cells.
        policy: per-cell retry/timeout policy.
        progress: optional status callback.
        executor: run cells on this backend (see :mod:`repro.sim.executors`);
            stays open for the caller to reuse.

    Returns:
        ``(mean_set, upper_set)`` — two :class:`CurveSet` s over the time
        axis, one :class:`TimeCurve` per fault model each: mean LE and the
        ``timeline.percentile`` upper-tail LE.  Per-point coverage and mean
        surviving fraction land in each curve's ``meta``; the failed-cell
        total in the sets' ``meta["failed_cells"]``.
    """
    pairs = _named_models(models)
    specs = {name: model.spec() for name, model in pairs}
    fingerprint = sweep_fingerprint(
        "timeline",
        config,
        {
            "timeline": asdict(timeline),
            "models": [[name, specs[name]] for name, _ in pairs],
        },
    )
    journal = _open_journal(journal_path, fingerprint)
    jobs = [
        (
            (name, trial, time_index),
            (config, timeline, name, specs[name], trial, time_index),
        )
        for name, _ in pairs
        for trial in range(timeline.trials)
        for time_index in range(len(timeline.times))
    ]
    try:
        cells = run_cells(
            jobs,
            _timeline_cell,
            workers=workers,
            policy=policy,
            journal=journal,
            progress=progress,
            executor=executor,
        )
    finally:
        if journal is not None:
            journal.close()

    num_times = len(timeline.times)
    mean_curves, upper_curves = [], []
    failed = 0
    for name, _ in pairs:
        mean_samples = np.empty((num_times, timeline.trials))
        upper_samples = np.empty((num_times, timeline.trials))
        alive = np.zeros((num_times, timeline.trials))
        for trial in range(timeline.trials):
            for time_index in range(num_times):
                value = cells[_canon_key((name, trial, time_index))]
                if value is None:
                    failed += 1
                    mean_samples[time_index, trial] = np.nan
                    upper_samples[time_index, trial] = np.nan
                    alive[time_index, trial] = np.nan
                else:
                    mean_samples[time_index, trial] = value["mean"]
                    upper_samples[time_index, trial] = value["upper"]
                    alive[time_index, trial] = value["alive"]
        with np.errstate(invalid="ignore"):
            alive_fraction = tuple(
                float(np.nanmean(alive[i])) / timeline.beacons
                if np.any(~np.isnan(alive[i]))
                else float("nan")
                for i in range(num_times)
            )

        def to_curve(samples, metric):
            # Seed-derived bootstrap streams: the intervals are as
            # reproducible as the point estimates, on every backend.
            curve = TimeCurve.from_samples(
                name,
                timeline.times,
                samples,
                confidence=config.confidence,
                resamples=timeline.resamples,
                rng_factory=lambda i: derive_rng(
                    config.seed, "timeline-bootstrap", metric, name, i
                ),
            )
            curve.meta["alive_fraction"] = alive_fraction
            return curve

        mean_curves.append(to_curve(mean_samples, "mean"))
        upper_curves.append(to_curve(upper_samples, "upper"))

    def to_set(curves, title):
        return CurveSet(
            title=title,
            curves=curves,
            meta={
                "noise": timeline.noise,
                "beacons": timeline.beacons,
                "trials": timeline.trials,
                "percentile": timeline.percentile,
                "workers": workers,
                "failed_cells": failed,
            },
        )

    return (
        to_set(
            mean_curves,
            f"Mean localization error vs time (noise={timeline.noise:g})",
        ),
        to_set(
            upper_curves,
            f"p{timeline.percentile:g} localization error vs time "
            f"(noise={timeline.noise:g})",
        ),
    )
