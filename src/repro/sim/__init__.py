"""Experiment harness: configuration, RNG streams, trials, sweeps, results."""

from .config import ExperimentConfig, PAPER_NOISE_LEVELS, bench_config, paper_config
from .executors import (
    CellExecutor,
    PoolExecutor,
    SerialExecutor,
    SocketExecutor,
    WorkerRejected,
    make_executor,
    run_worker,
    spawn_context,
    validate_workers,
)
from .kernels import (
    batch_surface_stats,
    kernel_mode,
    set_kernel_mode,
    warm_worlds,
)
from .incremental import (
    AddBeacon,
    FieldCache,
    FieldState,
    MoveBeacon,
    RemoveBeacon,
    default_field_cache,
    expected_le_field,
    field_fingerprint,
    scan_candidates,
)
from .io import (
    read_curve_set,
    read_time_curve_set,
    write_curve_set,
    write_time_curve_set,
)
from .parallel import (
    parallel_mean_error_curve,
    parallel_placement_improvement_curves,
)
from .resilient import (
    RetryPolicy,
    SweepJournal,
    resilient_mean_error_curve,
    resilient_placement_improvement_curves,
    run_cells,
    sweep_fingerprint,
)
from .results import Curve, CurveSet, TimeCurve
from .rng import derive_rng, derive_seed_sequence
from .sweep import (
    build_world,
    default_model_factory,
    mean_error_curve,
    placement_improvement_curves,
)
from .timeline import (
    TimelineConfig,
    fault_error_timeline,
    timeline_models_from_specs,
)
from .trial import TrialOutcome, TrialWorld, run_placement_trial

__all__ = [
    "ExperimentConfig",
    "PAPER_NOISE_LEVELS",
    "paper_config",
    "bench_config",
    "derive_rng",
    "derive_seed_sequence",
    "TrialWorld",
    "TrialOutcome",
    "run_placement_trial",
    "FieldState",
    "FieldCache",
    "AddBeacon",
    "RemoveBeacon",
    "MoveBeacon",
    "field_fingerprint",
    "expected_le_field",
    "default_field_cache",
    "scan_candidates",
    "build_world",
    "default_model_factory",
    "kernel_mode",
    "set_kernel_mode",
    "warm_worlds",
    "batch_surface_stats",
    "mean_error_curve",
    "placement_improvement_curves",
    "parallel_mean_error_curve",
    "parallel_placement_improvement_curves",
    "spawn_context",
    "validate_workers",
    "CellExecutor",
    "SerialExecutor",
    "PoolExecutor",
    "SocketExecutor",
    "WorkerRejected",
    "make_executor",
    "run_worker",
    "RetryPolicy",
    "SweepJournal",
    "run_cells",
    "sweep_fingerprint",
    "resilient_mean_error_curve",
    "resilient_placement_improvement_curves",
    "Curve",
    "CurveSet",
    "TimeCurve",
    "TimelineConfig",
    "fault_error_timeline",
    "timeline_models_from_specs",
    "write_curve_set",
    "read_curve_set",
    "write_time_curve_set",
    "read_time_curve_set",
]
