"""The executor contract and shared cell-running machinery.

A :class:`CellExecutor` turns a list of pending ``(key, args)`` cells into
outcome callbacks, nothing more: retry accounting, journaling, metrics on
completion and result collection all stay in :func:`repro.sim.resilient.run_cells`
via the ``emit`` callback it passes in.  That keeps journal + retry
semantics identical across backends — an executor only decides *where* a
cell runs and *how* its result travels back.

Pool setup (``spawn_context``/``validate_workers``) lives here; both
``sim.parallel`` and ``sim.resilient`` used to re-derive it and now import
from this module.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import time
import warnings
from abc import ABC, abstractmethod
from typing import Callable, Protocol, Sequence

from ...obs import (
    MetricsRegistry,
    current_trace_context,
    disable_metrics,
    enable_metrics,
    get_metrics,
    process_metadata,
    set_trace_context,
    set_worker_id,
    span_record,
)

__all__ = [
    "CellExecutor",
    "EmitFn",
    "ProgressFn",
    "batch_thunks",
    "cell_fn_ref",
    "dispatch_extras",
    "make_executor",
    "plan_chunk",
    "register_batch_planner",
    "resolve_cell_fn",
    "run_cell_chunk",
    "run_one_cell",
    "spawn_context",
    "validate_workers",
    "worker_session_metrics",
]

ProgressFn = Callable[[str], None]


class EmitFn(Protocol):
    """Outcome callback handed to :meth:`CellExecutor.execute`.

    One call per finally-settled cell: either ``ok=True`` with a value or
    ``ok=False`` with an error string.  The caller (``run_cells``) owns the
    journal, the results dict and the completed/failed counters.
    """

    def __call__(
        self, key: tuple, *, ok: bool, value=None, attempts: int, error: str | None = None
    ) -> None: ...


def spawn_context() -> multiprocessing.context.BaseContext:
    """The start method every sweep pool uses.

    Pinned to ``spawn`` so results (and failure behavior) are identical
    across platforms: fork would silently share parent state on POSIX while
    macOS/Windows spawn, and forked workers can inherit locks mid-acquire.
    Determinism never relied on fork — every cell derives its own named RNG
    streams — so spawn only costs worker start-up time.
    """
    return multiprocessing.get_context("spawn")


def validate_workers(workers: int) -> int:
    """Check a worker count: reject non-positive, warn on oversubscription.

    Returns:
        ``workers`` unchanged — oversubscription is allowed (it can still
        help on I/O-stalled hosts) but never silent.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cpus = os.cpu_count()
    if cpus is not None and workers > cpus:
        warnings.warn(
            f"workers={workers} oversubscribes this host ({cpus} CPU(s)); "
            "expect slowdown, not speedup",
            RuntimeWarning,
            stacklevel=3,
        )
    return workers


def cell_fn_ref(fn: Callable) -> str:
    """The ``module:qualname`` wire reference of a module-level cell function."""
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", None))
    module = getattr(fn, "__module__", None)
    if not name or not module or "<locals>" in name:
        raise ValueError(
            f"cell function {fn!r} is not module-level; socket workers "
            "resolve functions by module:qualname"
        )
    return f"{module}:{name}"


def resolve_cell_fn(ref: str) -> Callable:
    """Resolve a :func:`cell_fn_ref` string back to the callable."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed cell-function reference {ref!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"cell-function reference {ref!r} is not callable")
    return obj


def run_one_cell(fn: Callable, args, *, instrument: bool = False, thunk=None) -> dict:
    """Run one cell, catching its exception into a shippable outcome dict.

    Returns ``{"ok": True, "value": …, "seconds": …}`` or ``{"ok": False,
    "error": "Type: msg", "seconds": …}``; with ``instrument`` the cell runs
    under a private metrics registry whose snapshot rides along as
    ``"metrics"`` (the :func:`repro.obs.instrumented_call` protocol, minus
    the exception-aborts-the-chunk behavior — a chunk must survive one bad
    cell).

    ``thunk`` — a zero-argument callable from :func:`batch_thunks` — takes
    the place of ``fn(args)`` when given; it is contracted to return the
    value ``fn(args)`` would.  If the thunk raises, the cell falls back to
    the scalar ``fn(args)`` before the failure is charged, so a kernel bug
    degrades to slow, never to wrong or failed.
    """
    registry = previous = None
    if instrument:
        previous = get_metrics()
        registry = MetricsRegistry()
        enable_metrics(registry)
    start = time.perf_counter()
    try:
        if thunk is not None:
            try:
                value = thunk()
            except Exception:  # noqa: BLE001 — batch path is an optimization
                get_metrics().counter("kernel.batch.thunk_fallbacks").inc()
                value = fn(args)
        else:
            value = fn(args)
    except Exception as exc:  # noqa: BLE001 — degrade, never abort the chunk
        outcome = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    else:
        outcome = {"ok": True, "value": value}
    outcome["seconds"] = time.perf_counter() - start
    if instrument:
        enable_metrics(previous) if previous.enabled else disable_metrics()
        if outcome["ok"]:
            registry.histogram("sweep.cell.seconds").observe(outcome["seconds"])
        outcome["metrics"] = registry.snapshot()
        # Identity + a pre-built span record (parented under the shipped
        # trace context) so the driver can stitch and attribute this cell.
        outcome["worker"] = process_metadata()
        outcome["span"] = span_record("sweep.cell", outcome["seconds"])
    return outcome


#: Batch planners by cell function: ``planner(args_list) -> [thunk | None]``.
#: A planner pre-computes a whole chunk in one vectorized pass (see
#: :mod:`repro.sim.kernels`) and returns one zero-argument thunk per cell
#: whose call yields the exact value ``fn(args)`` would return; ``None``
#: entries mean "this cell could not be batched — run it scalar".
_BATCH_PLANNERS: dict = {}


def register_batch_planner(fn: Callable, planner: Callable) -> None:
    """Register ``planner`` as the batched implementation of cell ``fn``.

    Registration happens at module import of the cell function's module, so
    pool and socket workers — which resolve ``fn`` by import — see the same
    registry as the parent process.
    """
    _BATCH_PLANNERS[fn] = planner


def batch_thunks(fn: Callable, args_list) -> "list | None":
    """Plan a chunk through ``fn``'s registered batch planner, if any.

    Returns one thunk-or-None per cell, or ``None`` when the chunk must run
    fully scalar (no planner, scalar kernel mode, or the planner failed —
    planner failures are contained here so batching is never the reason a
    cell fails).
    """
    planner = _BATCH_PLANNERS.get(fn)
    if planner is None or len(args_list) < 2:
        return None
    from ..kernels import kernel_mode

    if kernel_mode() != "batch":
        return None
    metrics = get_metrics()
    try:
        thunks = planner(list(args_list))
    except Exception:  # noqa: BLE001 — planner bugs degrade to scalar
        metrics.counter("kernel.batch.plan_errors").inc()
        return None
    if thunks is None or len(thunks) != len(args_list):
        metrics.counter("kernel.batch.plan_errors").inc()
        return None
    metrics.counter("kernel.batch.chunks").inc()
    return thunks


def _under_private_registry(instrument: bool, call: Callable) -> tuple:
    """``(call(), metrics snapshot or None)`` — the instrumented-call shape."""
    if not instrument:
        return call(), None
    previous = get_metrics()
    registry = MetricsRegistry()
    enable_metrics(registry)
    try:
        result = call()
    finally:
        enable_metrics(previous) if previous.enabled else disable_metrics()
    return result, registry.snapshot()


def plan_chunk(fn: Callable, args_list, instrument: bool) -> tuple:
    """(thunks, plan-metrics snapshot) for one dispatch chunk.

    With ``instrument`` the planning pass (world building, kernel passes)
    runs under a private registry so its counters ship back to the parent
    alongside the cells' own snapshots.
    """
    return _under_private_registry(instrument, lambda: batch_thunks(fn, args_list))


def merge_metric_snapshots(base: dict, extra: dict) -> dict:
    """Combine two registry snapshots into one (for chunk-level metrics)."""
    registry = MetricsRegistry()
    registry.merge(base)
    registry.merge(extra)
    return registry.snapshot()


def dispatch_extras(shared=None) -> dict:
    """The extras dict shipped with pool payloads / socket welcomes.

    Carries cross-process execution context: the parent's kernel mode (so
    ``REPRO_KERNELS=scalar`` measurements cover workers too), the trace
    context (trace id + the dispatching span's id) when the driver is
    tracing — the hook that lets worker spans stitch under the driver's
    tree — and, when the driver published one, the shared-memory
    world-state handle.
    """
    from ..kernels import kernel_mode

    extras: dict = {"kernels": kernel_mode()}
    trace = current_trace_context()
    if trace is not None:
        extras["trace"] = trace
    if shared is not None:
        extras["shared"] = shared
    return extras


def apply_dispatch_extras(extras: dict | None) -> None:
    """Install chunk execution context on the worker side (idempotent)."""
    if not extras:
        return
    mode = extras.get("kernels")
    if mode:
        from ..kernels import set_kernel_mode

        try:
            set_kernel_mode(mode)
        except ValueError:
            pass  # a newer parent's mode name; keep the local default
    trace = extras.get("trace")
    if trace:
        set_trace_context(trace.get("trace"), trace.get("parent"))
    handle = extras.get("shared")
    if handle:
        from .shm import attach_shared_state

        # Attach is best-effort: a worker on another machine (socket
        # backend) or one that outlived the segment simply rebuilds its
        # state through the ordinary caches.
        try:
            attach_shared_state(handle)
        except Exception:  # noqa: BLE001
            get_metrics().counter("shm.attach_failures").inc()


#: Worker-lifetime registry behind :func:`worker_session_metrics`.
_worker_session: MetricsRegistry | None = None


def worker_session_metrics() -> MetricsRegistry:
    """This worker process's session registry (created on first use).

    Unlike the per-cell private registries, this one persists across chunks;
    each dispatch ships only its :meth:`MetricsRegistry.snapshot_delta`, so
    worker-lifetime totals (chunks served, cells run) stream back to the
    driver incrementally without ever double-counting.
    """
    global _worker_session
    if _worker_session is None:
        _worker_session = MetricsRegistry()
    return _worker_session


def run_cell_chunk(payload: tuple) -> list[dict]:
    """Pool/worker entry point: run a chunk of cells, one outcome dict each.

    ``payload`` is ``(fn, args_list, instrument)`` or ``(fn, args_list,
    instrument, extras)``.  Module-level and picklable, so
    ``ProcessPoolExecutor`` ships it under the pinned ``spawn`` start
    method; one pickled round-trip carries the whole chunk.  When ``fn``
    has a registered batch planner the chunk is pre-computed in one
    vectorized pass and the per-cell loop just collects results — outcome
    shape, per-cell error attribution and instrument snapshots are
    identical either way.
    """
    fn, args_list, instrument = payload[0], payload[1], payload[2]
    extras = payload[3] if len(payload) > 3 else None
    set_worker_id(f"pool:{os.getpid()}")
    _, extras_metrics = _under_private_registry(
        instrument, lambda: apply_dispatch_extras(extras)
    )
    thunks, plan_metrics = plan_chunk(fn, args_list, instrument)
    outcomes = [
        run_one_cell(
            fn, args, instrument=instrument,
            thunk=thunks[i] if thunks is not None else None,
        )
        for i, args in enumerate(args_list)
    ]
    chunk_level = [extras_metrics, plan_metrics]
    if instrument:
        session = worker_session_metrics()
        session.counter("worker.batches").inc()
        session.counter("worker.cells").inc(len(args_list))
        chunk_level.append(session.snapshot_delta())
    for chunk_metrics in chunk_level:
        if chunk_metrics is not None and outcomes:
            outcomes[0]["metrics"] = merge_metric_snapshots(
                outcomes[0]["metrics"], chunk_metrics
            )
    return outcomes


class CellExecutor(ABC):
    """Where sweep cells run: in-process, on a local pool, or over sockets.

    ``execute`` drives every pending cell to a final ``emit`` call; retry
    scheduling happens inside the executor (it owns the in-flight state) but
    the *policy* — attempt budget, timeout, backoff — comes from the caller
    and the bookkeeping contract is fixed: exactly one ``emit`` per key.
    """

    @abstractmethod
    def execute(
        self,
        pending: Sequence[tuple],
        fn: Callable,
        *,
        policy,
        emit: EmitFn,
        progress: ProgressFn | None = None,
        fingerprint: str | None = None,
    ) -> None:
        """Run every ``(key, args)`` in ``pending`` and emit each outcome."""

    def close(self) -> None:
        """Release executor resources (listener sockets, pools)."""

    def __enter__(self) -> "CellExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_executor(
    name: str | None = None,
    *,
    workers: int = 1,
    chunk: int | None = None,
    bind=None,
    mp_context=None,
) -> CellExecutor:
    """Build a backend by name — the single place pool setup is derived.

    ``None`` picks the legacy default: serial for ``workers <= 1``, a local
    spawn pool otherwise.  ``bind`` is a ``(host, port)`` pair for the
    socket backend.
    """
    from .local import PoolExecutor, SerialExecutor

    if name is None:
        name = "serial" if workers <= 1 else "pool"
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        validate_workers(workers)
        return PoolExecutor(workers=workers, chunk=chunk, mp_context=mp_context)
    if name == "socket":
        from .sockets import SocketExecutor

        return SocketExecutor(bind=bind or ("127.0.0.1", 0), chunk=chunk)
    raise ValueError(f"unknown executor {name!r} (expected serial, pool or socket)")
