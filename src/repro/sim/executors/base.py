"""The executor contract and shared cell-running machinery.

A :class:`CellExecutor` turns a list of pending ``(key, args)`` cells into
outcome callbacks, nothing more: retry accounting, journaling, metrics on
completion and result collection all stay in :func:`repro.sim.resilient.run_cells`
via the ``emit`` callback it passes in.  That keeps journal + retry
semantics identical across backends — an executor only decides *where* a
cell runs and *how* its result travels back.

Pool setup (``spawn_context``/``validate_workers``) lives here; both
``sim.parallel`` and ``sim.resilient`` used to re-derive it and now import
from this module.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import time
import warnings
from abc import ABC, abstractmethod
from typing import Callable, Protocol, Sequence

from ...obs import MetricsRegistry, disable_metrics, enable_metrics, get_metrics

__all__ = [
    "CellExecutor",
    "EmitFn",
    "ProgressFn",
    "cell_fn_ref",
    "make_executor",
    "resolve_cell_fn",
    "run_cell_chunk",
    "run_one_cell",
    "spawn_context",
    "validate_workers",
]

ProgressFn = Callable[[str], None]


class EmitFn(Protocol):
    """Outcome callback handed to :meth:`CellExecutor.execute`.

    One call per finally-settled cell: either ``ok=True`` with a value or
    ``ok=False`` with an error string.  The caller (``run_cells``) owns the
    journal, the results dict and the completed/failed counters.
    """

    def __call__(
        self, key: tuple, *, ok: bool, value=None, attempts: int, error: str | None = None
    ) -> None: ...


def spawn_context() -> multiprocessing.context.BaseContext:
    """The start method every sweep pool uses.

    Pinned to ``spawn`` so results (and failure behavior) are identical
    across platforms: fork would silently share parent state on POSIX while
    macOS/Windows spawn, and forked workers can inherit locks mid-acquire.
    Determinism never relied on fork — every cell derives its own named RNG
    streams — so spawn only costs worker start-up time.
    """
    return multiprocessing.get_context("spawn")


def validate_workers(workers: int) -> int:
    """Check a worker count: reject non-positive, warn on oversubscription.

    Returns:
        ``workers`` unchanged — oversubscription is allowed (it can still
        help on I/O-stalled hosts) but never silent.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cpus = os.cpu_count()
    if cpus is not None and workers > cpus:
        warnings.warn(
            f"workers={workers} oversubscribes this host ({cpus} CPU(s)); "
            "expect slowdown, not speedup",
            RuntimeWarning,
            stacklevel=3,
        )
    return workers


def cell_fn_ref(fn: Callable) -> str:
    """The ``module:qualname`` wire reference of a module-level cell function."""
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", None))
    module = getattr(fn, "__module__", None)
    if not name or not module or "<locals>" in name:
        raise ValueError(
            f"cell function {fn!r} is not module-level; socket workers "
            "resolve functions by module:qualname"
        )
    return f"{module}:{name}"


def resolve_cell_fn(ref: str) -> Callable:
    """Resolve a :func:`cell_fn_ref` string back to the callable."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed cell-function reference {ref!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ValueError(f"cell-function reference {ref!r} is not callable")
    return obj


def run_one_cell(fn: Callable, args, *, instrument: bool = False) -> dict:
    """Run one cell, catching its exception into a shippable outcome dict.

    Returns ``{"ok": True, "value": …, "seconds": …}`` or ``{"ok": False,
    "error": "Type: msg", "seconds": …}``; with ``instrument`` the cell runs
    under a private metrics registry whose snapshot rides along as
    ``"metrics"`` (the :func:`repro.obs.instrumented_call` protocol, minus
    the exception-aborts-the-chunk behavior — a chunk must survive one bad
    cell).
    """
    registry = previous = None
    if instrument:
        previous = get_metrics()
        registry = MetricsRegistry()
        enable_metrics(registry)
    start = time.perf_counter()
    try:
        value = fn(args)
    except Exception as exc:  # noqa: BLE001 — degrade, never abort the chunk
        outcome = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
    else:
        outcome = {"ok": True, "value": value}
    outcome["seconds"] = time.perf_counter() - start
    if instrument:
        enable_metrics(previous) if previous.enabled else disable_metrics()
        if outcome["ok"]:
            registry.histogram("sweep.cell.seconds").observe(outcome["seconds"])
        outcome["metrics"] = registry.snapshot()
    return outcome


def run_cell_chunk(payload: tuple) -> list[dict]:
    """Pool/worker entry point: run a chunk of cells, one outcome dict each.

    ``payload`` is ``(fn, args_list, instrument)``.  Module-level and
    picklable, so ``ProcessPoolExecutor`` ships it under the pinned
    ``spawn`` start method; one pickled round-trip carries the whole chunk.
    """
    fn, args_list, instrument = payload
    return [run_one_cell(fn, args, instrument=instrument) for args in args_list]


class CellExecutor(ABC):
    """Where sweep cells run: in-process, on a local pool, or over sockets.

    ``execute`` drives every pending cell to a final ``emit`` call; retry
    scheduling happens inside the executor (it owns the in-flight state) but
    the *policy* — attempt budget, timeout, backoff — comes from the caller
    and the bookkeeping contract is fixed: exactly one ``emit`` per key.
    """

    @abstractmethod
    def execute(
        self,
        pending: Sequence[tuple],
        fn: Callable,
        *,
        policy,
        emit: EmitFn,
        progress: ProgressFn | None = None,
        fingerprint: str | None = None,
    ) -> None:
        """Run every ``(key, args)`` in ``pending`` and emit each outcome."""

    def close(self) -> None:
        """Release executor resources (listener sockets, pools)."""

    def __enter__(self) -> "CellExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_executor(
    name: str | None = None,
    *,
    workers: int = 1,
    chunk: int | None = None,
    bind=None,
    mp_context=None,
) -> CellExecutor:
    """Build a backend by name — the single place pool setup is derived.

    ``None`` picks the legacy default: serial for ``workers <= 1``, a local
    spawn pool otherwise.  ``bind`` is a ``(host, port)`` pair for the
    socket backend.
    """
    from .local import PoolExecutor, SerialExecutor

    if name is None:
        name = "serial" if workers <= 1 else "pool"
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        validate_workers(workers)
        return PoolExecutor(workers=workers, chunk=chunk, mp_context=mp_context)
    if name == "socket":
        from .sockets import SocketExecutor

        return SocketExecutor(bind=bind or ("127.0.0.1", 0), chunk=chunk)
    raise ValueError(f"unknown executor {name!r} (expected serial, pool or socket)")
