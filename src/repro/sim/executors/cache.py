"""Per-worker cache for world components shared by every cell of a sweep.

The measurement lattice, the overlapping-grid layout and the localizer
depend only on config constants — never on the cell's (noise, count, index)
— yet :func:`repro.sim.build_world` used to rebuild all three per cell.
Worse, the layout's membership masks (N_G × P_T booleans, ~4 MB at paper
fidelity) were recomputed per *instance*, so a fresh layout per cell paid
the full cost every time.

These caches are process-local module state: each pool/socket worker fills
them once on its first cell and reuses them for the rest of the sweep (the
serial path benefits identically).  All cached objects are frozen
dataclasses the rest of the pipeline already treats as immutable, so
sharing them across cells cannot change results.
"""

from __future__ import annotations

from ...geometry import MeasurementGrid, OverlappingGridLayout
from ...localization import CentroidLocalizer
from ...obs import get_metrics

__all__ = [
    "cached_grid",
    "cached_layout",
    "cached_localizer",
    "cached_fault_realization",
    "clear_world_cache",
]

# A sweep uses one config, so one entry per cache is the steady state; the
# bound only guards pathological many-config callers from unbounded growth.
_MAX_ENTRIES = 8

_grids: dict = {}
_layouts: dict = {}
_localizers: dict = {}
_fault_realizations: dict = {}


def _lookup(cache: dict, key, build, *, counter: str = "worldcache"):
    hit = cache.get(key)
    if hit is not None:
        get_metrics().counter(f"{counter}.hits").inc()
        return hit
    get_metrics().counter(f"{counter}.misses").inc()
    if len(cache) >= _MAX_ENTRIES:
        cache.clear()
    value = cache[key] = build()
    return value


def cached_grid(side: float, step: float) -> MeasurementGrid:
    """The measurement lattice for ``(side, step)``, built once per process."""
    return _lookup(_grids, (side, step), lambda: MeasurementGrid(side, step))


def cached_layout(side: float, radio_range: float, num_grids: int) -> OverlappingGridLayout:
    """The overlapping-grid layout, built once per process.

    Reusing one instance also reuses its internal membership-mask cache —
    the expensive part — across every cell the worker runs.
    """
    return _lookup(
        _layouts,
        (side, radio_range, num_grids),
        lambda: OverlappingGridLayout.for_radio_range(side, radio_range, num_grids),
    )


def cached_localizer(side: float, policy) -> CentroidLocalizer:
    """The (stateless) centroid localizer, built once per process."""
    return _lookup(
        _localizers, (side, policy), lambda: CentroidLocalizer(side, policy)
    )


def cached_fault_realization(key, build):
    """The drawn fault realization for one (sweep, model, trial), per process.

    Timeline sweeps evaluate many time snapshots of the *same* drawn outage
    pattern; the realization is a pure function of the cell key (see
    :func:`repro.sim.timeline._timeline_cell`), so whichever worker runs a
    cell draws — or reuses — an identical object.  Cells of one trial land
    in the same dispatch chunk in job order, so a worker typically realizes
    each (model, trial) once and replays it across the trial's time cells.

    Args:
        key: hashable identity of the drawn realization — must include
            everything the draw depends on (seed, model spec, trial).
        build: zero-argument factory invoked on a miss.
    """
    return _lookup(_fault_realizations, key, build, counter="faultcache")


def clear_world_cache() -> None:
    """Drop every cached component (tests; long-lived multi-config servers)."""
    _grids.clear()
    _layouts.clear()
    _localizers.clear()
    _fault_realizations.clear()
