"""Per-worker cache for world components shared by every cell of a sweep.

The measurement lattice, the overlapping-grid layout and the localizer
depend only on config constants — never on the cell's (noise, count, index)
— yet :func:`repro.sim.build_world` used to rebuild all three per cell.
Worse, the layout's membership masks (N_G × P_T booleans, ~4 MB at paper
fidelity) were recomputed per *instance*, so a fresh layout per cell paid
the full cost every time.

Beacon fields and propagation realizations are cached too: both are
immutable pure functions of their substream identity, the field does not
depend on noise, and timeline/fault sweeps revisit the same (count, index)
replication at many time snapshots — so a worker replays each field/world
instead of re-deriving its RNG stream per cell.

These caches are process-local module state: each pool/socket worker fills
them once on its first cell and reuses them for the rest of the sweep (the
serial path benefits identically).  All cached objects are frozen/immutable
value objects the rest of the pipeline already treats as shared, so reuse
across cells cannot change results.  Eviction is LRU: a hit refreshes the
entry, a miss at capacity evicts only the stalest entry (multi-config
servers keep their hot entries instead of thrashing the whole cache).
"""

from __future__ import annotations

from ...geometry import MeasurementGrid, OverlappingGridLayout
from ...localization import CentroidLocalizer
from ...obs import get_metrics

__all__ = [
    "cached_grid",
    "cached_layout",
    "cached_localizer",
    "cached_field",
    "cached_realization",
    "cached_fault_realization",
    "clear_world_cache",
]

# A sweep uses one config, so one entry per cache is the steady state; the
# bound only guards pathological many-config callers from unbounded growth.
_MAX_ENTRIES = 8

#: Fields/realizations are per-replication, not per-config: a sweep touches
#: thousands, and reuse happens across noise levels and fault times.
_MAX_WORLD_ENTRIES = 4096

_grids: dict = {}
_layouts: dict = {}
_localizers: dict = {}
_fields: dict = {}
_realizations: dict = {}
_fault_realizations: dict = {}


def _lookup(cache: dict, key, build, *, counter: str = "worldcache", max_entries: int = _MAX_ENTRIES):
    hit = cache.get(key)
    if hit is not None:
        get_metrics().counter(f"{counter}.hits").inc()
        # LRU refresh: insertion order doubles as recency order.
        del cache[key]
        cache[key] = hit
        return hit
    get_metrics().counter(f"{counter}.misses").inc()
    if len(cache) >= max_entries:
        del cache[next(iter(cache))]
    value = cache[key] = build()
    return value


def cached_grid(side: float, step: float) -> MeasurementGrid:
    """The measurement lattice for ``(side, step)``, built once per process."""
    return _lookup(_grids, (side, step), lambda: MeasurementGrid(side, step))


def cached_layout(side: float, radio_range: float, num_grids: int) -> OverlappingGridLayout:
    """The overlapping-grid layout, built once per process.

    Reusing one instance also reuses its internal membership-mask cache —
    the expensive part — across every cell the worker runs.
    """
    return _lookup(
        _layouts,
        (side, radio_range, num_grids),
        lambda: OverlappingGridLayout.for_radio_range(side, radio_range, num_grids),
    )


def cached_localizer(side: float, policy) -> CentroidLocalizer:
    """The (stateless) centroid localizer, built once per process."""
    return _lookup(
        _localizers, (side, policy), lambda: CentroidLocalizer(side, policy)
    )


def cached_field(key, build):
    """The beacon field for one replication, per process.

    The field is a pure function of ``(seed, count, field_index, side)`` —
    deliberately independent of noise — so every noise level, fault time and
    retry of a replication reuses one immutable instance.

    Args:
        key: hashable identity of the field draw.
        build: zero-argument factory invoked on a miss.
    """
    return _lookup(
        _fields, key, build, counter="fieldcache", max_entries=_MAX_WORLD_ENTRIES
    )


def cached_realization(key, build):
    """The drawn propagation realization for one cell, per process.

    Realizations are immutable (a seed plus model constants); timeline
    sweeps revisit the same cell at many fault times, and retries re-enter
    the same cell, so reuse is common.

    Args:
        key: hashable identity of the draw — must include everything it
            depends on (seed, noise, count, index, model constants).
        build: zero-argument factory invoked on a miss.
    """
    return _lookup(
        _realizations, key, build, counter="realizationcache", max_entries=_MAX_WORLD_ENTRIES
    )


def cached_fault_realization(key, build):
    """The drawn fault realization for one (sweep, model, trial), per process.

    Timeline sweeps evaluate many time snapshots of the *same* drawn outage
    pattern; the realization is a pure function of the cell key (see
    :func:`repro.sim.timeline._timeline_cell`), so whichever worker runs a
    cell draws — or reuses — an identical object.  Cells of one trial land
    in the same dispatch chunk in job order, so a worker typically realizes
    each (model, trial) once and replays it across the trial's time cells.

    Args:
        key: hashable identity of the drawn realization — must include
            everything the draw depends on (seed, model spec, trial).
        build: zero-argument factory invoked on a miss.
    """
    return _lookup(_fault_realizations, key, build, counter="faultcache")


def clear_world_cache() -> None:
    """Drop every cached component (tests; long-lived multi-config servers)."""
    _grids.clear()
    _layouts.clear()
    _localizers.clear()
    _fields.clear()
    _realizations.clear()
    _fault_realizations.clear()
