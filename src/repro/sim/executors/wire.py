"""Wire protocol for socket sweeps: length-prefixed JSON frames.

Every frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON — trivially parseable from any language, debuggable
with a hex dump, and immune to message boundaries drifting on slow links.
The JSON envelope carries a ``"type"`` plus type-specific fields:

===========  =====  =====================================================
type         dir    fields
===========  =====  =====================================================
hello        w → s  ``protocol``, optional ``fingerprint``
welcome      s → w  ``protocol``, ``fingerprint``, ``fn`` (module:qualname
                    reference), ``instrument``, ``heartbeat`` (seconds),
                    optional ``extras`` (kernel mode, shm handle, trace
                    context — see ``base.dispatch_extras``)
reject       s → w  ``reason`` — protocol or fingerprint mismatch
batch        s → w  ``id``, ``cells``: list of ``{"key": […], "args": …}``
result       w → s  ``batch``, ``index``, ``outcome`` (one cell, streamed
                    as soon as it finishes — crash accounting stays exact)
heartbeat    w → s  liveness while a long cell runs; optionally ``status``
                    (pid/host/worker, cells completed, current cell key)
                    and ``metrics`` (a registry snapshot *delta*, merged
                    into the driver registry on receipt)
drain        s → w  ``{}`` — no more batches; finish and say goodbye
goodbye      w → s  clean exit; optional ``metrics`` — the worker's final
                    unshipped session delta
===========  =====  =====================================================

Optional fields are additive: version-1 peers that omit them interoperate
with peers that send them, so old workers join new servers and vice versa.

Cell ``args``, result values and shipped metrics snapshots are arbitrary
Python objects (configs, fault models, algorithm instances), so they ride
inside the JSON as base64-pickled strings (:func:`encode_payload` /
:func:`decode_payload`) — the same fidelity process pools get from pickled
task tuples.  Pickle means the socket backend trusts its peers: run it on
networks you control, exactly like every other cluster job runner.

The envelope itself is strict JSON: :func:`send_frame` refuses NaN and
Infinity (``allow_nan=False``) rather than emitting the bare ``NaN`` /
``Infinity`` tokens Python's encoder would otherwise produce — those are
not JSON and break the "parseable from any language" contract.  Payloads
that legitimately carry non-finite floats (an all-beacons-down LE metric,
say) must ride through :func:`encode_payload`, or as the explicit
``{"dtype", "shape", "data"}`` base64 array encoding the placement
service uses.

The byte-level framing is exposed as :func:`encode_frame` /
:func:`decode_frame` so transports other than blocking sockets (the
asyncio placement service in :mod:`repro.serve`) reuse exactly the same
hardened envelope — one place validates lengths, JSON and frame typing.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_frame",
    "decode_payload",
    "enable_nodelay",
    "encode_frame",
    "encode_payload",
    "recv_frame",
    "send_frame",
]

#: Bumped whenever frame semantics change; hello/welcome both carry it.
PROTOCOL_VERSION = 1

#: Refuse frames beyond this size — a corrupt length prefix must not
#: trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent something the wire protocol does not allow."""


def encode_payload(obj) -> str:
    """Pickle an arbitrary object into a JSON-safe base64 string."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str):
    """Invert :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def encode_frame(message: dict) -> bytes:
    """Serialize one frame (header + payload) to wire bytes.

    Strict JSON only: a message carrying NaN or Infinity raises
    :exc:`ProtocolError` instead of emitting tokens no cross-language
    parser accepts — wrap such values with :func:`encode_payload`.
    """
    try:
        payload = json.dumps(
            message, separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except ValueError as exc:
        raise ProtocolError(
            "frame contains non-finite numbers (NaN/Infinity are not JSON); "
            "ship such values through encode_payload instead"
        ) from exc
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the protocol cap")
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Validate and parse one frame payload into its typed message."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"frame is not a typed object: {message!r}")
    return message


def send_frame(sock: socket.socket, message: dict) -> int:
    """Serialize and send one frame; returns bytes put on the wire."""
    data = encode_frame(message)
    sock.sendall(data)
    return len(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` only on a close at a boundary.

    A peer that disappears *after* sending part of the requested span left
    a torn frame on the wire — that is a protocol error, not a clean
    end-of-stream, so partial reads raise instead of masquerading as an
    orderly shutdown.
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None  # orderly shutdown at a frame boundary
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[dict | None, int]:
    """Receive one frame; ``(message, bytes_read)``.

    ``message`` is ``None`` when the peer closed the connection at a frame
    boundary (a clean end-of-stream, not an error).  A close *inside* a
    frame — even one or two bytes into the 4-byte header — an oversized
    length or non-JSON payload raise :exc:`ProtocolError`.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None, 0
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the protocol cap")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_frame(payload), _HEADER.size + length


def enable_nodelay(sock: socket.socket) -> None:
    """Best-effort ``TCP_NODELAY`` on ``sock``.

    Every frame this protocol ships is small (a per-cell result, a
    heartbeat, a placement response header) and latency-sensitive; Nagle
    batching such writes adds up to one delayed-ACK round trip (~40 ms on
    Linux loopback) per frame for nothing.  Non-TCP sockets (the
    ``socketpair`` used in tests) simply ignore the request.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass
