"""Wire protocol for socket sweeps: length-prefixed JSON frames.

Every frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON — trivially parseable from any language, debuggable
with a hex dump, and immune to message boundaries drifting on slow links.
The JSON envelope carries a ``"type"`` plus type-specific fields:

===========  =====  =====================================================
type         dir    fields
===========  =====  =====================================================
hello        w → s  ``protocol``, optional ``fingerprint``
welcome      s → w  ``protocol``, ``fingerprint``, ``fn`` (module:qualname
                    reference), ``instrument``, ``heartbeat`` (seconds),
                    optional ``extras`` (kernel mode, shm handle, trace
                    context — see ``base.dispatch_extras``)
reject       s → w  ``reason`` — protocol or fingerprint mismatch
batch        s → w  ``id``, ``cells``: list of ``{"key": […], "args": …}``
result       w → s  ``batch``, ``index``, ``outcome`` (one cell, streamed
                    as soon as it finishes — crash accounting stays exact)
heartbeat    w → s  liveness while a long cell runs; optionally ``status``
                    (pid/host/worker, cells completed, current cell key)
                    and ``metrics`` (a registry snapshot *delta*, merged
                    into the driver registry on receipt)
drain        s → w  ``{}`` — no more batches; finish and say goodbye
goodbye      w → s  clean exit; optional ``metrics`` — the worker's final
                    unshipped session delta
===========  =====  =====================================================

Optional fields are additive: version-1 peers that omit them interoperate
with peers that send them, so old workers join new servers and vice versa.

Cell ``args``, result values and shipped metrics snapshots are arbitrary
Python objects (configs, fault models, algorithm instances), so they ride
inside the JSON as base64-pickled strings (:func:`encode_payload` /
:func:`decode_payload`) — the same fidelity process pools get from pickled
task tuples.  Pickle means the socket backend trusts its peers: run it on
networks you control, exactly like every other cluster job runner.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_payload",
    "encode_payload",
    "recv_frame",
    "send_frame",
]

#: Bumped whenever frame semantics change; hello/welcome both carry it.
PROTOCOL_VERSION = 1

#: Refuse frames beyond this size — a corrupt length prefix must not
#: trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The peer sent something the wire protocol does not allow."""


def encode_payload(obj) -> str:
    """Pickle an arbitrary object into a JSON-safe base64 string."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str):
    """Invert :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def send_frame(sock: socket.socket, message: dict) -> int:
    """Serialize and send one frame; returns bytes put on the wire."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the protocol cap")
    data = _HEADER.pack(len(payload)) + payload
    sock.sendall(data)
    return len(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None  # orderly shutdown (or death) mid-frame
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> tuple[dict | None, int]:
    """Receive one frame; ``(message, bytes_read)``.

    ``message`` is ``None`` when the peer closed the connection at a frame
    boundary (a clean end-of-stream, not an error).  A close *inside* a
    frame, an oversized length or non-JSON payload raise
    :exc:`ProtocolError`.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None, 0
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the protocol cap")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"frame is not a typed object: {message!r}")
    return message, _HEADER.size + length
