"""TCP socket backend: sweep cells pulled by workers on other machines.

The executor is the server: it listens, welcomes workers that complete the
hello/fingerprint handshake, ships cell batches and collects per-cell
results as they stream back.  ``beaconplace worker --connect HOST:PORT``
(:func:`run_worker`) is the client; any number may join or leave mid-sweep.

Threading model — one place mutates sweep state:

* an acceptor thread accepts connections and starts one handler thread per
  connection; handlers *only receive*, pushing every frame (and the
  disconnect) onto a single event queue;
* the ``execute`` loop is the sole consumer of that queue and the sole
  sender on server-side sockets, so journal writes, retry bookkeeping and
  metrics all stay single-threaded.

Because workers stream one ``result`` frame per cell (not per batch), a
disconnect mid-batch identifies the victim exactly: the first unfinished
cell of the batch was the one running — it is charged an attempt; its
batch-mates requeue at their current attempt ("innocent").  Compare the
local pool, where a chunk's results only arrive together and a dead worker
costs the whole chunk an attempt.

The executor outlives ``execute`` sessions: the CLI builds one per command,
runs several sweeps (noise levels, figure panels) through it, and workers
rejoin between sessions — each session re-runs the handshake because the
cell function and fingerprint change per sweep.
"""

from __future__ import annotations

import os
import queue as queue_mod
import socket
import threading
import time
from typing import Callable, Sequence

from ...obs import (
    get_live,
    get_metrics,
    get_tracer,
    metrics_enabled,
    process_metadata,
    set_worker_id,
)
from .base import (
    CellExecutor,
    EmitFn,
    ProgressFn,
    apply_dispatch_extras,
    cell_fn_ref,
    dispatch_extras,
    merge_metric_snapshots,
    plan_chunk,
    resolve_cell_fn,
    run_one_cell,
    worker_session_metrics,
)
from .wire import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_payload,
    enable_nodelay,
    encode_payload,
    recv_frame,
    send_frame,
)

__all__ = ["SocketExecutor", "WorkerRejected", "run_worker"]

#: Default cells shipped per batch frame; network round-trips cost more
#: than local pipe round-trips, so the socket default is fixed rather than
#: scaled down for small sweeps.
DEFAULT_SOCKET_CHUNK = 8


class WorkerRejected(RuntimeError):
    """The server refused this worker's handshake (protocol/fingerprint)."""


def _merge_remote_delta(metrics, delta) -> None:
    """Fold a worker-shipped metrics delta into the driver registry.

    Best-effort: a malformed or incompatible delta (newer worker build)
    must not take the sweep down — the frame already served its liveness
    purpose.
    """
    if not delta:
        return
    try:
        metrics.merge(delta)
    except (KeyError, TypeError, ValueError):
        metrics.counter("executor.socket.bad_deltas").inc()


class _Conn:
    """Server-side connection state (mutated only by the execute loop)."""

    __slots__ = ("sock", "name", "batch_id", "cells", "done", "deadline")

    def __init__(self, sock: socket.socket, name: str):
        self.sock = sock
        self.name = name
        self.batch_id: int | None = None
        self.cells: list | None = None  # [(key, args, attempt), ...]
        self.done: list | None = None  # per-cell completion flags
        self.deadline: float | None = None


class SocketExecutor(CellExecutor):
    """Serve sweep cells to TCP workers.

    Args:
        bind: ``(host, port)`` to listen on; port 0 picks a free port
            (read it back from :attr:`address`).
        chunk: cells per batch frame (default ``DEFAULT_SOCKET_CHUNK``).
        heartbeat: seconds between worker heartbeats; a connection silent
            for ``3 × heartbeat`` is treated as dead by its handler.
    """

    def __init__(self, bind=("127.0.0.1", 0), *, chunk: int | None = None,
                 heartbeat: float = 30.0):
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk or DEFAULT_SOCKET_CHUNK
        self.heartbeat = heartbeat
        #: Optional shared-memory handle advertised in the welcome frame;
        #: only workers on this host can attach (attach is best-effort).
        self.shared_handle = None
        self._events: queue_mod.Queue = queue_mod.Queue()
        self._conn_lock = threading.Lock()
        self._conn_socks: set[socket.socket] = set()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(tuple(bind))
        self._listener.listen(16)
        self._closed = False
        self._batch_seq = 0
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="sweep-socket-acceptor", daemon=True
        )
        self._acceptor.start()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — where workers connect."""
        return self._listener.getsockname()[:2]

    # -- receive side (threads) --------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            # Per-cell result frames and heartbeats are tiny; without
            # TCP_NODELAY each one can stall a delayed-ACK round trip.
            enable_nodelay(sock)
            with self._conn_lock:
                if self._closed:
                    sock.close()
                    continue
                self._conn_socks.add(sock)
            conn = _Conn(sock, f"{peer[0]}:{peer[1]}")
            threading.Thread(
                target=self._recv_loop, args=(conn,),
                name=f"sweep-socket-recv-{conn.name}", daemon=True,
            ).start()

    def _recv_loop(self, conn: _Conn) -> None:
        try:
            while True:
                try:
                    # Set inside the loop's try: the handshake path may
                    # close a rejected connection before this thread runs.
                    conn.sock.settimeout(self.heartbeat * 3)
                    message, nbytes = recv_frame(conn.sock)
                except (ProtocolError, OSError) as exc:
                    self._events.put(("gone", conn, str(exc), 0))
                    return
                if message is None:
                    self._events.put(("gone", conn, "connection closed", 0))
                    return
                self._events.put(("msg", conn, message, nbytes))
        finally:
            with self._conn_lock:
                self._conn_socks.discard(conn.sock)

    # -- execute loop (single-threaded state) ------------------------------

    def execute(
        self,
        pending: Sequence[tuple],
        fn: Callable,
        *,
        policy,
        emit: EmitFn,
        progress: ProgressFn | None = None,
        fingerprint: str | None = None,
    ) -> None:
        if self._closed:
            raise RuntimeError("socket executor is closed")
        metrics = get_metrics()
        tracer = get_tracer()
        instrument = metrics_enabled()
        fn_ref = cell_fn_ref(fn)
        fingerprint = fingerprint or f"adhoc:{fn_ref}"
        bytes_sent = metrics.counter("executor.socket.bytes_sent")
        bytes_received = metrics.counter("executor.socket.bytes_received")
        queue: list[tuple] = [(key, args, 1) for key, args in pending]
        ready: list[_Conn] = []  # welcomed, no batch assigned
        working: dict[int, _Conn] = {}  # batch id -> connection
        if progress is not None:
            host, port = self.address
            progress(f"socket executor serving {len(queue)} cell(s) on {host}:{port}")

        def fail_or_requeue(key, args, attempt, error):
            if attempt < policy.max_attempts:
                metrics.counter("sweep.cells.retried").inc()
                policy.sleep_before(attempt + 1)
                queue.append((key, args, attempt + 1))
            else:
                emit(key, ok=False, attempts=attempt, error=error)

        def send(conn: _Conn, message: dict) -> bool:
            try:
                bytes_sent.inc(send_frame(conn.sock, message))
                return True
            except OSError:
                # The handler thread will surface the matching "gone".
                return False

        def assign(conn: _Conn) -> None:
            cells, rest = queue[: self.chunk], queue[self.chunk :]
            queue[:] = rest
            self._batch_seq += 1
            conn.batch_id = self._batch_seq
            conn.cells = cells
            conn.done = [False] * len(cells)
            conn.deadline = (
                time.monotonic() + policy.timeout * len(cells)
                if policy.timeout is not None
                else None
            )
            working[conn.batch_id] = conn
            metrics.counter("executor.socket.batches").inc()
            if cells:
                get_live().worker_seen(conn.name, current=list(cells[0][0]))
            send(
                conn,
                {
                    "type": "batch",
                    "id": conn.batch_id,
                    "cells": [
                        {"key": list(key), "args": encode_payload(args)}
                        for key, args, _ in cells
                    ],
                },
            )

        def release(conn: _Conn) -> None:
            if conn.batch_id is not None:
                working.pop(conn.batch_id, None)
            conn.batch_id = conn.cells = conn.done = conn.deadline = None

        def fail_batch(conn: _Conn, cause: str, counter: str) -> None:
            """Charge the running cell; requeue unfinished batch-mates."""
            charged = False
            innocent = 0
            for flag, (key, args, attempt) in zip(conn.done, conn.cells):
                if flag:
                    continue
                if not charged:
                    charged = True
                    metrics.counter(counter).inc()
                    fail_or_requeue(key, args, attempt, cause)
                else:
                    innocent += 1
                    queue.insert(innocent - 1, (key, args, attempt))
            if innocent:
                metrics.counter("executor.socket.requeues").inc(innocent)
                metrics.counter("sweep.cells.requeued_innocent").inc(innocent)
                if progress is not None:
                    progress(
                        f"worker {conn.name} lost batch {conn.batch_id}; requeued "
                        f"{innocent} innocent batch-mate(s) at their current attempt"
                    )
            release(conn)

        def handle(conn: _Conn, message: dict) -> None:
            kind = message.get("type")
            if kind == "hello":
                if message.get("protocol") != PROTOCOL_VERSION:
                    send(conn, {
                        "type": "reject",
                        "reason": (
                            f"protocol {message.get('protocol')!r} != "
                            f"{PROTOCOL_VERSION} (upgrade the worker)"
                        ),
                    })
                    conn.sock.close()
                    return
                offered = message.get("fingerprint")
                if offered is not None and offered != fingerprint:
                    send(conn, {
                        "type": "reject",
                        "reason": (
                            f"sweep fingerprint {offered!r} != {fingerprint!r} "
                            "(this server runs a different sweep)"
                        ),
                    })
                    conn.sock.close()
                    return
                send(conn, {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "fingerprint": fingerprint,
                    "fn": fn_ref,
                    "instrument": instrument,
                    "heartbeat": self.heartbeat,
                    # Additive field: old workers ignore it, old servers
                    # simply never send it — protocol version 1 holds.
                    "extras": dispatch_extras(shared=self.shared_handle),
                })
                if progress is not None:
                    progress(f"worker {conn.name} joined")
                if queue:
                    assign(conn)
                else:
                    ready.append(conn)
            elif kind == "result":
                owner = working.get(message.get("batch"))
                if owner is not conn or owner is None:
                    return  # stale frame from a superseded session
                index = message.get("index")
                if not isinstance(index, int) or not 0 <= index < len(conn.cells):
                    return
                if conn.done[index]:
                    return
                conn.done[index] = True
                key, args, attempt = conn.cells[index]
                outcome = decode_payload(message["outcome"])
                live = get_live()
                winfo = outcome.get("worker") or {}
                if outcome["ok"]:
                    value = outcome["value"]
                    if instrument:
                        metrics.merge(outcome["metrics"])
                        span = outcome.get("span")
                        if span is not None:
                            span.setdefault("attrs", {}).update(
                                key=list(key), attempt=attempt
                            )
                            tracer.write_span_record(span)
                        else:
                            tracer.record_span(
                                "sweep.cell", outcome["seconds"],
                                key=list(key), attempt=attempt,
                            )
                    live.cell_timing(key, outcome["seconds"], conn.name)
                    live.worker_seen(
                        conn.name, pid=winfo.get("pid"), host=winfo.get("host")
                    )
                    live.worker_cell_done(conn.name)
                    emit(key, ok=True, value=value, attempts=attempt)
                else:
                    fail_or_requeue(key, args, attempt, outcome["error"])
                if all(conn.done):
                    release(conn)
                    if queue:
                        assign(conn)
                    else:
                        ready.append(conn)
            elif kind == "heartbeat":
                # Receipt alone resets the handler's recv timeout.  New
                # workers also attach a status payload (worker health for
                # the live ledger) and a metrics snapshot delta; both are
                # optional, so bare version-1 heartbeats still work.
                _merge_remote_delta(metrics, message.get("metrics"))
                status = message.get("status") or {}
                get_live().worker_seen(
                    conn.name,
                    current=status.get("current"),
                    pid=status.get("pid"),
                    host=status.get("host"),
                    cells_done=status.get("cells"),
                )
            elif kind == "goodbye":
                # A departing worker flushes its final session delta here.
                _merge_remote_delta(metrics, message.get("metrics"))
                conn.sock.close()

        def handle_gone(conn: _Conn, detail: str) -> None:
            if conn in ready:
                ready.remove(conn)
            if conn.batch_id is not None and conn.batch_id in working:
                fail_batch(conn, "worker process died", "sweep.cells.worker_death")
            try:
                conn.sock.close()
            except OSError:
                pass

        def expire_deadlines() -> None:
            now = time.monotonic()
            for conn in list(working.values()):
                if conn.deadline is not None and conn.deadline <= now:
                    fail_batch(
                        conn,
                        f"timeout after {policy.timeout}s",
                        "sweep.cells.timeout",
                    )
                    # The worker is stuck on a cell; cut it loose so its
                    # eventual results cannot race the requeued copies.
                    conn.sock.close()

        while queue or working:
            while queue and ready:
                assign(ready.pop())
            wait_for = None
            deadlines = [c.deadline for c in working.values() if c.deadline is not None]
            if deadlines:
                wait_for = max(0.0, min(deadlines) - time.monotonic())
            try:
                kind, conn, payload, nbytes = self._events.get(timeout=wait_for)
            except queue_mod.Empty:
                expire_deadlines()
                continue
            bytes_received.inc(nbytes)
            if kind == "msg":
                handle(conn, payload)
            else:
                handle_gone(conn, payload)
            expire_deadlines()

        # Sweep complete: drain every idle worker so it can exit or rejoin
        # for the next session's handshake.
        for conn in ready:
            send(conn, {"type": "drain"})
            conn.sock.close()
        ready.clear()

    def close(self) -> None:
        """Stop accepting workers; disconnect any that are still attached.

        Closing live connections (not just the listener) matters for
        workers idling between sweep sessions: they are blocked waiting for
        the next welcome and would otherwise hang until their heartbeat
        window expires.
        """
        with self._conn_lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._conn_socks)
            self._conn_socks.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        for sock in pending:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


def run_worker(
    address,
    *,
    fingerprint: str | None = None,
    max_batches: int | None = None,
    connect_timeout: float = 10.0,
    progress: ProgressFn | None = None,
) -> int:
    """Pull and run cell batches from a :class:`SocketExecutor`.

    Connects (retrying for up to ``connect_timeout`` seconds, so workers
    may start before the server), performs the hello handshake, then loops:
    receive a batch, run each cell, stream one result frame per cell.  On
    ``drain`` the worker reconnects for the server's next sweep session;
    when the server is gone it returns.

    Args:
        address: ``(host, port)`` of the serving executor.
        fingerprint: expected sweep fingerprint; the server rejects the
            connection on mismatch (guards against pointing a fleet at the
            wrong sweep).  ``None`` trusts the server.
        max_batches: stop after this many batches (testing/chaos tools).
        connect_timeout: seconds to keep retrying the initial connect, and
            to wait for the server's next session after a drain.
        progress: optional status callback.

    Returns:
        Total cells processed.

    Raises:
        WorkerRejected: the server refused the handshake.
        ConnectionError: the server never became reachable.
    """
    host, port = address
    cells_done = 0
    batches_done = 0
    ever_connected = False
    set_worker_id(f"sock:{os.getpid()}")
    # Shared with the heartbeat thread: plain-assignment updates, read
    # whole — worker-lifetime state surviving drain/rejoin cycles.
    state: dict = {"cells": 0, "current": None}
    session = worker_session_metrics()
    while True:
        sock = _connect_with_retry(
            host, port, connect_timeout, give_up_on_refused=ever_connected
        )
        if sock is None:
            if ever_connected:
                return cells_done
            raise ConnectionError(
                f"no sweep server at {host}:{port} after {connect_timeout}s"
            )
        ever_connected = True
        drained = False
        try:
            sock.settimeout(None)  # block on batches; liveness is the server's job
            hello = {"type": "hello", "protocol": PROTOCOL_VERSION}
            if fingerprint is not None:
                hello["fingerprint"] = fingerprint
            try:
                send_frame(sock, hello)
                welcome, _ = recv_frame(sock)
            except OSError:
                welcome = None  # server shut down mid-handshake
            if welcome is None:
                continue  # retry the connect; refusal ends the loop above
            if welcome.get("type") == "reject":
                raise WorkerRejected(welcome.get("reason", "rejected"))
            if welcome.get("type") != "welcome":
                raise ProtocolError(f"expected welcome, got {welcome!r}")
            fn = resolve_cell_fn(welcome["fn"])
            instrument = bool(welcome.get("instrument"))
            apply_dispatch_extras(welcome.get("extras"))
            if progress is not None:
                progress(
                    f"joined sweep {welcome.get('fingerprint')} at {host}:{port} "
                    f"(fn {welcome['fn']})"
                )
            send_lock = threading.Lock()
            stop_heartbeat = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(sock, send_lock, stop_heartbeat,
                      float(welcome.get("heartbeat", 30.0)),
                      state, session if instrument else None),
                daemon=True,
            )
            beat.start()
            try:
                while True:
                    try:
                        message, _ = recv_frame(sock)
                    except (OSError, ProtocolError):
                        message = None  # server died mid-session
                    if message is None:
                        break
                    def safe_send(frame: dict) -> bool:
                        try:
                            with send_lock:
                                send_frame(sock, frame)
                            return True
                        except OSError:
                            return False  # server gone; end the session

                    if message["type"] == "drain":
                        safe_send(_goodbye_frame(session if instrument else None))
                        drained = True
                        break
                    if message["type"] != "batch":
                        continue
                    lost_server = False
                    batch_args = [
                        decode_payload(cell["args"]) for cell in message["cells"]
                    ]
                    thunks, plan_metrics = plan_chunk(fn, batch_args, instrument)
                    for index, args in enumerate(batch_args):
                        state["current"] = message["cells"][index].get("key")
                        outcome = run_one_cell(
                            fn, args, instrument=instrument,
                            thunk=thunks[index] if thunks is not None else None,
                        )
                        if plan_metrics is not None:
                            # Charge the plan's counters to the first result
                            # frame (mirrors run_cell_chunk's chunk-level
                            # accounting).
                            outcome["metrics"] = merge_metric_snapshots(
                                outcome["metrics"], plan_metrics
                            )
                            plan_metrics = None
                        if not safe_send({
                            "type": "result",
                            "batch": message["id"],
                            "index": index,
                            "outcome": encode_payload(outcome),
                        }):
                            lost_server = True
                            break
                        cells_done += 1
                        state["cells"] += 1
                        session.counter("worker.cells").inc()
                    state["current"] = None
                    if lost_server:
                        break
                    batches_done += 1
                    session.counter("worker.batches").inc()
                    if progress is not None:
                        progress(f"batch {message['id']}: {len(message['cells'])} cell(s)")
                    if max_batches is not None and batches_done >= max_batches:
                        safe_send(_goodbye_frame(session if instrument else None))
                        return cells_done
            finally:
                stop_heartbeat.set()
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if not drained:
            return cells_done
        # Drained: the server may start another sweep session (next noise
        # level, next figure panel) — rejoin it with a fresh handshake.


def _connect_with_retry(
    host: str, port: int, timeout: float, *, give_up_on_refused: bool = False
) -> socket.socket | None:
    """Connect, retrying until ``timeout``.

    ``give_up_on_refused`` short-circuits on ECONNREFUSED: once a worker has
    been connected, the listener stays open between sweep sessions, so a
    refusal means the server shut down — no point retrying out the window.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=max(timeout, 1.0))
            enable_nodelay(sock)
            return sock
        except ConnectionRefusedError:
            if give_up_on_refused or time.monotonic() >= deadline:
                return None
            time.sleep(0.2)
        except OSError:
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.2)


def _nonempty_delta(session) -> dict | None:
    """The session registry's pending delta, or ``None`` when quiet."""
    if session is None:
        return None
    delta = session.snapshot_delta()
    if delta["counters"] or delta["gauges"] or delta["histograms"]:
        return delta
    return None


def _goodbye_frame(session) -> dict:
    """A goodbye frame flushing the final session metrics delta, if any."""
    frame: dict = {"type": "goodbye"}
    delta = _nonempty_delta(session)
    if delta is not None:
        frame["metrics"] = delta
    return frame


def _heartbeat_loop(sock, send_lock, stop: threading.Event, interval: float,
                    state: dict | None = None, session=None) -> None:
    """Send periodic heartbeats, carrying worker status + metrics deltas.

    Both payloads are additive protocol-v1 fields: an old server ignores
    them, and an old worker's bare ``{"type": "heartbeat"}`` still counts
    as liveness on a new server.
    """
    while not stop.wait(interval):
        frame: dict = {"type": "heartbeat"}
        if state is not None:
            frame["status"] = {
                **process_metadata(),
                "cells": state.get("cells", 0),
                "current": state.get("current"),
            }
        delta = _nonempty_delta(session)
        if delta is not None:
            frame["metrics"] = delta
        try:
            with send_lock:
                send_frame(sock, frame)
        except OSError:
            return
