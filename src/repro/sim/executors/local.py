"""Local backends: in-process serial and the chunked spawn pool.

``PoolExecutor`` replaces the old batch-ordered collection in
``sim/resilient.py`` with a window of chunk futures collected as they
complete (``concurrent.futures.wait(FIRST_COMPLETED)``) under per-chunk
deadlines.  Two consequences:

* a stuck worker is detected within ``timeout × chunk`` of its own deadline
  instead of up to ``workers × timeout`` after the whole batch is awaited;
* one pickled round-trip ships ``chunk`` cells, amortizing submit/collect
  overhead that dominates sweeps of small cells.

Failure semantics match the legacy pool: a cell that raises is retried with
backoff up to the policy budget; a timeout or worker death taints the whole
pool, which is discarded and rebuilt, and outstanding cells that were *not*
charged are requeued at their current attempt ("innocent").  When a worker
dies or stalls mid-chunk the runtime cannot tell which cell was at fault,
so every cell of the charged chunk spends one attempt — guaranteeing the
poisonous cell exhausts its budget within ``max_attempts`` rebuilds.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

from ...obs import get_live, get_metrics, get_tracer, metrics_enabled
from .base import (
    CellExecutor,
    EmitFn,
    ProgressFn,
    batch_thunks,
    dispatch_extras,
    run_cell_chunk,
    spawn_context,
)

__all__ = ["SerialExecutor", "PoolExecutor", "auto_chunk"]

#: Cells planned per serial batch pass.  Bounds the state a batch planner
#: may retain (pre-warmed worlds live until their cell is emitted) while
#: still amortizing the kernel pass over a useful block.
SERIAL_BATCH = 128


class SerialExecutor(CellExecutor):
    """Run cells in-process, in order.  No timeouts (nothing can preempt).

    Cells whose function has a registered batch planner are planned in
    blocks of :data:`SERIAL_BATCH` — one vectorized pass per block — and
    retried scalar (thunks are first-attempt only; a retry should not trust
    the batch state that just failed).
    """

    def execute(
        self,
        pending: Sequence[tuple],
        fn: Callable,
        *,
        policy,
        emit: EmitFn,
        progress: ProgressFn | None = None,
        fingerprint: str | None = None,
    ) -> None:
        metrics = get_metrics()
        cell_seconds = metrics.histogram("sweep.cell.seconds")
        retries = metrics.counter("sweep.cells.retried")
        tracer = get_tracer()
        live = get_live()
        pending = list(pending)
        for start_index in range(0, len(pending), SERIAL_BATCH):
            block = pending[start_index : start_index + SERIAL_BATCH]
            thunks = batch_thunks(fn, [args for _, args in block])
            for j, (key, args) in enumerate(block):
                thunk = thunks[j] if thunks is not None else None
                last_error = None
                for attempt in range(1, policy.max_attempts + 1):
                    if attempt > 1:
                        retries.inc()
                        policy.sleep_before(attempt)
                    live.worker_seen("serial", current=list(key), pid=os.getpid())
                    try:
                        with tracer.span("sweep.cell", key=list(key), attempt=attempt):
                            start = time.perf_counter()
                            if thunk is not None and attempt == 1:
                                try:
                                    value = thunk()
                                except Exception:  # noqa: BLE001 — fall back
                                    metrics.counter(
                                        "kernel.batch.thunk_fallbacks"
                                    ).inc()
                                    value = fn(args)
                            else:
                                value = fn(args)
                            elapsed = time.perf_counter() - start
                            cell_seconds.observe(elapsed)
                    except Exception as exc:  # noqa: BLE001 — degrade, never abort
                        last_error = f"{type(exc).__name__}: {exc}"
                        continue
                    live.cell_timing(key, elapsed, "serial")
                    live.worker_cell_done("serial")
                    emit(key, ok=True, value=value, attempts=attempt)
                    break
                else:
                    emit(key, ok=False, attempts=policy.max_attempts, error=last_error)


def auto_chunk(cells: int, workers: int) -> int:
    """Default cells-per-chunk: enough to amortize IPC, small enough to
    keep all workers busy (≥ 4 chunks per worker) and to keep the
    charge-the-chunk failure blast radius modest."""
    return max(1, min(16, cells // (workers * 4)))


class _Outstanding:
    """One in-flight chunk future and its accounting."""

    __slots__ = ("future", "cells", "order", "deadline")

    def __init__(self, future, cells, order, deadline):
        self.future = future
        self.cells = cells  # [(key, args, attempt), ...]
        self.order = order
        self.deadline = deadline


class PoolExecutor(CellExecutor):
    """Spawn-pool backend: chunked submission, completion-order collection.

    Args:
        workers: pool size.
        chunk: cells per submitted chunk; ``None`` = :func:`auto_chunk`.
        mp_context: multiprocessing context override (default: spawn).
    """

    def __init__(self, workers: int, *, chunk: int | None = None, mp_context=None):
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.workers = workers
        self.chunk = chunk
        #: Optional shared-memory handle (see ``executors.shm``) shipped with
        #: every chunk so workers attach the sweep's immutable arrays
        #: zero-copy instead of rebuilding them per process.
        self.shared_handle = None
        self._ctx = mp_context if mp_context is not None else spawn_context()
        # The pool persists across execute() sessions — spawn start-up
        # (workers re-import the package) is paid once per executor, not
        # once per sweep, so a multi-panel figure reuses warm workers.
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def execute(
        self,
        pending: Sequence[tuple],
        fn: Callable,
        *,
        policy,
        emit: EmitFn,
        progress: ProgressFn | None = None,
        fingerprint: str | None = None,
    ) -> None:
        metrics = get_metrics()
        tracer = get_tracer()
        # With observability on, cells run under a worker-local registry
        # whose snapshot ships back with the value (see obs.run_one_cell);
        # the parent merges it so per-worker metrics aggregate into one
        # registry.
        instrument = metrics_enabled()
        chunk_size = self.chunk or auto_chunk(len(pending), self.workers)
        queue: list[tuple] = [(key, args, 1) for key, args in pending]
        self._ensure_pool()
        outstanding: list[_Outstanding] = []
        order = 0

        def submit_next():
            nonlocal order
            cells, rest = queue[:chunk_size], queue[chunk_size:]
            queue[:] = rest
            payload = (
                fn,
                [args for _, args, _ in cells],
                instrument,
                dispatch_extras(shared=self.shared_handle),
            )
            if instrument:
                metrics.counter("executor.pool.bytes_shipped").inc(
                    len(pickle.dumps(payload))
                )
            metrics.counter("executor.pool.batches").inc()
            deadline = None
            if policy.timeout is not None:
                deadline = time.monotonic() + policy.timeout * len(cells)
            outstanding.append(
                _Outstanding(
                    self._pool.submit(run_cell_chunk, payload), cells, order, deadline
                )
            )
            order += 1

        def fail_or_requeue(key, args, attempt, error):
            if attempt < policy.max_attempts:
                metrics.counter("sweep.cells.retried").inc()
                policy.sleep_before(attempt + 1)
                queue.append((key, args, attempt + 1))
            else:
                emit(key, ok=False, attempts=attempt, error=error)

        def harvest(entry: _Outstanding) -> bool:
            """Emit one completed chunk's outcomes; True if the pool broke."""
            try:
                cell_outcomes = entry.future.result()
            except BrokenProcessPool:
                return True
            except Exception as exc:  # noqa: BLE001 — chunk-level failure
                # run_cell_chunk only raises on unpicklable results or
                # executor internals; charge the chunk like a cell error.
                for key, args, attempt in entry.cells:
                    fail_or_requeue(key, args, attempt, f"{type(exc).__name__}: {exc}")
                return False
            live = get_live()
            for (key, args, attempt), outcome in zip(entry.cells, cell_outcomes):
                winfo = outcome.get("worker")
                worker_id = winfo.get("worker") if winfo else None
                if outcome["ok"]:
                    value = outcome["value"]
                    if instrument:
                        metrics.merge(outcome["metrics"])
                        span = outcome.get("span")
                        if span is not None:
                            # Worker-built record: keep its identity/parent,
                            # stamp the driver-known attributes.
                            span.setdefault("attrs", {}).update(
                                key=list(key), attempt=attempt
                            )
                            tracer.write_span_record(span)
                        else:
                            tracer.record_span(
                                "sweep.cell", outcome["seconds"],
                                key=list(key), attempt=attempt,
                            )
                    live.cell_timing(key, outcome["seconds"], worker_id)
                    if worker_id is not None:
                        live.worker_seen(
                            worker_id, pid=winfo.get("pid"), host=winfo.get("host")
                        )
                        live.worker_cell_done(worker_id)
                    emit(key, ok=True, value=value, attempts=attempt)
                else:
                    fail_or_requeue(key, args, attempt, outcome["error"])
            return False

        def rebuild(charged: list[_Outstanding], error: str, counter: str):
            """Charge ``charged`` chunks, requeue the rest innocent, new pool."""
            innocent = 0
            requeue_front: list[tuple] = []
            for entry in outstanding:
                if entry in charged:
                    for key, args, attempt in entry.cells:
                        metrics.counter(counter).inc()
                        fail_or_requeue(key, args, attempt, error)
                else:
                    # The fault was not theirs; same attempt, ahead of the
                    # queue so retried work finishes first.
                    innocent += len(entry.cells)
                    requeue_front.extend(entry.cells)
            queue[:0] = requeue_front
            outstanding.clear()
            metrics.counter("sweep.pool.rebuilds").inc()
            if innocent:
                metrics.counter("sweep.cells.requeued_innocent").inc(innocent)
                if progress is not None:
                    progress(
                        f"pool rebuilt; requeued {innocent} innocent "
                        "chunk-mate(s) at their current attempt"
                    )
            self.close()
            self._ensure_pool()

        while queue or outstanding:
            while queue and len(outstanding) < self.workers:
                submit_next()
            wait_for = None
            if policy.timeout is not None:
                nearest = min(e.deadline for e in outstanding)
                wait_for = max(0.0, nearest - time.monotonic())
            done, _ = wait(
                [e.future for e in outstanding],
                timeout=wait_for,
                return_when=FIRST_COMPLETED,
            )
            broke = False
            harvested = []
            for entry in sorted(outstanding, key=lambda e: e.order):
                if entry.future in done:
                    if harvest(entry):
                        broke = True
                    else:
                        harvested.append(entry)
            outstanding[:] = [e for e in outstanding if e not in harvested]
            if broke:
                # The runtime cannot tell which chunk killed the worker
                # (every outstanding future raises BrokenProcessPool);
                # charge the earliest-submitted one — it ran longest —
                # and spare the rest.
                charged = sorted(outstanding, key=lambda e: e.order)[:1]
                rebuild(charged, "worker process died", "sweep.cells.worker_death")
                continue
            if policy.timeout is not None:
                now = time.monotonic()
                expired = [e for e in outstanding if e.deadline <= now]
                if expired:
                    rebuild(
                        expired,
                        f"timeout after {policy.timeout}s",
                        "sweep.cells.timeout",
                    )
