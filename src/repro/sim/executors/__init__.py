"""Pluggable sweep executors: where resilient sweep cells actually run.

:func:`repro.sim.run_cells` owns *what* runs (jobs, retries, the journal);
a :class:`CellExecutor` owns *where*:

* :class:`SerialExecutor` — in-process, in order (the reference backend);
* :class:`PoolExecutor` — local spawn pool with cell chunking and
  completion-order collection under per-chunk deadlines;
* :class:`SocketExecutor` — TCP server feeding ``beaconplace worker``
  processes on any machine (:mod:`repro.sim.executors.wire` documents the
  frame format).

All three produce bit-identical sweeps: cells are pure functions of the
config seed, and ordering/retry bookkeeping happens in ``run_cells``
regardless of backend.
"""

from .base import (
    CellExecutor,
    batch_thunks,
    cell_fn_ref,
    dispatch_extras,
    make_executor,
    register_batch_planner,
    resolve_cell_fn,
    run_one_cell,
    spawn_context,
    validate_workers,
    worker_session_metrics,
)
from .cache import cached_grid, cached_layout, cached_localizer, clear_world_cache
from .local import PoolExecutor, SerialExecutor
from .shm import (
    SharedWorldState,
    attach_shared_state,
    publish_for_executor,
    publish_shared_state,
)
from .sockets import SocketExecutor, WorkerRejected, run_worker

__all__ = [
    "CellExecutor",
    "SerialExecutor",
    "PoolExecutor",
    "SocketExecutor",
    "WorkerRejected",
    "make_executor",
    "run_worker",
    "run_one_cell",
    "register_batch_planner",
    "batch_thunks",
    "dispatch_extras",
    "cell_fn_ref",
    "resolve_cell_fn",
    "spawn_context",
    "validate_workers",
    "worker_session_metrics",
    "cached_grid",
    "cached_layout",
    "cached_localizer",
    "clear_world_cache",
    "SharedWorldState",
    "publish_shared_state",
    "publish_for_executor",
    "attach_shared_state",
]
