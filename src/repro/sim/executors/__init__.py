"""Pluggable sweep executors: where resilient sweep cells actually run.

:func:`repro.sim.run_cells` owns *what* runs (jobs, retries, the journal);
a :class:`CellExecutor` owns *where*:

* :class:`SerialExecutor` — in-process, in order (the reference backend);
* :class:`PoolExecutor` — local spawn pool with cell chunking and
  completion-order collection under per-chunk deadlines;
* :class:`SocketExecutor` — TCP server feeding ``beaconplace worker``
  processes on any machine (:mod:`repro.sim.executors.wire` documents the
  frame format).

All three produce bit-identical sweeps: cells are pure functions of the
config seed, and ordering/retry bookkeeping happens in ``run_cells``
regardless of backend.
"""

from .base import (
    CellExecutor,
    cell_fn_ref,
    make_executor,
    resolve_cell_fn,
    run_one_cell,
    spawn_context,
    validate_workers,
)
from .cache import cached_grid, cached_layout, cached_localizer, clear_world_cache
from .local import PoolExecutor, SerialExecutor
from .sockets import SocketExecutor, WorkerRejected, run_worker

__all__ = [
    "CellExecutor",
    "SerialExecutor",
    "PoolExecutor",
    "SocketExecutor",
    "WorkerRejected",
    "make_executor",
    "run_worker",
    "run_one_cell",
    "cell_fn_ref",
    "resolve_cell_fn",
    "spawn_context",
    "validate_workers",
    "cached_grid",
    "cached_layout",
    "cached_localizer",
    "clear_world_cache",
]
