"""Zero-copy shared world state for pool/socket workers.

Every worker process used to rebuild the sweep's immutable arrays from
scratch: the measurement lattice (``P_T × 2`` floats), the overlapping-grid
membership masks (``N_G × P_T`` booleans, the single largest constant of a
sweep), every replication's beacon positions (re-deriving the RNG substream
per field) and every cell's propagation-realization seed.  None of that
state differs between workers — it is a pure function of the config — so
the driver now publishes it **once** into a ``multiprocessing.shared_memory``
segment and ships a small JSON-able *handle* with each dispatch (pool chunk
payloads, socket welcome frames).

Workers :func:`attach_shared_state` on first contact: NumPy views over the
segment are installed into the ordinary per-process caches
(:mod:`repro.sim.executors.cache`) as pre-seeded entries, so
``build_world`` finds every component already "built" — backed by the one
physical copy of the arrays, not a per-worker duplicate.  Attach is
strictly best-effort: a worker on another machine (socket backend), a
worker that outlives the segment, or any attach error simply falls back to
rebuilding through the caches.  Batching/shm can degrade to slow, never to
wrong.

Lifecycle — the driver owns the segment:

* :func:`publish_shared_state` creates and fills it, returning a
  :class:`SharedWorldState` whose ``handle`` travels over the wire;
* the sweep driver unlinks it in a ``finally`` as soon as the cells are
  drained (:meth:`SharedWorldState.unlink` is idempotent);
* a process-exit hook unlinks anything still live, so even a driver that
  raises mid-sweep leaves no segment behind;
* attachers *unregister* the segment from their ``resource_tracker``
  (Python registers attached segments as if owned, so a worker exit would
  otherwise unlink the segment under the driver and spam leak warnings) —
  the POSIX mapping itself dies with the worker process, killed or not.
"""

from __future__ import annotations

import atexit
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ...field import BeaconField
from ...obs import get_metrics
from ...radio import BeaconNoiseModel
from . import cache as world_cache

__all__ = [
    "SharedWorldState",
    "publish_shared_state",
    "publish_for_executor",
    "attach_shared_state",
    "attached_segment_name",
]

_ALIGN = 16

#: Live published segments, unlinked at interpreter exit (crash safety for
#: drivers that never reach their ``finally``).
_published: "list[SharedWorldState]" = []

#: The segment this process attached to (kept referenced: cached arrays are
#: views into its buffer).  One sweep segment at a time is the contract —
#: a new handle replaces the old attachment.
_attached: "dict[str, shared_memory.SharedMemory]" = {}


class SharedWorldState:
    """A published segment plus the handle workers attach with."""

    def __init__(self, shm: shared_memory.SharedMemory, handle: dict):
        self._shm = shm
        self.handle = handle
        _published.append(self)

    @property
    def name(self) -> str:
        """The OS-level segment name (``handle["name"]``)."""
        return self.handle["name"]

    def unlink(self) -> None:
        """Destroy the segment (idempotent; safe if already gone)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        if self in _published:
            _published.remove(self)
        try:
            shm.close()
        except BufferError:
            pass  # a view escaped; the unlink below still reclaims the name
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedWorldState":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


@atexit.register
def _unlink_published() -> None:
    for state in list(_published):
        state.unlink()


def _field_key(seed: int, count: int, index: int, side: float) -> tuple:
    """Mirror of the ``cached_field`` key in :func:`repro.sim.build_world`."""
    return (seed, count, index, side)


def _realization_key(
    seed: int, noise: float, count: int, index: int, radio_range: float, cm_thresh
) -> tuple:
    """Mirror of the ``cached_realization`` key in :func:`repro.sim.build_world`."""
    return (seed, noise, count, index, radio_range, cm_thresh)


def publish_shared_state(config, *, noises=()) -> SharedWorldState:
    """Build the sweep's immutable arrays and publish them in one segment.

    Args:
        config: the sweep's :class:`~repro.sim.ExperimentConfig`.
        noises: noise levels whose propagation-realization seeds should ride
            along (only meaningful for the default model family — drivers
            with a custom ``model_factory`` must not publish seeds).

    Returns:
        The owning :class:`SharedWorldState`; its ``handle`` is JSON-able.
    """
    from ..rng import derive_rng
    from ..sweep import default_model_factory

    grid = world_cache.cached_grid(config.side, config.step)
    layout = world_cache.cached_layout(
        config.side, config.radio_range, config.num_grids
    )
    points = grid.points()
    centers = layout.centers()
    masks = layout.membership_masks(grid)

    counts = [int(c) for c in config.beacon_counts]
    per_density = int(config.fields_per_density)
    noises = [float(n) for n in noises]

    sections: list[np.ndarray] = [points, centers, masks]
    # One contiguous positions block per density; the per-field slice is
    # computable from (count, index) so the handle stays small.  Fields are
    # built through the same cache/derivation ``build_world`` uses, so the
    # published coordinates are bit-identical to a worker's own rebuild.
    field_blocks: list[np.ndarray] = []
    for count in counts:
        block = np.empty((per_density, count, 2), dtype=float)
        for index in range(per_density):

            def build_field(_count=count, _index=index):
                field_rng = derive_rng(config.seed, "field", _count, _index)
                from ...field import random_uniform_field

                return random_uniform_field(_count, config.side, field_rng)

            field = world_cache.cached_field(
                _field_key(config.seed, count, index, config.side), build_field
            )
            block[index] = field.positions()
        field_blocks.append(block)
        sections.append(block)

    seeds = None
    if noises:
        seeds = np.empty((len(noises), len(counts), per_density), dtype=np.uint64)
        factory = default_model_factory(config)
        for ni, noise in enumerate(noises):
            model: BeaconNoiseModel = factory(noise)
            for ci, count in enumerate(counts):
                for index in range(per_density):

                    def build_realization(
                        _model=model, _noise=noise, _count=count, _index=index
                    ):
                        world_rng = derive_rng(
                            config.seed, "world", _noise, _count, _index
                        )
                        return _model.realize(world_rng)

                    realization = world_cache.cached_realization(
                        _realization_key(
                            config.seed, noise, count, index,
                            config.radio_range, config.cm_thresh,
                        ),
                        build_realization,
                    )
                    seeds[ni, ci, index] = np.uint64(realization.seed)
        sections.append(seeds)

    offsets = []
    total = 0
    for arr in sections:
        total = -(-total // _ALIGN) * _ALIGN
        offsets.append(total)
        total += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    for arr, offset in zip(sections, offsets):
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
        view[...] = arr
        del view

    handle = {
        "name": shm.name,
        "grid": {"side": config.side, "step": config.step, "points": offsets[0]},
        "layout": {
            "side": config.side,
            "radio_range": config.radio_range,
            "num_grids": config.num_grids,
            "centers": offsets[1],
            "masks": offsets[2],
        },
        "fields": {
            "seed": int(config.seed),
            "side": config.side,
            "per_density": per_density,
            "counts": counts,
            "offsets": offsets[3 : 3 + len(counts)],
        },
    }
    if seeds is not None:
        handle["realizations"] = {
            "seed": int(config.seed),
            "noises": noises,
            "counts": counts,
            "per_density": per_density,
            "radio_range": config.radio_range,
            "cm_thresh": config.cm_thresh,
            "offset": offsets[-1],
        }
    get_metrics().counter("shm.published_bytes").inc(total)
    return SharedWorldState(shm, handle)


def publish_for_executor(executor, config, *, noises=()) -> SharedWorldState | None:
    """Publish shared state and advertise it on ``executor``, if it can.

    Returns ``None`` (and publishes nothing) for executors without a
    ``shared_handle`` slot (serial), when the caller already installed a
    handle, or if publishing itself fails — the sweep then simply runs with
    per-worker rebuilds.  The caller owns the returned state and must
    ``unlink()`` it (and reset ``executor.shared_handle``) after the sweep.
    """
    if executor is None or not hasattr(executor, "shared_handle"):
        return None
    if executor.shared_handle is not None:
        return None
    try:
        state = publish_shared_state(config, noises=noises)
    except Exception:  # noqa: BLE001 — shm is an optimization, never fatal
        get_metrics().counter("shm.publish_failures").inc()
        return None
    executor.shared_handle = state.handle
    return state


def _unregister_attachment(shm: shared_memory.SharedMemory) -> None:
    """Undo Python's register-on-attach, but only for a private tracker.

    ``SharedMemory(name=...)`` registers the segment with the resource
    tracker as if this process owned it.  For a standalone worker (its own
    tracker — e.g. ``beaconplace worker``) that is fatal: worker exit would
    unlink the driver's live segment, so we unregister.  Pool workers,
    however, *inherit the driver's tracker fd* through spawn — registration
    lands in the driver's own tracker as a set no-op, and unregistering
    there would strip the driver's registration out from under its eventual
    ``unlink`` (tracker KeyError noise, and a crash-leak window).  An
    inherited tracker is recognizable by fd-without-pid: leave it alone.
    """
    tracker = resource_tracker._resource_tracker
    if getattr(tracker, "_fd", None) is not None and getattr(tracker, "_pid", None) is None:
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 — tracker layout is platform-specific
        pass


def attached_segment_name() -> str | None:
    """The segment name this process is attached to, or ``None``."""
    for name in _attached:
        return name
    return None


def attach_shared_state(handle: dict) -> bool:
    """Attach to a published segment and pre-seed the world caches.

    Idempotent per segment name.  Raises on failure — the caller
    (:func:`repro.sim.executors.base.apply_dispatch_extras`) treats any
    exception as "rebuild locally".

    Returns:
        True if the caches were (re-)seeded, False if already attached.
    """
    name = handle["name"]
    if name in _attached:
        return False
    for state in _published:
        if state.handle.get("name") == name:
            # This process *published* the segment (in-process socket
            # worker, tests): its caches already hold the source objects.
            return False
    shm = shared_memory.SharedMemory(name=name)
    _unregister_attachment(shm)
    # Drop any previous sweep's attachment (its cached views die with the
    # cache entries; the mapping stays valid until process exit).
    _attached.clear()
    _attached[name] = shm

    def view(offset, shape, dtype):
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
        arr.setflags(write=False)
        return arr

    g = handle["grid"]
    grid = world_cache.cached_grid(g["side"], g["step"])
    pts = view(g["points"], (grid.num_points, 2), float)
    grid._cache["points"] = pts

    lay = handle["layout"]
    layout = world_cache.cached_layout(
        lay["side"], lay["radio_range"], lay["num_grids"]
    )
    layout._cache["centers"] = view(lay["centers"], (lay["num_grids"], 2), float)
    layout._cache[("masks", g["side"], g["step"])] = view(
        lay["masks"], (lay["num_grids"], grid.num_points), bool
    )

    f = handle["fields"]
    for count, offset in zip(f["counts"], f["offsets"]):
        for index in range(f["per_density"]):
            positions = view(
                offset + index * count * 2 * 8, (count, 2), float
            )
            field = BeaconField.__new__(BeaconField)
            field._beacons = None
            field._positions = positions
            field._ids = tuple(range(count))
            field._next_id = count
            world_cache._fields[
                _field_key(f["seed"], count, index, f["side"])
            ] = field

    r = handle.get("realizations")
    if r is not None:
        from ...radio import BeaconNoiseRealization

        seeds = view(
            r["offset"],
            (len(r["noises"]), len(r["counts"]), r["per_density"]),
            np.uint64,
        )
        for ni, noise in enumerate(r["noises"]):
            for ci, count in enumerate(r["counts"]):
                for index in range(r["per_density"]):
                    world_cache._realizations[
                        _realization_key(
                            r["seed"], noise, count, index,
                            r["radio_range"], r["cm_thresh"],
                        )
                    ] = BeaconNoiseRealization(
                        r["radio_range"],
                        noise,
                        int(seeds[ni, ci, index]),
                        cm_thresh=r["cm_thresh"],
                    )
    get_metrics().counter("shm.attached").inc()
    return True
