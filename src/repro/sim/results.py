"""Result containers for sweeps: labelled curves with confidence intervals.

Every figure in the paper is a set of curves over the beacon-density axis;
:class:`Curve` is exactly that — x values (both density and raw beacon
count), point estimates, confidence half-widths and sample counts — plus
the conversions the paper's dual axes use (beacons per m², beacons per
nominal coverage area, error as a fraction of range).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Curve", "CurveSet"]


@dataclass(frozen=True)
class Curve:
    """One labelled series over the density sweep.

    Attributes:
        label: series label (e.g. ``"grid"``, ``"Noise=0.3"``).
        counts: beacon counts at each x position.
        densities: beacons per m² at each x position.
        values: point estimates (meters unless stated otherwise); NaN marks
            a point with no usable samples at all.
        ci_half_widths: confidence half-widths matching ``values``.
        num_samples: replications behind each point (finite samples only).
        meta: free-form per-curve provenance.  Degraded sweeps record
            ``meta["coverage"]`` — the per-point fraction of scheduled
            replications that produced a finite sample (1.0 everywhere for a
            clean run).  Excluded from equality comparisons.
    """

    label: str
    counts: tuple[int, ...]
    densities: tuple[float, ...]
    values: tuple[float, ...]
    ci_half_widths: tuple[float, ...]
    num_samples: tuple[int, ...]
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        lengths = {
            len(self.counts),
            len(self.densities),
            len(self.values),
            len(self.ci_half_widths),
            len(self.num_samples),
        }
        if len(lengths) != 1:
            raise ValueError(f"curve field lengths disagree: {lengths}")

    def __len__(self) -> int:
        return len(self.values)

    def coverage_densities(self, radio_range: float) -> tuple[float, ...]:
        """The paper's secondary x axis: beacons per ``π R²``."""
        area = math.pi * radio_range**2
        return tuple(d * area for d in self.densities)

    def values_as_range_fraction(self, radio_range: float) -> tuple[float, ...]:
        """The paper's secondary y axis: error as a fraction of R."""
        return tuple(v / radio_range for v in self.values)

    def value_at_count(self, count: int) -> float:
        """The point estimate at a given beacon count."""
        try:
            idx = self.counts.index(count)
        except ValueError:
            raise KeyError(f"count {count} not in curve (has {self.counts})") from None
        return self.values[idx]

    def coverage(self) -> tuple[float, ...]:
        """Per-point sample coverage (``meta["coverage"]``; 1.0 by default)."""
        stored = self.meta.get("coverage")
        if stored is None:
            return (1.0,) * len(self)
        return tuple(float(c) for c in stored)

    def as_rows(self) -> list[dict]:
        """Plain dict rows for CSV/tables."""
        return [
            {
                "label": self.label,
                "count": c,
                "density": d,
                "value": v,
                "ci_half_width": h,
                "num_samples": n,
                "coverage": g,
            }
            for c, d, v, h, n, g in zip(
                self.counts,
                self.densities,
                self.values,
                self.ci_half_widths,
                self.num_samples,
                self.coverage(),
            )
        ]

    @classmethod
    def from_samples(
        cls,
        label: str,
        counts,
        densities,
        samples_per_count,
        *,
        confidence: float = 0.95,
    ) -> "Curve":
        """Aggregate raw per-field samples into a curve.

        NaN samples mark replications that failed or were excluded (e.g. a
        sweep cell that exhausted its retries); they are dropped from the
        point estimate and the per-point coverage is recorded in
        ``meta["coverage"]``.  An all-NaN point degrades to a NaN value with
        zero samples rather than raising — a degraded sweep never silently
        drops a series.

        Args:
            label: series label.
            counts: beacon counts, one per sweep position.
            densities: matching densities.
            samples_per_count: iterable of 1-D sample arrays, one per count.
            confidence: CI level.
        """
        from ..stats import mean_ci  # local import to avoid a package cycle

        values, halves, ns, coverage = [], [], [], []
        for samples in samples_per_count:
            arr = np.asarray(samples, dtype=float)
            finite = int(np.count_nonzero(~np.isnan(arr)))
            coverage.append(finite / arr.size if arr.size else 0.0)
            if finite == 0:
                values.append(float("nan"))
                halves.append(float("nan"))
                ns.append(0)
                continue
            ci = mean_ci(arr, confidence)
            values.append(ci.value)
            halves.append(ci.half_width)
            ns.append(ci.n)
        return cls(
            label=label,
            counts=tuple(int(c) for c in counts),
            densities=tuple(float(d) for d in densities),
            values=tuple(values),
            ci_half_widths=tuple(halves),
            num_samples=tuple(ns),
            meta={"coverage": tuple(coverage)},
        )


@dataclass
class CurveSet:
    """A named family of curves sharing one x axis (one paper figure).

    Attributes:
        title: figure title.
        curves: the series, in display order.
        meta: free-form provenance (config fidelity, noise level, …).
    """

    title: str
    curves: list[Curve]
    meta: dict = field(default_factory=dict)

    def curve(self, label: str) -> Curve:
        """Look up a series by label."""
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(f"no curve labelled {label!r} in {self.title!r}")

    def labels(self) -> list[str]:
        """All series labels, in order."""
        return [c.label for c in self.curves]

    def as_rows(self) -> list[dict]:
        """All series flattened to dict rows."""
        rows = []
        for c in self.curves:
            rows.extend(c.as_rows())
        return rows
