"""Result containers for sweeps: labelled curves with confidence intervals.

Every figure in the paper is a set of curves over the beacon-density axis;
:class:`Curve` is exactly that — x values (both density and raw beacon
count), point estimates, confidence half-widths and sample counts — plus
the conversions the paper's dual axes use (beacons per m², beacons per
nominal coverage area, error as a fraction of range).

:class:`TimeCurve` is the temporal analogue used by timeline sweeps
(:mod:`repro.sim.timeline`): one fault model's localization error over
snapshot *times* instead of densities, with asymmetric bootstrap intervals
(error under degradation is skewed, so a t-interval would lie).  It plugs
into the same :class:`CurveSet` container — ``label``/``as_rows``/
``coverage`` follow the :class:`Curve` contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Curve", "CurveSet", "TimeCurve"]


@dataclass(frozen=True)
class Curve:
    """One labelled series over the density sweep.

    Attributes:
        label: series label (e.g. ``"grid"``, ``"Noise=0.3"``).
        counts: beacon counts at each x position.
        densities: beacons per m² at each x position.
        values: point estimates (meters unless stated otherwise); NaN marks
            a point with no usable samples at all.
        ci_half_widths: confidence half-widths matching ``values``.
        num_samples: replications behind each point (finite samples only).
        meta: free-form per-curve provenance.  Degraded sweeps record
            ``meta["coverage"]`` — the per-point fraction of scheduled
            replications that produced a finite sample (1.0 everywhere for a
            clean run).  Excluded from equality comparisons.
    """

    label: str
    counts: tuple[int, ...]
    densities: tuple[float, ...]
    values: tuple[float, ...]
    ci_half_widths: tuple[float, ...]
    num_samples: tuple[int, ...]
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        lengths = {
            len(self.counts),
            len(self.densities),
            len(self.values),
            len(self.ci_half_widths),
            len(self.num_samples),
        }
        if len(lengths) != 1:
            raise ValueError(f"curve field lengths disagree: {lengths}")

    def __len__(self) -> int:
        return len(self.values)

    def coverage_densities(self, radio_range: float) -> tuple[float, ...]:
        """The paper's secondary x axis: beacons per ``π R²``."""
        area = math.pi * radio_range**2
        return tuple(d * area for d in self.densities)

    def values_as_range_fraction(self, radio_range: float) -> tuple[float, ...]:
        """The paper's secondary y axis: error as a fraction of R."""
        return tuple(v / radio_range for v in self.values)

    def value_at_count(self, count: int) -> float:
        """The point estimate at a given beacon count."""
        try:
            idx = self.counts.index(count)
        except ValueError:
            raise KeyError(f"count {count} not in curve (has {self.counts})") from None
        return self.values[idx]

    def coverage(self) -> tuple[float, ...]:
        """Per-point sample coverage (``meta["coverage"]``; 1.0 by default)."""
        stored = self.meta.get("coverage")
        if stored is None:
            return (1.0,) * len(self)
        return tuple(float(c) for c in stored)

    def as_rows(self) -> list[dict]:
        """Plain dict rows for CSV/tables."""
        return [
            {
                "label": self.label,
                "count": c,
                "density": d,
                "value": v,
                "ci_half_width": h,
                "num_samples": n,
                "coverage": g,
            }
            for c, d, v, h, n, g in zip(
                self.counts,
                self.densities,
                self.values,
                self.ci_half_widths,
                self.num_samples,
                self.coverage(),
            )
        ]

    @classmethod
    def from_samples(
        cls,
        label: str,
        counts,
        densities,
        samples_per_count,
        *,
        confidence: float = 0.95,
    ) -> "Curve":
        """Aggregate raw per-field samples into a curve.

        NaN samples mark replications that failed or were excluded (e.g. a
        sweep cell that exhausted its retries); they are dropped from the
        point estimate and the per-point coverage is recorded in
        ``meta["coverage"]``.  An all-NaN point degrades to a NaN value with
        zero samples rather than raising — a degraded sweep never silently
        drops a series.

        Args:
            label: series label.
            counts: beacon counts, one per sweep position.
            densities: matching densities.
            samples_per_count: iterable of 1-D sample arrays, one per count.
            confidence: CI level.
        """
        from ..stats import mean_ci  # local import to avoid a package cycle

        values, halves, ns, coverage = [], [], [], []
        for samples in samples_per_count:
            arr = np.asarray(samples, dtype=float)
            finite = int(np.count_nonzero(~np.isnan(arr)))
            coverage.append(finite / arr.size if arr.size else 0.0)
            if finite == 0:
                values.append(float("nan"))
                halves.append(float("nan"))
                ns.append(0)
                continue
            ci = mean_ci(arr, confidence)
            values.append(ci.value)
            halves.append(ci.half_width)
            ns.append(ci.n)
        return cls(
            label=label,
            counts=tuple(int(c) for c in counts),
            densities=tuple(float(d) for d in densities),
            values=tuple(values),
            ci_half_widths=tuple(halves),
            num_samples=tuple(ns),
            meta={"coverage": tuple(coverage)},
        )


@dataclass(frozen=True)
class TimeCurve:
    """One labelled error-vs-time series (a fault model under degradation).

    Attributes:
        label: series label (the fault model's name).
        times: snapshot times (seconds since deployment) at each x position,
            in the sweep's display order (monotone input not required).
        values: point estimates; NaN marks a time where no trial produced a
            usable sample (e.g. every beacon was down in every field).
        ci_low: lower bootstrap percentile bound per point (NaN with the
            value).
        ci_high: upper bootstrap percentile bound per point.
        num_samples: finite trials behind each point.
        meta: free-form provenance.  Timeline sweeps record
            ``meta["coverage"]`` (fraction of scheduled trials with a finite
            sample per point) and ``meta["alive_fraction"]`` (mean surviving
            beacon fraction per point).  Excluded from equality comparisons.
    """

    label: str
    times: tuple[float, ...]
    values: tuple[float, ...]
    ci_low: tuple[float, ...]
    ci_high: tuple[float, ...]
    num_samples: tuple[int, ...]
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        lengths = {
            len(self.times),
            len(self.values),
            len(self.ci_low),
            len(self.ci_high),
            len(self.num_samples),
        }
        if len(lengths) != 1:
            raise ValueError(f"time-curve field lengths disagree: {lengths}")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def ci_half_widths(self) -> tuple[float, ...]:
        """Symmetric half-widths ``(high − low) / 2`` for Curve-shaped consumers."""
        return tuple((hi - lo) / 2.0 for lo, hi in zip(self.ci_low, self.ci_high))

    def value_at_time(self, time: float) -> float:
        """The point estimate at a given snapshot time."""
        try:
            idx = self.times.index(float(time))
        except ValueError:
            raise KeyError(f"time {time} not in curve (has {self.times})") from None
        return self.values[idx]

    def coverage(self) -> tuple[float, ...]:
        """Per-point sample coverage (``meta["coverage"]``; 1.0 by default)."""
        stored = self.meta.get("coverage")
        if stored is None:
            return (1.0,) * len(self)
        return tuple(float(c) for c in stored)

    def alive_fraction(self) -> tuple[float, ...]:
        """Mean surviving beacon fraction per point (1.0 by default)."""
        stored = self.meta.get("alive_fraction")
        if stored is None:
            return (1.0,) * len(self)
        return tuple(float(a) for a in stored)

    def _time_ordered(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) sorted ascending in time (display order may differ)."""
        times = np.asarray(self.times)
        values = np.asarray(self.values)
        order = np.argsort(times, kind="stable")
        return times[order], values[order]

    def time_to_recover(self, threshold: float) -> float:
        """Duration from the first breach until service is back under ``threshold``.

        A *breach* is the first point (in time order) whose value exceeds
        ``threshold`` or is NaN (total outage); *recovery* is the first
        later point with a finite value at or below ``threshold``.

        Returns:
            ``recovery time − breach time`` in seconds; ``nan`` if the curve
            never breaches, ``inf`` if it breaches and never recovers — the
            three cases a controller-on/off comparison needs to distinguish.
        """
        times, values = self._time_ordered()
        breached = np.isnan(values) | (values > threshold)
        breach_idx = np.argmax(breached) if breached.any() else None
        if breach_idx is None:
            return float("nan")
        after = ~np.isnan(values) & (values <= threshold)
        after[: breach_idx + 1] = False
        if not after.any():
            return float("inf")
        return float(times[np.argmax(after)] - times[breach_idx])

    def area_under_degradation(self, baseline: float | None = None) -> float:
        """Trapezoid integral of excess error over the acceptable level.

        Integrates ``max(0, value − baseline)`` over time — the cumulative
        service-quality debt of a degradation episode; smaller is better,
        zero means the curve never rose above ``baseline``.  NaN points
        (total outage) carry no finite value and are excluded, so the
        metric understates episodes containing outages — compare it
        alongside :meth:`time_to_recover`, which treats NaN as breached.

        Args:
            baseline: the acceptable error level; defaults to the curve's
                first finite value in time order (degradation relative to
                the initial healthy state).

        Returns:
            Meter-seconds of excess error; NaN if the curve has fewer than
            two finite points.
        """
        times, values = self._time_ordered()
        finite = ~np.isnan(values)
        if finite.sum() < 2:
            return float("nan")
        times, values = times[finite], values[finite]
        if baseline is None:
            baseline = float(values[0])
        excess = np.maximum(values - baseline, 0.0)
        return float(np.trapezoid(excess, times))

    def as_rows(self) -> list[dict]:
        """Plain dict rows for CSV/tables."""
        return [
            {
                "label": self.label,
                "time": t,
                "value": v,
                "ci_low": lo,
                "ci_high": hi,
                "num_samples": n,
                "coverage": g,
                "alive_fraction": a,
            }
            for t, v, lo, hi, n, g, a in zip(
                self.times,
                self.values,
                self.ci_low,
                self.ci_high,
                self.num_samples,
                self.coverage(),
                self.alive_fraction(),
            )
        ]

    @classmethod
    def from_samples(
        cls,
        label: str,
        times,
        samples_per_time,
        *,
        confidence: float = 0.95,
        resamples: int = 500,
        rng_factory=None,
    ) -> "TimeCurve":
        """Aggregate per-trial samples into an error-vs-time curve.

        NaN samples mark trials that failed or were degraded (every beacon
        down); they are dropped from the point estimate and the per-point
        coverage lands in ``meta["coverage"]``.  An all-NaN point degrades
        to a NaN value with zero samples rather than raising.

        Args:
            label: series label.
            times: snapshot times, one per sweep position.
            samples_per_time: iterable of 1-D sample arrays, one per time.
            confidence: bootstrap interval coverage.
            resamples: bootstrap iterations per point.
            rng_factory: ``rng_factory(point_index) -> Generator`` supplying
                each point's bootstrap randomness.  Pass a seed-derived
                factory for reproducible intervals (timeline sweeps do); a
                fresh default generator is drawn per point if omitted.
        """
        from ..stats import bootstrap_ci  # local import to avoid a package cycle

        values, lows, highs, ns, coverage = [], [], [], [], []
        for i, samples in enumerate(samples_per_time):
            arr = np.asarray(samples, dtype=float)
            finite = int(np.count_nonzero(~np.isnan(arr)))
            coverage.append(finite / arr.size if arr.size else 0.0)
            if finite == 0:
                values.append(float("nan"))
                lows.append(float("nan"))
                highs.append(float("nan"))
                ns.append(0)
                continue
            rng = rng_factory(i) if rng_factory is not None else np.random.default_rng()
            ci = bootstrap_ci(
                arr, confidence=confidence, resamples=resamples, rng=rng
            )
            values.append(ci.value)
            lows.append(ci.low)
            highs.append(ci.high)
            ns.append(finite)
        return cls(
            label=label,
            times=tuple(float(t) for t in times),
            values=tuple(values),
            ci_low=tuple(lows),
            ci_high=tuple(highs),
            num_samples=tuple(ns),
            meta={"coverage": tuple(coverage)},
        )


@dataclass
class CurveSet:
    """A named family of curves sharing one x axis (one paper figure).

    Attributes:
        title: figure title.
        curves: the series, in display order.
        meta: free-form provenance (config fidelity, noise level, …).
    """

    title: str
    curves: list[Curve]
    meta: dict = field(default_factory=dict)

    def curve(self, label: str) -> Curve:
        """Look up a series by label."""
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(f"no curve labelled {label!r} in {self.title!r}")

    def labels(self) -> list[str]:
        """All series labels, in order."""
        return [c.label for c in self.curves]

    def as_rows(self) -> list[dict]:
        """All series flattened to dict rows."""
        rows = []
        for c in self.curves:
            rows.extend(c.as_rows())
        return rows
