"""Single placement trials: one world, one survey, one added beacon.

:class:`TrialWorld` bundles everything one simulated deployment consists of
— the beacon field, the (static) propagation realization, the measurement
lattice, the overlapping-grid layout and the localizer — and owns the two
operations every experiment is built from:

* :meth:`TrialWorld.survey` — the complete, noise-free terrain survey of
  §3.1 (the error surface over the lattice), and
* :meth:`TrialWorld.evaluate_candidate` — the counterfactual: what would the
  mean/median error become if a beacon were added at a given point?

Candidate evaluation is the hot loop of every figure.  For the paper's
centroid localizer it runs incrementally: the world caches the per-point
connected-coordinate sums (:class:`~repro.localization.CentroidState`), so a
candidate costs one ``(P,)`` connectivity column plus O(P) arithmetic — not
a fresh ``(P × N)`` pass.  Non-centroid localizers fall back to a full
re-estimate, trading speed for generality.

:func:`run_placement_trial` glues it together for a set of algorithms
sharing one world, exactly like the paper evaluates Random/Max/Grid on the
same 1000 fields.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exploration import Survey
from ..field import Beacon, BeaconField
from ..geometry import (
    MeasurementGrid,
    OverlappingGridLayout,
    Point,
    as_point,
)
from ..localization import (
    CentroidLocalizer,
    CentroidState,
    ErrorSurface,
    Localizer,
    localization_errors,
)
from ..obs import get_metrics, get_profile, get_tracer
from ..placement import PlacementAlgorithm
from ..radio import PropagationRealization

__all__ = ["TrialWorld", "TrialOutcome", "run_placement_trial"]


@dataclass(frozen=True)
class TrialOutcome:
    """Result of adding one beacon with one algorithm on one world.

    Attributes:
        algorithm: the placement algorithm's name.
        pick: where the beacon was placed.
        base_mean: mean LE before placement (meters).
        base_median: median LE before placement (meters).
        improvement_mean: §4.1 metric — mean LE before − after.
        improvement_median: §4.1 metric — median LE before − after.
    """

    algorithm: str
    pick: Point
    base_mean: float
    base_median: float
    improvement_mean: float
    improvement_median: float


class TrialWorld:
    """One simulated deployment, with cached evaluation state.

    Args:
        field: the existing beacon field.
        realization: the static propagation world.
        grid: the measurement lattice.
        layout: the overlapping-grid decomposition (for Grid/Oracle).
        localizer: the localization algorithm under study.
    """

    def __init__(
        self,
        field: BeaconField,
        realization: PropagationRealization,
        grid: MeasurementGrid,
        layout: OverlappingGridLayout,
        localizer: Localizer,
    ):
        self.field = field
        self.realization = realization
        self.grid = grid
        self.layout = layout
        self.localizer = localizer
        self._conn: np.ndarray | None = None
        self._state: CentroidState | None = None
        self._errors: np.ndarray | None = None

    # -- Basic views --------------------------------------------------------

    @property
    def terrain_side(self) -> float:
        """Side of the terrain square."""
        return self.grid.side

    def points(self) -> np.ndarray:
        """The measurement lattice points ``(P_T, 2)``."""
        return self.grid.points()

    def connectivity(self) -> np.ndarray:
        """Cached ``(P_T, N)`` connectivity of the current field."""
        if self._conn is None:
            with get_profile().section("world.connectivity"):
                self._conn = self.realization.connectivity(self.points(), self.field)
        return self._conn

    def prewarm(
        self,
        *,
        conn: np.ndarray | None = None,
        state: CentroidState | None = None,
        errors: np.ndarray | None = None,
    ) -> None:
        """Fill the evaluation caches with externally computed values.

        The batched kernels (:mod:`repro.sim.kernels`) evaluate many worlds
        in one array pass and hand each world its slice here; afterwards
        :meth:`connectivity`, :meth:`errors` and the candidate counterfactuals
        are cache hits.  Callers own the bit-identity contract: the supplied
        arrays must equal what the world would have computed itself.
        """
        if conn is not None:
            self._conn = conn
        if state is not None:
            self._state = state
        if errors is not None:
            self._errors = errors

    # -- Error evaluation ----------------------------------------------------

    def _centroid_state(self) -> CentroidState:
        if self._state is None:
            self._state = CentroidState.from_connectivity(
                self.connectivity(), self.field.positions()
            )
        return self._state

    def _errors_for_state(self, state: CentroidState, positions: np.ndarray) -> np.ndarray:
        localizer = self.localizer
        estimates = state.estimates(
            localizer.policy,
            points=self.points(),
            beacon_positions=positions,
            terrain_side=localizer.terrain_side,
        )
        return localization_errors(estimates, self.points())

    def errors(self) -> np.ndarray:
        """Per-lattice-point localization error of the current field."""
        if self._errors is None:
            if isinstance(self.localizer, CentroidLocalizer):
                self._errors = self._errors_for_state(
                    self._centroid_state(), self.field.positions()
                )
            else:
                estimates = self.localizer.estimate(
                    self.connectivity(), self.field.positions(), self.points()
                )
                self._errors = localization_errors(estimates, self.points())
        return self._errors

    def error_surface(self) -> ErrorSurface:
        """The error field as an :class:`~repro.localization.ErrorSurface`."""
        return ErrorSurface(self.grid, self.errors())

    def survey(self) -> Survey:
        """The paper's complete, noise-free survey of this world."""
        return Survey.from_error_surface(self.error_surface())

    def base_stats(self) -> tuple[float, float]:
        """(mean, median) LE of the current field."""
        surface = self.error_surface()
        return surface.mean_error(), surface.median_error()

    # -- Counterfactuals -----------------------------------------------------

    def candidate_column(self, position) -> np.ndarray:
        """Connectivity column a beacon at ``position`` would have, ``(P_T,)``.

        The candidate is evaluated under the id it would actually receive
        (``field.next_beacon_id``), so the chosen candidate's noise is
        identical when the beacon is really added.
        """
        p = as_point(position)
        candidate = Beacon(self.field.next_beacon_id, p)
        return self.realization.connectivity(self.points(), [candidate])[:, 0]

    def errors_with_candidate(self, position) -> np.ndarray:
        """Per-point LE if a beacon were added at ``position`` (no mutation)."""
        p = as_point(position)
        column = self.candidate_column(p)
        if isinstance(self.localizer, CentroidLocalizer):
            state = self._centroid_state().with_beacon(column, p)
            positions = np.vstack([self.field.positions(), [p.as_array()]])
            return self._errors_for_state(state, positions)
        extended = self.field.with_beacon_at(p)
        conn = np.column_stack([self.connectivity(), column])
        estimates = self.localizer.estimate(conn, extended.positions(), self.points())
        return localization_errors(estimates, self.points())

    def evaluate_candidate(self, position) -> tuple[float, float]:
        """§4.1 improvement metrics for a candidate beacon at ``position``.

        Returns:
            ``(improvement_in_mean, improvement_in_median)`` — before minus
            after; positive is better.
        """
        base_mean, base_median = self.base_stats()
        after = ErrorSurface(self.grid, self.errors_with_candidate(position))
        return base_mean - after.mean_error(), base_median - after.median_error()

    def with_beacon(self, position) -> "TrialWorld":
        """A new world with the beacon actually deployed (caches reused)."""
        p = as_point(position)
        column = self.candidate_column(p)
        new_world = TrialWorld(
            self.field.with_beacon_at(p),
            self.realization,
            self.grid,
            self.layout,
            self.localizer,
        )
        if self._conn is not None:
            new_world._conn = np.column_stack([self._conn, column])
        if self._state is not None and isinstance(self.localizer, CentroidLocalizer):
            new_world._state = self._state.with_beacon(column, p)
        return new_world


def run_placement_trial(
    world: TrialWorld,
    algorithms: "list[PlacementAlgorithm]",
    rng_for: "callable",
) -> list[TrialOutcome]:
    """Evaluate several placement algorithms on one shared world.

    Args:
        world: the deployment under study; its survey is computed once and
            shared (all algorithms see identical measurements, as in §4.1).
        algorithms: the algorithms to compare.
        rng_for: ``rng_for(algorithm_name) -> Generator`` supplying each
            algorithm an independent decision stream.

    Returns:
        One :class:`TrialOutcome` per algorithm, in input order.
    """
    profile = get_profile()
    tracer = get_tracer()
    metrics = get_metrics()
    with profile.section("trial.survey"), tracer.span("trial.survey"):
        survey = world.survey()
        base_mean, base_median = world.base_stats()
    outcomes = []
    for algorithm in algorithms:
        rng = rng_for(algorithm.name)
        with profile.section("placement.propose"), \
                tracer.span("placement.propose", algorithm=algorithm.name), \
                metrics.histogram(f"placement.propose.seconds.{algorithm.name}").time():
            pick = algorithm.propose(
                survey, rng, world if algorithm.requires_world else None
            )
        with profile.section("placement.evaluate"), \
                tracer.span("placement.evaluate", algorithm=algorithm.name):
            gain_mean, gain_median = world.evaluate_candidate(pick)
        metrics.counter("placement.proposals").inc()
        outcomes.append(
            TrialOutcome(
                algorithm=algorithm.name,
                pick=pick,
                base_mean=base_mean,
                base_median=base_median,
                improvement_mean=gain_mean,
                improvement_median=gain_median,
            )
        )
    return outcomes
