"""Density/noise sweeps — the §4 evaluation methodology, end to end.

For every (beacon count, noise) cell the paper generates 1000 uniform-random
fields, runs each placement algorithm on every field, and reports means with
95 % confidence intervals.  These drivers reproduce that pipeline:

* :func:`build_world` — the (count, noise, field-index) → world mapping, a
  pure function of the config seed so any slice of the sweep is reproducible
  in isolation;
* :func:`mean_error_curve` — mean LE vs density (Figures 4 and 6);
* :func:`placement_improvement_curves` — improvement in mean/median error vs
  density for a set of algorithms (Figures 5, 7, 8, 9).

Fields are shared across algorithms within a cell (as in the paper) and the
field *geometry* is shared across noise levels (a variance-reduction choice
the paper doesn't specify; it only sharpens the noise comparisons).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..faults import FaultModel, apply_faults
from ..field import random_uniform_field
from ..obs import get_metrics, get_profile, get_tracer
from ..placement import PlacementAlgorithm
from ..radio import BeaconNoiseModel, PropagationModel
from .config import ExperimentConfig
from .executors.cache import (
    cached_field,
    cached_grid,
    cached_layout,
    cached_localizer,
    cached_realization,
)
from .results import Curve, CurveSet
from .rng import derive_rng
from .trial import TrialOutcome, TrialWorld, run_placement_trial

__all__ = [
    "build_world",
    "mean_error_curve",
    "placement_improvement_curves",
    "default_model_factory",
]

ProgressFn = Callable[[str], None]


def default_model_factory(config: ExperimentConfig) -> Callable[[float], PropagationModel]:
    """The paper's model family: beacon-noise with the config's range."""

    def factory(noise: float) -> PropagationModel:
        return BeaconNoiseModel(config.radio_range, noise, cm_thresh=config.cm_thresh)

    return factory


def build_world(
    config: ExperimentConfig,
    noise: float,
    num_beacons: int,
    field_index: int,
    *,
    model_factory: Callable[[float], PropagationModel] | None = None,
    localizer=None,
    faults: FaultModel | None = None,
    fault_time: float = 0.0,
) -> TrialWorld:
    """The deterministic world for one cell replication.

    The beacon field depends only on ``(seed, count, field_index)`` — *not*
    on noise — so noise levels are compared on identical geometry.  The
    propagation realization depends on all of ``(seed, noise, count,
    field_index)``.

    With ``faults`` set, the field is snapshotted at ``fault_time`` through
    a fault realization derived from ``(seed, count, field_index)`` — the
    same degraded world regardless of noise level or which sweep slice runs
    it.  Surviving beacons keep their ids, so their propagation links are
    identical to the pristine world's.
    """
    with get_profile().section("world.build"):
        get_metrics().counter("sweep.worlds_built").inc()

        def build_field():
            field_rng = derive_rng(config.seed, "field", num_beacons, field_index)
            return random_uniform_field(num_beacons, config.side, field_rng)

        # Fields and realizations are immutable pure functions of their
        # substream identity — cache hits replay the exact object a fresh
        # derivation would produce (reuse across noise levels, fault times
        # and retries).
        field = cached_field(
            (config.seed, num_beacons, field_index, config.side), build_field
        )
        if faults is not None:
            fault_rng = derive_rng(config.seed, "faults", num_beacons, field_index)
            field = apply_faults(field, faults.realize(fault_rng), fault_time).field

        def build_realization():
            factory = default_model_factory(config) if model_factory is None else model_factory
            world_rng = derive_rng(config.seed, "world", noise, num_beacons, field_index)
            return factory(noise).realize(world_rng)

        if model_factory is None:
            realization = cached_realization(
                (
                    config.seed,
                    noise,
                    num_beacons,
                    field_index,
                    config.radio_range,
                    config.cm_thresh,
                ),
                build_realization,
            )
        else:
            # Custom model families are not identifiable by config constants;
            # realize them fresh rather than risk a stale cache hit.
            realization = build_realization()
        # Lattice, layout and localizer depend only on config constants;
        # the process-local cache builds them once per worker instead of
        # once per cell (all three are frozen/immutable, so sharing them
        # across cells cannot change results).
        if localizer is None:
            localizer = cached_localizer(config.side, config.policy)
        return TrialWorld(
            field=field,
            realization=realization,
            grid=cached_grid(config.side, config.step),
            layout=cached_layout(config.side, config.radio_range, config.num_grids),
            localizer=localizer,
        )


def mean_error_curve(
    config: ExperimentConfig,
    noise: float,
    *,
    label: str | None = None,
    model_factory: Callable[[float], PropagationModel] | None = None,
    progress: ProgressFn | None = None,
) -> Curve:
    """Mean localization error vs beacon density (Figures 4 and 6).

    Args:
        config: experiment parameters (counts, replications, seed …).
        noise: the model's noise level for every cell.
        label: series label; defaults to ``"Noise=x"`` / ``"Ideal"``.
        model_factory: override the propagation family (ablations).
        progress: optional per-density progress callback.
    """
    if label is None:
        label = "Ideal" if noise == 0.0 else f"Noise={noise:g}"
    tracer = get_tracer()
    cell_seconds = get_metrics().histogram("sweep.cell.seconds")
    samples_per_count = []
    for count in config.beacon_counts:
        samples = np.empty(config.fields_per_density)
        for i in range(config.fields_per_density):
            with tracer.span("sweep.cell", noise=noise, count=count, index=i), \
                    cell_seconds.time():
                world = build_world(
                    config, noise, count, i, model_factory=model_factory
                )
                samples[i] = world.error_surface().mean_error()
        samples_per_count.append(samples)
        if progress is not None:
            progress(f"{label}: count={count} mean={samples.mean():.2f} m")
    return Curve.from_samples(
        label,
        config.beacon_counts,
        config.densities(),
        samples_per_count,
        confidence=config.confidence,
    )


def placement_improvement_curves(
    config: ExperimentConfig,
    noise: float,
    algorithms: Sequence[PlacementAlgorithm],
    *,
    model_factory: Callable[[float], PropagationModel] | None = None,
    progress: ProgressFn | None = None,
) -> tuple[CurveSet, CurveSet]:
    """Improvement in mean and median error vs density (Figures 5, 7–9).

    Every algorithm sees the same worlds and the same surveys; each draws
    decisions from its own named RNG substream.

    Returns:
        ``(mean_improvements, median_improvements)`` — two curve sets with
        one series per algorithm.
    """
    names = [a.name for a in algorithms]
    if len(set(names)) != len(names):
        raise ValueError(f"algorithm names must be unique, got {names}")

    tracer = get_tracer()
    cell_seconds = get_metrics().histogram("sweep.cell.seconds")
    mean_samples = {n: [] for n in names}
    median_samples = {n: [] for n in names}
    for count in config.beacon_counts:
        cell_mean = {n: np.empty(config.fields_per_density) for n in names}
        cell_median = {n: np.empty(config.fields_per_density) for n in names}
        for i in range(config.fields_per_density):
            with tracer.span("sweep.cell", noise=noise, count=count, index=i), \
                    cell_seconds.time():
                world = build_world(
                    config, noise, count, i, model_factory=model_factory
                )

                def rng_for(alg_name: str, _i=i, _count=count):
                    return derive_rng(config.seed, "alg", alg_name, noise, _count, _i)

                outcomes: list[TrialOutcome] = run_placement_trial(
                    world, list(algorithms), rng_for
                )
            for outcome in outcomes:
                cell_mean[outcome.algorithm][i] = outcome.improvement_mean
                cell_median[outcome.algorithm][i] = outcome.improvement_median
        for n in names:
            mean_samples[n].append(cell_mean[n])
            median_samples[n].append(cell_median[n])
        if progress is not None:
            gains = ", ".join(f"{n}={cell_mean[n].mean():.3f}" for n in names)
            progress(f"noise={noise:g} count={count}: mean gains {gains} m")

    def to_set(samples: dict, metric: str) -> CurveSet:
        curves = [
            Curve.from_samples(
                n,
                config.beacon_counts,
                config.densities(),
                samples[n],
                confidence=config.confidence,
            )
            for n in names
        ]
        return CurveSet(
            title=f"Improvement in {metric} error (noise={noise:g})",
            curves=curves,
            meta={
                "noise": noise,
                "fields_per_density": config.fields_per_density,
                "metric": metric,
            },
        )

    return to_set(mean_samples, "mean"), to_set(median_samples, "median")
