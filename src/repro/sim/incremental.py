"""Incremental LE delta-engine: O(affected-region) beacon add/remove/move.

Every candidate scan in the placement loop — Max/Grid refinement, the
fault-aware variants, greedy-k, the selfheal repair search — asks the same
question over and over: *what does the expected-LE field become if this one
beacon appears / disappears / moves?*  Answering it by rebuilding a
:class:`~repro.sim.TrialWorld` pays the full O(P·N) per-link noise
evaluation (the hash-keyed connectivity of :mod:`repro.radio.hashrand`,
which dominates the build at paper fidelity) for a perturbation that only
touches one beacon's column.

:class:`FieldState` is the engine.  It holds the ``(P, N)`` connectivity of
the current field and applies :class:`AddBeacon` / :class:`RemoveBeacon` /
:class:`MoveBeacon` deltas by recomputing **only the affected beacon's
column** — the O(affected-region) part, since a beacon's column is exactly
its connectivity disk.  The localization stage downstream of connectivity
(one BLAS mat-vec plus elementwise policy/error arithmetic, ~2% of a full
build) is re-run whole rather than row-subset:

Bit-identity contract
---------------------
``state.apply(delta).errors()`` is **byte-identical** to
``FieldState.build(field_after_delta, …).errors()`` — and therefore to
``TrialWorld.errors()`` on the same field — for every supported localizer,
noise model and fault mask.  Two empirical facts (pinned by
``tests/test_sim_incremental.py``) make this work:

* connectivity is *column-subset invariant*: every per-link quantity
  (hash-keyed noise, the two-term distance, the threshold comparison) is
  elementwise over ``(P, N)``, so a beacon's column computed alone equals
  its slice of the full matrix, byte for byte;
* BLAS reductions are **not** row-subset invariant on this toolchain
  (``(W @ pos)[rows] != W[rows] @ pos`` in the last ulp for some rows), so
  the engine deliberately re-runs the cheap full-shape reduction on the
  incrementally maintained connectivity instead of patching rows of a
  cached result.

Non-centroid localizers have no incremental sum structure; the engine still
maintains their connectivity incrementally but falls back to a full
re-estimate for the error field, counting ``incremental.fallback.full`` —
never silently diverging.

:class:`FieldCache` adds the memoization layer: an LRU of expected-LE maps
keyed by :func:`field_fingerprint` — a canonical sha256 over the beacon
ids/positions, the realization's identity and the grid/localizer parameters
(same conventions as :func:`repro.sim.sweep_fingerprint`).  The cache is
process-local by design: spawn-pool workers build their own (they must not
silently share driver-side state), which ``tests/test_sim_incremental.py``
pins.

Observability: every delta bumps ``sweep.delta_applied`` inside an
``incremental.delta`` span, and full builds run under
``incremental.full_build`` — ``beaconplace obs --tree`` shows the
delta-vs-rebuild time split.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from ..exploration import Survey
from ..field import Beacon, BeaconField
from ..geometry import MeasurementGrid, Point, as_point, as_point_array
from ..localization import (
    CentroidLocalizer,
    CentroidState,
    ErrorSurface,
    Localizer,
    localization_errors,
)
from ..obs import get_metrics, get_tracer
from ..radio import PropagationRealization
from ..radio.kernels import batch_params_from_realization

__all__ = [
    "AddBeacon",
    "RemoveBeacon",
    "MoveBeacon",
    "FieldState",
    "FieldCache",
    "field_fingerprint",
    "expected_le_field",
    "default_field_cache",
    "scan_candidates",
]

#: Cap on the per-lineage column cache (re-adds of intermittent beacons hit
#: it; anything past this is a pathological churn pattern, evict oldest).
_MAX_CACHED_COLUMNS = 4096


@dataclass(frozen=True)
class AddBeacon:
    """Delta: deploy one new beacon at ``position``.

    The beacon receives the field's ``next_beacon_id`` — the same identity
    (and therefore the same static noise) it would get from
    :meth:`~repro.field.BeaconField.with_beacon_at`.
    """

    position: tuple

    def describe(self) -> str:
        return "add"


@dataclass(frozen=True)
class RemoveBeacon:
    """Delta: beacon ``beacon_id`` disappears (crash, battery, fault mask)."""

    beacon_id: int

    def describe(self) -> str:
        return "remove"


@dataclass(frozen=True)
class MoveBeacon:
    """Delta: beacon ``beacon_id`` relocates to ``position`` (drift, redeploy)."""

    beacon_id: int
    position: tuple

    def describe(self) -> str:
        return "move"


class FieldState:
    """The incrementally maintained expected-LE state of one beacon field.

    Duck-types the world protocol placement algorithms consume
    (``field``/``realization``/``grid``/``points()``/``connectivity()``/
    ``errors()``/``survey()``/``evaluate_candidate()``/``with_beacon()`` —
    see :class:`~repro.sim.TrialWorld`), so it drops into
    ``requires_world`` algorithms and the selfheal controller unchanged.

    Args:
        field: the current beacon field.
        realization: the static propagation world.
        grid: the measurement lattice.
        layout: optional overlapping-grid decomposition (forwarded to
            algorithms that need it; not used by the engine itself).
        localizer: the localization algorithm under study.
        conn: optional pre-assembled ``(P, N)`` connectivity.  Callers own
            the bit-identity contract: it must equal what
            ``realization.connectivity(grid.points(), field)`` computes.
    """

    def __init__(
        self,
        field: BeaconField,
        realization: PropagationRealization,
        grid: MeasurementGrid,
        layout=None,
        localizer: Localizer | None = None,
        *,
        conn: np.ndarray | None = None,
        column_cache: dict | None = None,
    ):
        if localizer is None:
            raise ValueError("FieldState needs a localizer")
        self.field = field
        self.realization = realization
        self.grid = grid
        self.layout = layout
        self.localizer = localizer
        self._conn = conn
        self._state: CentroidState | None = None
        self._errors: np.ndarray | None = None
        # Shared across the delta lineage: columns depend only on
        # (beacon id, position), never on the rest of the field.
        self._columns: dict = {} if column_cache is None else column_cache

    # -- Construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        field: BeaconField,
        realization: PropagationRealization,
        grid: MeasurementGrid,
        layout=None,
        localizer: Localizer | None = None,
    ) -> "FieldState":
        """Full canonical build — the reference every delta chain must match."""
        state = cls(field, realization, grid, layout, localizer)
        state.connectivity()
        return state

    @classmethod
    def from_world(cls, world) -> "FieldState":
        """Adopt a :class:`~repro.sim.TrialWorld` (its warm caches included).

        Only the connectivity cache is adopted — it is bit-identical by the
        world's own contract.  The error field is re-derived so a world
        whose state came from stacked :meth:`CentroidState.with_beacon`
        updates (ulp-level drift) cannot leak into the engine's contract.
        """
        state = cls(
            world.field,
            world.realization,
            world.grid,
            getattr(world, "layout", None),
            world.localizer,
            conn=world.connectivity(),
        )
        return state

    # -- World protocol ------------------------------------------------------

    @property
    def terrain_side(self) -> float:
        """Side of the terrain square."""
        return self.grid.side

    def points(self) -> np.ndarray:
        """The measurement lattice points ``(P, 2)``."""
        return self.grid.points()

    def connectivity(self) -> np.ndarray:
        """The current ``(P, N)`` connectivity (full build on first touch)."""
        if self._conn is None:
            metrics = get_metrics()
            metrics.counter("incremental.full_builds").inc()
            with get_tracer().span(
                "incremental.full_build", beacons=len(self.field)
            ):
                self._conn = self.realization.connectivity(
                    self.points(), self.field
                )
        return self._conn

    def _localize(self) -> None:
        conn = self.connectivity()
        positions = self.field.positions()
        pts = self.points()
        localizer = self.localizer
        if isinstance(localizer, CentroidLocalizer):
            self._state = CentroidState.from_connectivity(conn, positions)
            estimates = self._state.estimates(
                localizer.policy,
                points=pts,
                beacon_positions=positions,
                terrain_side=localizer.terrain_side,
            )
        else:
            # Non-subtractable localizer: connectivity is still maintained
            # incrementally, but the error field needs a full re-estimate.
            get_metrics().counter("incremental.fallback.full").inc()
            estimates = localizer.estimate(conn, positions, pts)
        self._errors = localization_errors(estimates, pts)

    def errors(self) -> np.ndarray:
        """Per-lattice-point LE of the current field (bit-identical to
        :meth:`TrialWorld.errors` on the same field)."""
        if self._errors is None:
            self._localize()
        return self._errors

    def centroid_state(self) -> CentroidState:
        """The per-point connected-sum/count arrays (centroid localizer only)."""
        if self._state is None:
            self.errors()
        if self._state is None:
            raise TypeError(
                f"{type(self.localizer).__name__} has no centroid state "
                "(non-subtractable localizer)"
            )
        return self._state

    def error_surface(self) -> ErrorSurface:
        """The error field as an :class:`~repro.localization.ErrorSurface`."""
        return ErrorSurface(self.grid, self.errors())

    def survey(self) -> Survey:
        """The complete, noise-free survey of this field."""
        return Survey.from_error_surface(self.error_surface())

    def base_stats(self) -> tuple[float, float]:
        """(mean, median) LE of the current field."""
        surface = self.error_surface()
        return surface.mean_error(), surface.median_error()

    # -- Columns -------------------------------------------------------------

    def _column_for(self, beacon_id: int, position: Point) -> np.ndarray:
        """The ``(P,)`` connectivity column of one beacon, cached by identity.

        Column-subset invariance (module docstring) makes this value
        byte-identical to the corresponding slice of any full connectivity
        matrix containing the beacon, so cached columns are safe to splice.
        """
        key = (int(beacon_id), float(position.x), float(position.y))
        cached = self._columns.get(key)
        metrics = get_metrics()
        if cached is not None:
            metrics.counter("incremental.column.hits").inc()
            return cached
        metrics.counter("incremental.column.misses").inc()
        column = self.realization.connectivity(
            self.points(), [Beacon(int(beacon_id), position)]
        )[:, 0]
        column.setflags(write=False)
        if len(self._columns) >= _MAX_CACHED_COLUMNS:
            del self._columns[next(iter(self._columns))]
        self._columns[key] = column
        return column

    def candidate_column(self, position) -> np.ndarray:
        """Connectivity column a beacon at ``position`` would have, ``(P,)``."""
        return self._column_for(self.field.next_beacon_id, as_point(position))

    # -- Deltas --------------------------------------------------------------

    def _index_of(self, beacon_id: int) -> int:
        try:
            return self.field.beacon_ids.index(int(beacon_id))
        except ValueError:
            raise KeyError(f"beacon id {beacon_id} not in field") from None

    def apply(self, delta) -> "FieldState":
        """A new state with one delta applied — the input state untouched.

        Only the affected beacon's connectivity column is (re)computed; the
        remaining columns are spliced from the current matrix.  The error
        field re-derives lazily from the new connectivity through the same
        arithmetic a full build runs, which is what makes the result
        byte-identical to a fresh :meth:`build` of the resulting field.
        """
        metrics = get_metrics()
        with get_tracer().span("incremental.delta", kind=delta.describe()):
            metrics.counter("sweep.delta_applied").inc()
            conn = self.connectivity()
            if isinstance(delta, AddBeacon):
                p = as_point(delta.position)
                column = self._column_for(self.field.next_beacon_id, p)
                new_field = self.field.with_beacon_at(p)
                new_conn = np.column_stack([conn, column])
            elif isinstance(delta, RemoveBeacon):
                idx = self._index_of(delta.beacon_id)
                beacons = list(self.field.beacons)
                del beacons[idx]
                new_field = BeaconField(
                    beacons, next_id=self.field.next_beacon_id
                )
                new_conn = np.ascontiguousarray(np.delete(conn, idx, axis=1))
            elif isinstance(delta, MoveBeacon):
                idx = self._index_of(delta.beacon_id)
                p = as_point(delta.position)
                column = self._column_for(delta.beacon_id, p)
                beacons = list(self.field.beacons)
                beacons[idx] = Beacon(int(delta.beacon_id), p)
                new_field = BeaconField(
                    beacons, next_id=self.field.next_beacon_id
                )
                new_conn = conn.copy()
                new_conn[:, idx] = column
            else:
                raise TypeError(f"unknown delta {delta!r}")
        return FieldState(
            new_field,
            self.realization,
            self.grid,
            self.layout,
            self.localizer,
            conn=new_conn,
            column_cache=self._columns,
        )

    def apply_many(self, deltas) -> "FieldState":
        """Fold several deltas left to right."""
        state = self
        for delta in deltas:
            state = state.apply(delta)
        return state

    def advance_to(self, new_field: BeaconField) -> "FieldState":
        """Jump to an arbitrary target field, reusing every unchanged column.

        The workhorse of the selfheal controller: successive fault-timeline
        snapshots differ by a few dead/revived/drifted beacons, so the walk
        pays per-link noise evaluation only for the columns that actually
        changed.  Ids are matched exactly and positions byte-compared, so a
        drifted beacon (same id, new coordinates) recomputes while an
        untouched survivor splices.
        """
        metrics = get_metrics()
        with get_tracer().span(
            "incremental.delta", kind="advance", beacons=len(new_field)
        ):
            metrics.counter("sweep.delta_applied").inc()
            conn = self.connectivity()
            old_index = {
                beacon_id: i for i, beacon_id in enumerate(self.field.beacon_ids)
            }
            old_positions = self.field.positions()
            columns = []
            reused = 0
            for beacon_id, position in zip(
                new_field.beacon_ids, new_field.positions()
            ):
                i = old_index.get(beacon_id)
                if i is not None and np.array_equal(old_positions[i], position):
                    columns.append(conn[:, i])
                    reused += 1
                else:
                    columns.append(
                        self._column_for(
                            beacon_id, Point(float(position[0]), float(position[1]))
                        )
                    )
            if columns:
                new_conn = np.column_stack(columns)
            else:
                new_conn = np.zeros((self.points().shape[0], 0), dtype=bool)
            metrics.counter("incremental.columns.reused").inc(reused)
            metrics.counter("incremental.columns.recomputed").inc(
                len(columns) - reused
            )
        return FieldState(
            new_field,
            self.realization,
            self.grid,
            self.layout,
            self.localizer,
            conn=new_conn,
            column_cache=self._columns,
        )

    def with_beacon(self, position) -> "FieldState":
        """A new state with the beacon deployed (world-protocol spelling)."""
        p = as_point(position)
        return self.apply(AddBeacon((float(p.x), float(p.y))))

    # -- Counterfactuals -----------------------------------------------------

    def peek_add_errors(self, position) -> np.ndarray:
        """Per-point LE if a beacon were added at ``position`` (no mutation).

        For the centroid localizer this is the O(P) peek — bit-identical to
        :meth:`TrialWorld.errors_with_candidate` (same ``with_beacon``
        arithmetic); it can differ from ``apply(AddBeacon(...)).errors()``
        in the last ulp because the committed path re-derives the sums from
        connectivity.  Non-subtractable localizers fall back to a full
        re-estimate with the candidate column stacked on.
        """
        p = as_point(position)
        column = self.candidate_column(p)
        pts = self.points()
        if isinstance(self.localizer, CentroidLocalizer):
            state = self.centroid_state().with_beacon(column, p)
            positions = np.vstack([self.field.positions(), [p.as_array()]])
            estimates = state.estimates(
                self.localizer.policy,
                points=pts,
                beacon_positions=positions,
                terrain_side=self.localizer.terrain_side,
            )
            return localization_errors(estimates, pts)
        get_metrics().counter("incremental.fallback.full").inc()
        extended = self.field.with_beacon_at(p)
        conn = np.column_stack([self.connectivity(), column])
        estimates = self.localizer.estimate(conn, extended.positions(), pts)
        return localization_errors(estimates, pts)

    # World-protocol alias (TrialWorld spelling).
    errors_with_candidate = peek_add_errors

    def evaluate_candidate(self, position) -> tuple[float, float]:
        """§4.1 improvement metrics for a candidate beacon at ``position``."""
        base_mean, base_median = self.base_stats()
        after = ErrorSurface(self.grid, self.peek_add_errors(position))
        return base_mean - after.mean_error(), base_median - after.median_error()

    def scan_add_candidates(self, positions, *, chunk: int = 256) -> np.ndarray:
        """Mean LE after adding a beacon at each candidate, ``(K,)``.

        One batched connectivity pass per ``chunk`` candidates (each column
        is byte-identical to :meth:`candidate_column` — all candidates
        evaluate under the id the added beacon would actually receive) plus
        an O(P) peek per candidate.  This is the engine's survey-scan
        primitive: one base field + K cheap deltas instead of K rebuilds.
        """
        candidates = as_point_array(positions)
        means = np.empty(candidates.shape[0])
        pts = self.points()
        centroid = isinstance(self.localizer, CentroidLocalizer)
        if centroid:
            base = self.centroid_state()
        else:
            get_metrics().counter("incremental.fallback.full").inc(
                candidates.shape[0]
            )
        candidate_id = self.field.next_beacon_id
        metrics = get_metrics()
        with get_tracer().span(
            "incremental.scan", candidates=int(candidates.shape[0])
        ):
            from .kernels import candidate_columns

            for start in range(0, candidates.shape[0], chunk):
                block = candidates[start : start + chunk]
                columns = candidate_columns(
                    self.realization, pts, candidate_id, block
                )
                metrics.counter("incremental.scan.candidates").inc(
                    block.shape[0]
                )
                for j, (x, y) in enumerate(block):
                    p = Point(float(x), float(y))
                    column = columns[:, j]
                    if centroid:
                        state = base.with_beacon(column, p)
                        positions_after = np.vstack(
                            [self.field.positions(), [p.as_array()]]
                        )
                        estimates = state.estimates(
                            self.localizer.policy,
                            points=pts,
                            beacon_positions=positions_after,
                            terrain_side=self.localizer.terrain_side,
                        )
                    else:
                        extended = self.field.with_beacon_at(p)
                        conn = np.column_stack([self.connectivity(), column])
                        estimates = self.localizer.estimate(
                            conn, extended.positions(), pts
                        )
                    errors = localization_errors(estimates, pts)
                    means[start + j] = (
                        float("nan")
                        if np.all(np.isnan(errors))
                        else float(np.nanmean(errors))
                    )
        return means


def scan_candidates(world, positions) -> np.ndarray:
    """Mean LE after adding a beacon at each candidate position, ``(K,)``.

    Accepts either a :class:`FieldState` or any world implementing the
    :class:`~repro.sim.TrialWorld` protocol (adopted via
    :meth:`FieldState.from_world`).
    """
    state = world if isinstance(world, FieldState) else FieldState.from_world(world)
    return state.scan_add_candidates(positions)


# -- Fingerprint-keyed expected-LE cache --------------------------------------


def _realization_token(realization) -> list | None:
    """Canonical identity of a propagation realization, or None.

    Only realizations whose parameters are fully observable (currently the
    paper's :class:`~repro.radio.BeaconNoiseRealization` family, via
    :func:`repro.radio.kernels.batch_params_from_realization`) are
    fingerprintable; anything else is uncacheable rather than wrongly keyed.
    """
    params = batch_params_from_realization(realization)
    if params is None:
        return None
    return ["beacon-noise", int(realization.seed), list(params.key())]


def field_fingerprint(
    field: BeaconField,
    realization,
    grid: MeasurementGrid,
    localizer: Localizer,
) -> str | None:
    """Canonical identity of one expected-LE map, 16 hex chars (or None).

    Same conventions as :func:`repro.sim.sweep_fingerprint`: a sha256 over a
    JSON-canonical payload, stable across processes and machines.  The
    payload covers everything the error field depends on — beacon ids,
    position bytes, the realization's drawn identity, the lattice and the
    localizer's parameters.  Returns None when the realization (or the
    localizer) has no canonical form; callers must then skip the cache.
    """
    token = _realization_token(realization)
    if token is None:
        return None
    if isinstance(localizer, CentroidLocalizer):
        loc = [
            type(localizer).__name__,
            float(localizer.terrain_side),
            str(localizer.policy),
        ]
    else:
        return None
    payload = {
        "ids": [int(i) for i in field.beacon_ids],
        "positions": hashlib.sha256(
            np.ascontiguousarray(field.positions()).tobytes()
        ).hexdigest(),
        "realization": token,
        "grid": [float(grid.side), float(grid.step)],
        "localizer": loc,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


class FieldCache:
    """LRU cache of expected-LE maps keyed by the canonical field fingerprint.

    Process-local on purpose: spawn-pool workers each hold their own (a
    driver-side cache silently shared through fork/pickle would serve stale
    or double-counted entries).  Counters: ``cache.le_field.hits`` /
    ``misses`` / ``evictions`` / ``uncacheable``, visible through
    ``beaconplace obs``.

    Args:
        capacity: maximum number of cached error maps (each is one float64
            array of lattice size — ~80 kB at paper fidelity).
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def fingerprints(self) -> list[str]:
        """Cached keys, least- to most-recently used (for tests/inspection)."""
        return list(self._entries)

    def get(self, fingerprint: str) -> np.ndarray | None:
        """The cached error map for ``fingerprint``, refreshing recency."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            get_metrics().counter("cache.le_field.misses").inc()
            return None
        get_metrics().counter("cache.le_field.hits").inc()
        # LRU refresh: insertion order doubles as recency order.
        del self._entries[fingerprint]
        self._entries[fingerprint] = entry
        return entry

    def put(self, fingerprint: str, errors: np.ndarray) -> np.ndarray:
        """Insert (or refresh) one error map, evicting the stalest at capacity.

        Returns the stored (read-only) array, so callers can hand out the
        cached view immediately.
        """
        if fingerprint in self._entries:
            del self._entries[fingerprint]
        elif len(self._entries) >= self.capacity:
            del self._entries[next(iter(self._entries))]
            get_metrics().counter("cache.le_field.evictions").inc()
        value = np.asarray(errors).copy()
        value.setflags(write=False)
        self._entries[fingerprint] = value
        return value

    def clear(self) -> None:
        """Drop every entry (tests; config changes)."""
        self._entries.clear()


#: The process-default cache (one per worker process — see class docstring).
_default_cache = FieldCache()


def default_field_cache() -> FieldCache:
    """This process's default :class:`FieldCache`."""
    return _default_cache


def expected_le_field(
    field: BeaconField,
    realization,
    grid: MeasurementGrid,
    localizer: Localizer,
    *,
    cache: FieldCache | None = None,
) -> np.ndarray:
    """The expected-LE map of ``field``, served through the fingerprint cache.

    On a hit the stored (read-only) array returns without touching the
    radio model; on a miss the map builds through :class:`FieldState` and is
    cached.  Fields whose realization/localizer has no canonical
    fingerprint compute uncached (``cache.le_field.uncacheable``).
    """
    cache = _default_cache if cache is None else cache
    fingerprint = field_fingerprint(field, realization, grid, localizer)
    if fingerprint is None:
        get_metrics().counter("cache.le_field.uncacheable").inc()
        return FieldState.build(
            field, realization, grid, localizer=localizer
        ).errors()
    cached = cache.get(fingerprint)
    if cached is not None:
        return cached
    errors = FieldState.build(
        field, realization, grid, localizer=localizer
    ).errors()
    return cache.put(fingerprint, errors)


# -- Sweep cell (module-level: picklable for pool mode, importable by
# reference for socket workers) -----------------------------------------------


def _greedyk_cell(args) -> dict:
    """One ``beaconplace greedyk`` cell: greedy-k on one generated field.

    Returns a plain-JSON dict so every executor backend (serial, spawn
    pool, socket) can journal and ship it; bit-identical across backends
    because the engine scan is deterministic and the named RNG streams
    derive identically in every process.
    """
    config, noise, count, index, k, subsample = args
    from ..placement.greedy import GreedyKPlacement
    from .rng import derive_rng
    from .sweep import build_world

    algorithm = GreedyKPlacement(k=int(k), subsample=int(subsample))
    state = FieldState.from_world(build_world(config, noise, count, index))
    base_mean, _ = state.base_stats()
    rng = derive_rng(config.seed, "alg", algorithm.name, noise, count, index)
    picks = algorithm.plan(state.survey(), rng, state)
    final = state.apply_many(AddBeacon((p.x, p.y)) for p in picks)
    final_mean, _ = final.base_stats()
    return {
        "base_mean": float(base_mean),
        "final_mean": float(final_mean),
        "picks": [[float(p.x), float(p.y)] for p in picks],
    }
