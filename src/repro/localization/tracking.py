"""Mobile-client tracking on top of snapshot localization.

The paper's motivating applications are *context-aware*: nodes and users
move, and consume a stream of position fixes rather than one snapshot.  Raw
connectivity-centroid fixes are piecewise-constant (they jump only when the
heard set changes) and noisy at region boundaries; a tracking filter
exploits motion continuity to smooth them.

:class:`AlphaBetaTracker` is the classic constant-velocity alpha–beta
filter — the right tool at this information level (a Kalman filter adds
nothing when the measurement model is an unknown-shaped region centroid):

    residual = z_k − x̂_k⁻        (innovation against the prediction)
    x̂_k = x̂_k⁻ + α · residual
    v̂_k = v̂_k⁻ + (β / Δt) · residual

:func:`track_path` runs the whole pipeline: move a client along a path,
take a §2.2 fix at every step, filter, and report raw vs smoothed error —
the numbers behind "how well can these networks actually follow a moving
user?".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import as_point_array
from .base import Localizer
from .error import localization_errors

__all__ = ["AlphaBetaTracker", "TrackingResult", "track_path"]


class AlphaBetaTracker:
    """Constant-velocity alpha–beta filter over 2-D position fixes.

    Args:
        alpha: position-correction gain in (0, 1]; higher trusts the fixes.
        beta: velocity-correction gain in (0, alpha]; higher adapts speed
            estimates faster.
        dt: time between fixes (seconds).
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.1, dt: float = 1.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < beta <= alpha:
            raise ValueError(f"beta must be in (0, alpha], got {beta}")
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.dt = float(dt)
        self._position: np.ndarray | None = None
        self._velocity = np.zeros(2)

    @property
    def position(self) -> np.ndarray | None:
        """Current filtered position (None before the first fix)."""
        return None if self._position is None else self._position.copy()

    @property
    def velocity(self) -> np.ndarray:
        """Current velocity estimate (m/s)."""
        return self._velocity.copy()

    def reset(self) -> None:
        """Forget all state."""
        self._position = None
        self._velocity = np.zeros(2)

    def update(self, fix) -> np.ndarray:
        """Fold in one position fix; returns the smoothed position.

        NaN fixes (unlocalizable epochs under the EXCLUDE policy) coast on
        the motion model: the prediction is returned and velocity is kept.
        """
        z = as_point_array(fix)[0]
        if self._position is None:
            if np.isnan(z).any():
                raise ValueError("first fix must be finite to initialize the track")
            self._position = z.copy()
            return self.position
        predicted = self._position + self._velocity * self.dt
        if np.isnan(z).any():
            self._position = predicted
            return self.position
        residual = z - predicted
        self._position = predicted + self.alpha * residual
        self._velocity = self._velocity + (self.beta / self.dt) * residual
        return self.position

    def filter(self, fixes: np.ndarray) -> np.ndarray:
        """Filter a whole fix sequence, ``(T, 2)`` → ``(T, 2)``."""
        out = np.empty_like(np.asarray(fixes, dtype=float))
        for t, fix in enumerate(np.asarray(fixes, dtype=float)):
            out[t] = self.update(fix)
        return out


@dataclass(frozen=True)
class TrackingResult:
    """Raw vs smoothed tracking of one trajectory.

    Attributes:
        true_path: ``(T, 2)`` ground-truth positions.
        raw_fixes: ``(T, 2)`` snapshot localization estimates.
        smoothed: ``(T, 2)`` filtered estimates.
        raw_errors: per-step error of the raw fixes (meters).
        smoothed_errors: per-step error after filtering.
    """

    true_path: np.ndarray
    raw_fixes: np.ndarray
    smoothed: np.ndarray
    raw_errors: np.ndarray
    smoothed_errors: np.ndarray

    @property
    def raw_mean_error(self) -> float:
        """Mean raw fix error (meters)."""
        return float(np.nanmean(self.raw_errors))

    @property
    def smoothed_mean_error(self) -> float:
        """Mean filtered error (meters)."""
        return float(np.nanmean(self.smoothed_errors))

    @property
    def improvement(self) -> float:
        """Raw minus smoothed mean error (positive = filtering helped)."""
        return self.raw_mean_error - self.smoothed_mean_error


def track_path(
    path,
    field,
    realization,
    localizer: Localizer,
    *,
    tracker: AlphaBetaTracker | None = None,
) -> TrackingResult:
    """Track a client moving along ``path`` through the full §2.2 stack.

    Args:
        path: ``(T, 2)`` true positions at consecutive fix epochs.
        field: the beacon field.
        realization: the propagation world.
        localizer: snapshot localizer producing the raw fixes.
        tracker: filter instance (default: a fresh alpha–beta tracker).

    Returns:
        The :class:`TrackingResult`.
    """
    pts = as_point_array(path)
    if pts.shape[0] < 2:
        raise ValueError("path must contain at least two positions")
    if tracker is None:
        tracker = AlphaBetaTracker()
    conn = realization.connectivity(pts, field)
    raw = localizer.estimate(conn, field.positions(), pts)
    smoothed = tracker.filter(raw)
    return TrackingResult(
        true_path=pts,
        raw_fixes=raw,
        smoothed=smoothed,
        raw_errors=localization_errors(raw, pts),
        smoothed_errors=localization_errors(smoothed, pts),
    )
