"""Localizer interface and the unlocalizable-point policy.

A *localizer* turns a connectivity matrix (what each client hears) and the
known beacon positions into position estimates.  The paper's localizer is
the connectivity centroid (§2.2); this package also provides the locus,
weighted-centroid and multilateration estimators discussed in §2.2/§6 as
comparison baselines.

**Unlocalizable points.**  The paper never specifies the estimate for a
client that hears *zero* beacons, yet at its lowest density (20 beacons on
100 m²·10²) roughly a quarter of the terrain is uncovered.  The choice
materially shifts the low-density end of Figure 4, so it is an explicit,
documented policy here (see DESIGN.md):

* ``TERRAIN_CENTER`` (default) — the client falls back to the terrain
  centroid, the only prior it has.  This anchors mean error near the
  paper's ≈20 m at density 0.002 and is what all paper-figure benches use.
* ``NEAREST_BEACON`` — score the point as if it had estimated the nearest
  beacon's position (an oracle-ish lower bound on what any fallback could
  do).
* ``EXCLUDE`` — drop the point from statistics (estimates are NaN and all
  summaries use NaN-aware reductions).
* ``ZERO_ERROR`` — count the point as perfectly localized (the most
  charitable convention; useful to bound how much the policy matters).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum

import numpy as np

from ..geometry import as_point_array

__all__ = ["UnlocalizedPolicy", "Localizer", "apply_unlocalized_policy"]


class UnlocalizedPolicy(Enum):
    """What to do with clients that hear no beacon (see module docstring)."""

    TERRAIN_CENTER = "terrain_center"
    NEAREST_BEACON = "nearest_beacon"
    EXCLUDE = "exclude"
    ZERO_ERROR = "zero_error"


def apply_unlocalized_policy(
    estimates: np.ndarray,
    unheard: np.ndarray,
    policy: UnlocalizedPolicy,
    *,
    points: np.ndarray,
    beacon_positions: np.ndarray,
    terrain_side: float,
) -> np.ndarray:
    """Fill estimate rows for unheard points according to ``policy``.

    Args:
        estimates: ``(P, 2)`` estimates; rows flagged in ``unheard`` are
            overwritten (their prior content is ignored).
        unheard: ``(P,)`` boolean; True where the client hears no beacon.
        policy: the fallback convention.
        points: ``(P, 2)`` true client positions (needed by
            ``NEAREST_BEACON`` and ``ZERO_ERROR``).
        beacon_positions: ``(N, 2)`` beacon coordinates.
        terrain_side: side of the terrain square.

    Returns:
        A new ``(P, 2)`` array (the input is not modified).
    """
    est = np.array(estimates, dtype=float, copy=True)
    if not unheard.any():
        return est
    pts = as_point_array(points)
    if policy is UnlocalizedPolicy.TERRAIN_CENTER:
        est[unheard] = terrain_side / 2.0
    elif policy is UnlocalizedPolicy.NEAREST_BEACON:
        if beacon_positions.shape[0] == 0:
            est[unheard] = terrain_side / 2.0
        else:
            sub = pts[unheard]
            diff = sub[:, None, :] - beacon_positions[None, :, :]
            d2 = np.einsum("pnk,pnk->pn", diff, diff)
            est[unheard] = beacon_positions[np.argmin(d2, axis=1)]
    elif policy is UnlocalizedPolicy.EXCLUDE:
        est[unheard] = np.nan
    elif policy is UnlocalizedPolicy.ZERO_ERROR:
        est[unheard] = pts[unheard]
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unknown policy {policy}")
    return est


class Localizer(ABC):
    """Estimate client positions from connectivity and beacon positions."""

    @abstractmethod
    def estimate(
        self,
        connectivity: np.ndarray,
        beacon_positions: np.ndarray,
        points: np.ndarray,
    ) -> np.ndarray:
        """Position estimates for each client point.

        Args:
            connectivity: ``(P, N)`` boolean matrix.
            beacon_positions: ``(N, 2)`` known beacon coordinates.
            points: ``(P, 2)`` true client positions (used only to resolve
                the unlocalized policy and by oracle baselines; honest
                estimators never read them for heard points).

        Returns:
            ``(P, 2)`` estimates; NaN rows iff the policy is ``EXCLUDE``.
        """
