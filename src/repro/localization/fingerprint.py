"""Signal-strength fingerprinting localization (the RADAR baseline).

The paper's related work cites Bahl & Padmanabhan's RADAR (ref [1]): locate
a client by matching its received-signal-strength vector against a
*database of signal strength signatures* collected at known calibration
points.  This is the natural high-information baseline against which the
connectivity centroid's simplicity can be judged — and its placement
sensitivity is of the same kind (calibration quality depends on where the
beacons are).

Implementation:

* **Offline phase** (:meth:`FingerprintLocalizer.calibrate`): walk a
  calibration lattice, record each point's signature.  Signatures are
  derived from the propagation realization's per-link effective ranges — an
  idealized RSS in dB, ``s = 10·n·log10(r_eff / d)`` clipped at the
  detection floor — so the same static world serves both phases.
* **Online phase** (:meth:`estimate`): per query point, take the k nearest
  database signatures (Euclidean distance in signal space, counting
  non-detections as floor) and average their calibration coordinates.

Calibration measurement noise is supported to keep the baseline honest.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array, pairwise_distances
from .base import Localizer, UnlocalizedPolicy, apply_unlocalized_policy

__all__ = ["FingerprintLocalizer"]


class FingerprintLocalizer(Localizer):
    """k-nearest-signature localization against a calibrated database.

    Args:
        terrain_side: side of the terrain square.
        realization: the propagation world signatures are measured in.
        path_loss_exponent: exponent for the idealized RSS mapping.
        floor_db: detection floor; links weaker than this read as
            non-detections (assigned the floor value in signature space).
        k: neighbours averaged in the online phase.
        calibration_noise_db: Gaussian noise added to calibration
            signatures (0 = clean database).
        policy: fallback for query points detecting no beacon at all.
    """

    def __init__(
        self,
        terrain_side: float,
        realization,
        *,
        path_loss_exponent: float = 3.0,
        floor_db: float = -20.0,
        k: int = 3,
        calibration_noise_db: float = 0.0,
        rng: np.random.Generator | None = None,
        policy: UnlocalizedPolicy = UnlocalizedPolicy.TERRAIN_CENTER,
    ):
        if terrain_side <= 0:
            raise ValueError(f"terrain_side must be positive, got {terrain_side}")
        if path_loss_exponent <= 0:
            raise ValueError(f"path_loss_exponent must be positive, got {path_loss_exponent}")
        if floor_db >= 0:
            raise ValueError(f"floor_db must be negative, got {floor_db}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if calibration_noise_db < 0:
            raise ValueError(f"calibration_noise_db must be >= 0, got {calibration_noise_db}")
        if calibration_noise_db > 0 and rng is None:
            raise ValueError("rng is required when calibration_noise_db > 0")
        self.terrain_side = float(terrain_side)
        self.realization = realization
        self.n = float(path_loss_exponent)
        self.floor_db = float(floor_db)
        self.k = int(k)
        self.calibration_noise_db = float(calibration_noise_db)
        self._rng = rng
        self.policy = policy
        self._db_points: np.ndarray | None = None
        self._db_signatures: np.ndarray | None = None
        self._beacons = None  # the field the database was calibrated against

    # -- Signatures ----------------------------------------------------------

    def signatures_at(self, points, beacons) -> np.ndarray:
        """Idealized RSS signature (dB) for each point, ``(P, N)``.

        ``10·n·log10(r_eff/d)`` clipped below at the detection floor; exactly
        0 dB at the connectivity boundary, so "detected" ⇔ RSS > floor.
        """
        pts = as_point_array(points)
        positions = (
            beacons.positions() if hasattr(beacons, "positions") else as_point_array(beacons)
        )
        if positions.shape[0] == 0:
            return np.zeros((pts.shape[0], 0))
        dist = np.maximum(pairwise_distances(pts, positions), 1e-9)
        r_eff = self.realization.effective_ranges(pts, beacons)
        rss = 10.0 * self.n * np.log10(np.maximum(r_eff, 1e-9) / dist)
        return np.maximum(rss, self.floor_db)

    # -- Offline phase ---------------------------------------------------------

    def calibrate(self, calibration_points, beacons) -> int:
        """Build the signature database.

        Args:
            calibration_points: ``(C, 2)`` surveyed calibration locations.
            beacons: the beacon field at calibration time.

        Returns:
            The number of database entries.
        """
        pts = as_point_array(calibration_points)
        sigs = self.signatures_at(pts, beacons)
        if self.calibration_noise_db > 0:
            noise = self._rng.normal(0.0, self.calibration_noise_db, size=sigs.shape)
            sigs = np.maximum(sigs + noise, self.floor_db)
        self._db_points = pts
        self._db_signatures = sigs
        self._beacons = beacons
        return pts.shape[0]

    @property
    def is_calibrated(self) -> bool:
        """Whether a database has been built."""
        return self._db_points is not None

    # -- Online phase -----------------------------------------------------------

    def estimate(
        self,
        connectivity: np.ndarray,
        beacon_positions: np.ndarray,
        points: np.ndarray,
    ) -> np.ndarray:
        """k-nearest-signature position estimates.

        ``connectivity`` is only used to resolve the no-detection policy;
        signature matching uses the full RSS vector against the *calibrated*
        beacon field (online signatures need the same beacon identities the
        database was measured with — the static noise is keyed on them), so
        ``beacon_positions`` must describe the calibration field.
        """
        if not self.is_calibrated:
            raise RuntimeError("calibrate() must be called before estimate()")
        pts = as_point_array(points)
        conn = np.asarray(connectivity, dtype=bool)
        if conn.shape[0] != pts.shape[0]:
            raise ValueError(
                f"connectivity rows {conn.shape[0]} != {pts.shape[0]} points"
            )
        if self._db_signatures.shape[1] != conn.shape[1]:
            raise ValueError(
                "database was calibrated against a different beacon count "
                f"({self._db_signatures.shape[1]} vs {conn.shape[1]}); recalibrate"
            )

        query = self.signatures_at(pts, self._beacons)
        # Signal-space distances query × database.
        diff = query[:, None, :] - self._db_signatures[None, :, :]
        d2 = np.einsum("qcn,qcn->qc", diff, diff)
        k = min(self.k, self._db_points.shape[0])
        nearest = np.argpartition(d2, k - 1, axis=1)[:, :k]
        estimates = self._db_points[nearest].mean(axis=1)

        unheard = ~conn.any(axis=1)
        return apply_unlocalized_policy(
            estimates,
            unheard,
            self.policy,
            points=pts,
            beacon_positions=as_point_array(beacon_positions),
            terrain_side=self.terrain_side,
        )
