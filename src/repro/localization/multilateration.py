"""Multilateration baselines (Sections 1 and 6).

The paper contrasts proximity localization with *multilateration* — position
estimated from distances to three or more known points — and plans to recast
its placement algorithms for it, noting that multilateration error *"is
influenced by the geometry of the beacon nodes"*.  This module provides:

* :class:`MultilaterationLocalizer` — linearized least-squares position
  solving from (noisy) range measurements to connected beacons, falling back
  to the centroid when fewer than three non-collinear beacons are heard;
* :func:`gdop` — geometric dilution of precision, the standard summary of
  beacon-geometry quality that the placement extension optimizes.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array, pairwise_distances
from .base import Localizer, UnlocalizedPolicy, apply_unlocalized_policy

__all__ = ["MultilaterationLocalizer", "gdop"]


def _solve_lateration(anchors: np.ndarray, ranges: np.ndarray) -> np.ndarray | None:
    """Linearized least-squares fix from ≥ 3 anchors; None if degenerate.

    Subtracting the first anchor's circle equation from the others yields the
    standard linear system ``A x = b`` with::

        A[k] = 2 · (a_{k+1} − a_0),
        b[k] = ||a_{k+1}||² − ||a_0||² − (r_{k+1}² − r_0²)
    """
    if anchors.shape[0] < 3:
        return None
    a0 = anchors[0]
    rest = anchors[1:]
    a_mat = 2.0 * (rest - a0[None, :])
    b_vec = (
        np.einsum("nk,nk->n", rest, rest)
        - float(a0 @ a0)
        - (ranges[1:] ** 2 - ranges[0] ** 2)
    )
    # Collinear anchors make A rank-deficient; detect via conditioning.
    solution, residuals, rank, _ = np.linalg.lstsq(a_mat, b_vec, rcond=None)
    del residuals
    if rank < 2:
        return None
    return solution


def gdop(anchors: np.ndarray, at_point) -> float:
    """Geometric dilution of precision of an anchor set at a point.

    GDOP = sqrt(trace((Hᵀ H)⁻¹)) where H's rows are the unit vectors from the
    point to each anchor.  Lower is better; collinear or too-few anchors give
    ``inf``.
    """
    a = as_point_array(anchors)
    p = as_point_array(at_point)[0]
    if a.shape[0] < 2:
        return float("inf")
    diff = a - p[None, :]
    norms = np.linalg.norm(diff, axis=1)
    good = norms > 1e-9
    if np.count_nonzero(good) < 2:
        return float("inf")
    h = diff[good] / norms[good][:, None]
    gram = h.T @ h
    if np.linalg.cond(gram) > 1e12:
        return float("inf")
    return float(np.sqrt(np.trace(np.linalg.inv(gram))))


class MultilaterationLocalizer(Localizer):
    """Least-squares multilateration from noisy ranges to heard beacons.

    Range measurements are the true distances corrupted by zero-mean Gaussian
    noise of relative standard deviation ``range_noise`` (e.g. 0.05 = 5 % of
    distance), drawn from the supplied generator — modelling time-of-flight
    or signal-strength ranging (refs [18], [12] of the paper).

    Points hearing < 3 beacons (or a collinear set) fall back to the centroid
    of heard beacons; points hearing none follow ``policy``.

    Args:
        terrain_side: side of the terrain square.
        range_noise: relative ranging-error standard deviation (≥ 0).
        rng: randomness for measurement noise (None = noiseless ranging).
        policy: fallback for zero-connectivity points.
    """

    def __init__(
        self,
        terrain_side: float,
        range_noise: float = 0.0,
        rng: np.random.Generator | None = None,
        policy: UnlocalizedPolicy = UnlocalizedPolicy.TERRAIN_CENTER,
    ):
        if terrain_side <= 0:
            raise ValueError(f"terrain_side must be positive, got {terrain_side}")
        if range_noise < 0:
            raise ValueError(f"range_noise must be non-negative, got {range_noise}")
        if range_noise > 0 and rng is None:
            raise ValueError("rng is required when range_noise > 0")
        self.terrain_side = float(terrain_side)
        self.range_noise = float(range_noise)
        self._rng = rng
        self.policy = policy

    def estimate(
        self,
        connectivity: np.ndarray,
        beacon_positions: np.ndarray,
        points: np.ndarray,
    ) -> np.ndarray:
        conn = np.asarray(connectivity, dtype=bool)
        pos = as_point_array(beacon_positions)
        pts = as_point_array(points)
        if conn.shape != (pts.shape[0], pos.shape[0]):
            raise ValueError(
                f"connectivity shape {conn.shape} does not match "
                f"{pts.shape[0]} points × {pos.shape[0]} beacons"
            )

        if pos.shape[0] == 0:
            measured = np.zeros((pts.shape[0], 0))
        else:
            true_dist = pairwise_distances(pts, pos)
            measured = true_dist
            if self.range_noise > 0:
                noise = self._rng.normal(1.0, self.range_noise, size=true_dist.shape)
                measured = true_dist * np.maximum(noise, 0.0)

        estimates = np.zeros_like(pts)
        for p in range(pts.shape[0]):
            heard = np.flatnonzero(conn[p])
            if heard.size == 0:
                continue  # policy fills this row below
            anchors = pos[heard]
            fix = _solve_lateration(anchors, measured[p, heard])
            estimates[p] = anchors.mean(axis=0) if fix is None else fix

        unheard = ~conn.any(axis=1)
        return apply_unlocalized_policy(
            estimates,
            unheard,
            self.policy,
            points=pts,
            beacon_positions=pos,
            terrain_side=self.terrain_side,
        )
