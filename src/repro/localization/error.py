"""Localization-error metrics (Section 2.2 / 4.1).

The paper's error measure is the Euclidean distance between estimated and
actual position::

    LE = sqrt((X_est − X_a)² + (Y_est − Y_a)²)

and its evaluation metrics are statistics of LE over all measurement points:
mean error, median error, and the *improvements* in each when a beacon is
added.  :class:`ErrorSurface` bundles the per-point errors with the lattice
they were measured on; all reductions are NaN-aware so the ``EXCLUDE``
unlocalized policy composes transparently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import MeasurementGrid, as_point_array

__all__ = ["localization_errors", "ErrorSurface", "ErrorSummary"]


def localization_errors(estimates: np.ndarray, actual: np.ndarray) -> np.ndarray:
    """Per-point localization error ``LE``, shape ``(P,)``.

    NaN estimates (excluded points) yield NaN errors.
    """
    est = as_point_array(estimates)
    act = as_point_array(actual)
    if est.shape != act.shape:
        raise ValueError(f"estimates shape {est.shape} != actual shape {act.shape}")
    diff = est - act
    return np.sqrt(np.einsum("pk,pk->p", diff, diff))


@dataclass(frozen=True)
class ErrorSummary:
    """Scalar statistics of an error surface.

    Attributes:
        mean: mean LE over measured (non-NaN) points, meters.
        median: median LE, meters.
        maximum: max LE, meters.
        num_points: points contributing (non-NaN).
    """

    mean: float
    median: float
    maximum: float
    num_points: int


@dataclass(frozen=True)
class ErrorSurface:
    """Per-point localization errors over a measurement lattice.

    Attributes:
        grid: the lattice the errors were measured on.
        errors: ``(P_T,)`` LE values aligned with ``grid.points()``; NaN
            marks excluded points.
    """

    grid: MeasurementGrid
    errors: np.ndarray

    def __post_init__(self) -> None:
        err = np.asarray(self.errors, dtype=float)
        if err.shape != (self.grid.num_points,):
            raise ValueError(
                f"errors shape {err.shape} != lattice size ({self.grid.num_points},)"
            )

    def mean_error(self) -> float:
        """Mean LE (meters), ignoring excluded points."""
        if np.all(np.isnan(self.errors)):
            return float("nan")
        return float(np.nanmean(self.errors))

    def median_error(self) -> float:
        """Median LE (meters), ignoring excluded points."""
        if np.all(np.isnan(self.errors)):
            return float("nan")
        return float(np.nanmedian(self.errors))

    def max_error(self) -> float:
        """Maximum LE (meters), ignoring excluded points."""
        if np.all(np.isnan(self.errors)):
            return float("nan")
        return float(np.nanmax(self.errors))

    def summary(self) -> ErrorSummary:
        """All scalar statistics at once."""
        return ErrorSummary(
            mean=self.mean_error(),
            median=self.median_error(),
            maximum=self.max_error(),
            num_points=int(np.count_nonzero(~np.isnan(self.errors))),
        )

    def argmax_point(self):
        """The lattice point with the highest LE (the Max algorithm's pick).

        Ties break to the lowest flat index (row-major), deterministically.
        """
        if np.all(np.isnan(self.errors)):
            raise ValueError("error surface has no measured points")
        idx = int(np.nanargmax(self.errors))
        return self.grid.point_at(idx)

    def as_image(self) -> np.ndarray:
        """Errors reshaped to the lattice's ``(n, n)`` image (x-major)."""
        n = self.grid.points_per_axis
        return self.errors.reshape(n, n)

    def improvement_over(self, other: "ErrorSurface") -> tuple[float, float]:
        """The paper's §4.1 metrics vs a *prior* surface.

        Returns:
            ``(improvement_in_mean, improvement_in_median)`` where each is
            ``other − self`` (positive when this surface is better).
        """
        if self.grid != other.grid:
            raise ValueError("cannot compare error surfaces on different lattices")
        return (
            other.mean_error() - self.mean_error(),
            other.median_error() - self.median_error(),
        )
