"""Locus localization: the "full locus information" estimator (§2.2, §6).

Footnote 3 of the paper: under the idealized radio model the client lies in
the locus described by the intersection of the disks of the connected
beacons; the plain centroid merely *summarizes* that locus by the mean of
the beacon positions.  This estimator keeps the full geometry: the estimate
is the **centroid of the feasible region** — every terrain point within
nominal range R of *all* connected beacons — computed on a lattice.

Section 6 suggests placement algorithms that "break down the loci with the
largest area"; :class:`repro.placement.LocusAreaPlacement` builds on the same
region machinery.

Under noisy propagation an observed signature can be geometrically
infeasible (a beacon heard beyond R); the estimator then falls back to the
plain centroid of heard beacons, which is also the paper's robustness
argument for preferring the centroid summary in the real world.
"""

from __future__ import annotations

import numpy as np

from ..geometry import MeasurementGrid, as_point_array, pairwise_distances
from .base import Localizer, UnlocalizedPolicy, apply_unlocalized_policy

__all__ = ["LocusLocalizer"]


class LocusLocalizer(Localizer):
    """Centroid-of-feasible-region localization on a lattice.

    Args:
        grid: lattice on which feasible regions are rasterized (its ``side``
            is also the terrain side for the fallback policy).
        radio_range: nominal range R assumed by clients.
        policy: fallback for zero-connectivity points.
        chunk_size: signatures processed per matmul block (memory bound).
    """

    def __init__(
        self,
        grid: MeasurementGrid,
        radio_range: float,
        policy: UnlocalizedPolicy = UnlocalizedPolicy.TERRAIN_CENTER,
        chunk_size: int = 256,
    ):
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.grid = grid
        self.radio_range = float(radio_range)
        self.policy = policy
        self.chunk_size = int(chunk_size)

    def _signature_centroids(
        self, signatures: np.ndarray, beacon_positions: np.ndarray
    ) -> np.ndarray:
        """Region centroid per signature row; NaN when empty.

        For each signature S the preferred region is the *exact* locus —
        terrain points that (under the nominal R) hear all of S and nothing
        else, which makes the centroid the Bayes estimate under a uniform
        client prior.  If noise produced a signature with an empty exact
        locus, fall back to the disk intersection (points hearing at least
        S); if even that is empty the row stays NaN for the caller's
        beacon-centroid fallback.

        Args:
            signatures: ``(S, N)`` boolean unique connectivity signatures.
            beacon_positions: ``(N, 2)``.

        Returns:
            ``(S, 2)`` centroids (NaN rows for infeasible signatures).
        """
        lattice = self.grid.points()
        feasible = (
            pairwise_distances(lattice, beacon_positions) <= self.radio_range
        ).astype(np.float32)  # (Q, N)
        degree = feasible.sum(axis=1)  # (Q,) beacons heard per lattice point
        sizes = signatures.sum(axis=1).astype(np.float32)  # (S,)
        out = np.full((signatures.shape[0], 2), np.nan)
        for start in range(0, signatures.shape[0], self.chunk_size):
            block = signatures[start : start + self.chunk_size]  # (s, N)
            block_sizes = sizes[start : start + block.shape[0]]
            hears = feasible @ block.T.astype(np.float32)  # (Q, s)
            hears_all = hears >= block_sizes[None, :] - 0.5
            exact = hears_all & (degree[:, None] <= block_sizes[None, :] + 0.5)
            for region in (exact, hears_all):
                counts = region.sum(axis=0)  # (s,)
                sums = region.T.astype(float) @ lattice  # (s, 2)
                fill = (counts > 0) & np.isnan(out[start : start + block.shape[0], 0])
                rows = np.flatnonzero(fill)
                out[start + rows] = sums[rows] / counts[rows, None]
        return out

    def estimate(
        self,
        connectivity: np.ndarray,
        beacon_positions: np.ndarray,
        points: np.ndarray,
    ) -> np.ndarray:
        conn = np.asarray(connectivity, dtype=bool)
        pos = as_point_array(beacon_positions)
        pts = as_point_array(points)
        if conn.shape != (pts.shape[0], pos.shape[0]):
            raise ValueError(
                f"connectivity shape {conn.shape} does not match "
                f"{pts.shape[0]} points × {pos.shape[0]} beacons"
            )

        estimates = np.zeros_like(pts)
        unheard = ~conn.any(axis=1)
        if pos.shape[0] > 0 and (~unheard).any():
            packed = np.packbits(conn, axis=1)
            keys = packed.view([("", packed.dtype)] * packed.shape[1]).reshape(-1)
            _, first_idx, inverse = np.unique(keys, return_index=True, return_inverse=True)
            signatures = conn[first_idx]  # (S, N)
            centroids = self._signature_centroids(signatures, pos)  # (S, 2)

            # Fallback for infeasible signatures: plain centroid of heard beacons.
            infeasible = np.isnan(centroids[:, 0]) & (signatures.any(axis=1))
            if infeasible.any():
                weights = signatures[infeasible].astype(float)
                counts = np.maximum(weights.sum(axis=1), 1.0)
                centroids[infeasible] = (weights @ pos) / counts[:, None]

            estimates = centroids[inverse.reshape(-1)]
            estimates = np.where(unheard[:, None], 0.0, estimates)

        return apply_unlocalized_policy(
            estimates,
            unheard,
            self.policy,
            points=pts,
            beacon_positions=pos,
            terrain_side=self.grid.side,
        )
