"""Connectivity-centroid localization (Section 2.2) with incremental update.

A client estimates its position as the **centroid of the positions of all
connected beacons**::

    (X_est, Y_est) = mean{ (X_i, Y_i) : beacon i connected }

:class:`CentroidLocalizer` is the batch estimator.  :class:`CentroidState`
is the performance-critical companion: it keeps, per client point, the
*running sum* of connected beacon coordinates and the *count* of connected
beacons, so that evaluating a candidate additional beacon (the inner loop of
every placement experiment — thousands of times per figure) costs O(P)
instead of O(P·N).

The state supports deltas in **both directions**: :meth:`CentroidState.with_beacon`
adds a beacon and :meth:`CentroidState.remove_beacon` subtracts one — the
centroid sums are linear in the beacon set, which is what makes this
localizer *subtractable* (see DESIGN.md §13).  Exact byte-level equality on
removal needs the re-derivation path (floating-point subtraction is not
exactly invertible); the pure-subtraction fast path is exact for the counts
and for every untouched point, and within one ulp elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import as_point_array
from .base import Localizer, UnlocalizedPolicy, apply_unlocalized_policy

__all__ = ["CentroidLocalizer", "CentroidState"]


@dataclass
class CentroidState:
    """Running connected-coordinate sums for incremental centroid updates.

    Attributes:
        coord_sums: ``(P, 2)`` sum of connected beacon coordinates per point.
        counts: ``(P,)`` number of connected beacons per point.
    """

    coord_sums: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_connectivity(
        cls, connectivity: np.ndarray, beacon_positions: np.ndarray
    ) -> "CentroidState":
        """Build the state in one vectorized pass."""
        conn = np.asarray(connectivity, dtype=bool)
        pos = as_point_array(beacon_positions)
        if conn.ndim != 2 or conn.shape[1] != pos.shape[0]:
            raise ValueError(
                f"connectivity shape {conn.shape} does not match "
                f"{pos.shape[0]} beacon positions"
            )
        weights = conn.astype(float)
        return cls(coord_sums=weights @ pos, counts=conn.sum(axis=1))

    def copy(self) -> "CentroidState":
        """An independent copy (for trying several candidates from one base)."""
        return CentroidState(self.coord_sums.copy(), self.counts.copy())

    def with_beacon(self, column: np.ndarray, position) -> "CentroidState":
        """State after adding one beacon — O(P), input state untouched.

        Args:
            column: ``(P,)`` boolean connectivity of the new beacon.
            position: the new beacon's coordinates.
        """
        col = np.asarray(column, dtype=bool)
        if col.shape != self.counts.shape:
            raise ValueError(f"column shape {col.shape} != counts shape {self.counts.shape}")
        pos = as_point_array(position)[0]
        sums = self.coord_sums + col[:, None] * pos[None, :]
        return CentroidState(sums, self.counts + col)

    def remove_beacon(
        self,
        column: np.ndarray,
        position,
        *,
        connectivity: np.ndarray | None = None,
        beacon_positions: np.ndarray | None = None,
    ) -> "CentroidState":
        """State after removing one beacon — the inverse of :meth:`with_beacon`.

        The counts subtract exactly (integer arithmetic).  For the coordinate
        sums there are two paths:

        * **Subtraction** (default) — O(affected points): only rows where
          ``column`` is True are touched, so every other row stays
          bit-identical; rows whose count drops to zero are reset to an
          exact ``+0.0``.  Touched rows with survivors can differ from a
          fresh recompute in the last ulp (IEEE addition is not exactly
          invertible).
        * **Re-derivation** — pass the remaining field's ``connectivity``
          and ``beacon_positions`` to rebuild the sums with the same
          vectorized pass :meth:`from_connectivity` uses, which makes the
          result **byte-identical** to a state built fresh from the
          remaining field (same inputs, same arithmetic).

        Args:
            column: ``(P,)`` boolean connectivity of the departing beacon.
            position: the departing beacon's coordinates.
            connectivity: optional ``(P, N-1)`` connectivity of the
                *remaining* field (enables the exact re-derivation path).
            beacon_positions: optional ``(N-1, 2)`` positions of the
                remaining field (required with ``connectivity``).
        """
        col = np.asarray(column, dtype=bool)
        if col.shape != self.counts.shape:
            raise ValueError(f"column shape {col.shape} != counts shape {self.counts.shape}")
        counts = self.counts - col
        if np.any(counts < 0):
            raise ValueError("column removes a beacon from points that never heard it")
        if connectivity is not None:
            if beacon_positions is None:
                raise ValueError("re-derivation needs beacon_positions with connectivity")
            derived = CentroidState.from_connectivity(connectivity, beacon_positions)
            if not np.array_equal(derived.counts, counts):
                raise ValueError(
                    "connectivity does not describe the field after removal "
                    "(derived counts disagree with subtracted counts)"
                )
            return derived
        pos = as_point_array(position)[0]
        sums = self.coord_sums.copy()
        sums[col] -= pos[None, :]
        sums[col & (counts == 0)] = 0.0
        return CentroidState(sums, counts)

    def estimates(
        self,
        policy: UnlocalizedPolicy,
        *,
        points: np.ndarray,
        beacon_positions: np.ndarray,
        terrain_side: float,
    ) -> np.ndarray:
        """Position estimates ``(P, 2)`` from the current sums."""
        unheard = self.counts == 0
        safe = np.maximum(self.counts, 1).astype(float)
        est = self.coord_sums / safe[:, None]
        return apply_unlocalized_policy(
            est,
            unheard,
            policy,
            points=points,
            beacon_positions=beacon_positions,
            terrain_side=terrain_side,
        )


class CentroidLocalizer(Localizer):
    """The paper's localizer: centroid of connected beacons.

    Args:
        terrain_side: side of the terrain square (for the fallback policy).
        policy: what to do when no beacon is heard (see
            :class:`~repro.localization.UnlocalizedPolicy`).
    """

    def __init__(
        self,
        terrain_side: float,
        policy: UnlocalizedPolicy = UnlocalizedPolicy.TERRAIN_CENTER,
    ):
        if terrain_side <= 0:
            raise ValueError(f"terrain_side must be positive, got {terrain_side}")
        self.terrain_side = float(terrain_side)
        self.policy = policy

    def __repr__(self) -> str:
        return f"CentroidLocalizer(terrain_side={self.terrain_side}, policy={self.policy.value})"

    def estimate(
        self,
        connectivity: np.ndarray,
        beacon_positions: np.ndarray,
        points: np.ndarray,
    ) -> np.ndarray:
        pos = as_point_array(beacon_positions)
        state = CentroidState.from_connectivity(connectivity, pos)
        return state.estimates(
            self.policy,
            points=as_point_array(points),
            beacon_positions=pos,
            terrain_side=self.terrain_side,
        )
