"""Weighted-centroid localization (signal-strength flavoured baseline).

Section 2.2 notes that alternatives to the plain centroid *"consider
additional information of time-of-flight or signal strength"* (refs [18],
[12]).  The weighted centroid is the simplest such refinement: beacons are
averaged with weights derived from a received-signal-strength proxy, so near
beacons pull the estimate harder than far ones.

The proxy is ``w = (R / max(d_meas, ε))^α`` where ``d_meas`` is the true
distance corrupted by relative Gaussian noise (an RSSI-derived range is
noisy), clipped to ``[w_min, w_max]`` for numerical sanity.  With ``α = 0``
the estimator degenerates to the plain centroid.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array, pairwise_distances
from .base import Localizer, UnlocalizedPolicy, apply_unlocalized_policy

__all__ = ["WeightedCentroidLocalizer"]


class WeightedCentroidLocalizer(Localizer):
    """Centroid of heard beacons, weighted by a signal-strength proxy.

    Args:
        terrain_side: side of the terrain square.
        radio_range: nominal range R (sets the weight scale).
        alpha: weight exponent (0 = plain centroid; 1–2 typical).
        strength_noise: relative std-dev of the distance proxy (RSSI noise).
        rng: randomness for the proxy noise (None = noiseless).
        policy: fallback for zero-connectivity points.
    """

    _WEIGHT_CLIP = (1e-3, 1e3)

    def __init__(
        self,
        terrain_side: float,
        radio_range: float,
        alpha: float = 1.0,
        strength_noise: float = 0.0,
        rng: np.random.Generator | None = None,
        policy: UnlocalizedPolicy = UnlocalizedPolicy.TERRAIN_CENTER,
    ):
        if terrain_side <= 0:
            raise ValueError(f"terrain_side must be positive, got {terrain_side}")
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if strength_noise < 0:
            raise ValueError(f"strength_noise must be non-negative, got {strength_noise}")
        if strength_noise > 0 and rng is None:
            raise ValueError("rng is required when strength_noise > 0")
        self.terrain_side = float(terrain_side)
        self.radio_range = float(radio_range)
        self.alpha = float(alpha)
        self.strength_noise = float(strength_noise)
        self._rng = rng
        self.policy = policy

    def estimate(
        self,
        connectivity: np.ndarray,
        beacon_positions: np.ndarray,
        points: np.ndarray,
    ) -> np.ndarray:
        conn = np.asarray(connectivity, dtype=bool)
        pos = as_point_array(beacon_positions)
        pts = as_point_array(points)
        if conn.shape != (pts.shape[0], pos.shape[0]):
            raise ValueError(
                f"connectivity shape {conn.shape} does not match "
                f"{pts.shape[0]} points × {pos.shape[0]} beacons"
            )

        unheard = ~conn.any(axis=1)
        if pos.shape[0] == 0:
            estimates = np.zeros_like(pts)
        else:
            dist = pairwise_distances(pts, pos)
            if self.strength_noise > 0:
                jitter = self._rng.normal(1.0, self.strength_noise, size=dist.shape)
                dist = dist * np.maximum(jitter, 1e-3)
            lo, hi = self._WEIGHT_CLIP
            weights = np.clip(
                (self.radio_range / np.maximum(dist, 1e-6)) ** self.alpha, lo, hi
            )
            weights = weights * conn
            totals = weights.sum(axis=1)
            safe = np.maximum(totals, 1e-12)
            estimates = (weights @ pos) / safe[:, None]

        return apply_unlocalized_policy(
            estimates,
            unheard,
            self.policy,
            points=pts,
            beacon_positions=pos,
            terrain_side=self.terrain_side,
        )
