"""Localization algorithms and error metrics.

The paper's estimator is the connectivity centroid (§2.2); locus, weighted
centroid and multilateration are the comparison baselines it discusses.
"""

from .base import Localizer, UnlocalizedPolicy, apply_unlocalized_policy
from .bayes import GridBayesLocalizer
from .fingerprint import FingerprintLocalizer
from .bounds import (
    OverlapRatioResult,
    max_error_for_overlap_ratio,
    overlap_ratio_sweep,
)
from .centroid import CentroidLocalizer, CentroidState
from .error import ErrorSummary, ErrorSurface, localization_errors
from .locus import LocusLocalizer
from .tracking import AlphaBetaTracker, TrackingResult, track_path
from .multilateration import MultilaterationLocalizer, gdop
from .weighted import WeightedCentroidLocalizer

__all__ = [
    "Localizer",
    "UnlocalizedPolicy",
    "apply_unlocalized_policy",
    "CentroidLocalizer",
    "CentroidState",
    "LocusLocalizer",
    "GridBayesLocalizer",
    "FingerprintLocalizer",
    "AlphaBetaTracker",
    "TrackingResult",
    "track_path",
    "WeightedCentroidLocalizer",
    "MultilaterationLocalizer",
    "gdop",
    "localization_errors",
    "ErrorSurface",
    "ErrorSummary",
    "OverlapRatioResult",
    "max_error_for_overlap_ratio",
    "overlap_ratio_sweep",
]
