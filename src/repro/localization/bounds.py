"""Error bounds for uniform beacon grids (Section 2.2).

The paper recalls its companion analysis (Bulusu et al. 2000): under uniform
placement with beacon separation ``d`` and range ``R``, the maximum centroid
localization error is bounded by ``0.5·d`` at range-overlap ratio ``R/d = 1``
and falls to ``0.25·d`` by ``R/d = 4``.  This module measures those bounds
empirically on our implementation — an end-to-end check that the centroid
localizer reproduces the published analysis — and provides the sweep used by
the quickstart example and the bounds test/bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..field import regular_grid_field
from ..geometry import MeasurementGrid, pairwise_distances
from .centroid import CentroidLocalizer
from .error import ErrorSurface, localization_errors

__all__ = ["OverlapRatioResult", "max_error_for_overlap_ratio", "overlap_ratio_sweep"]


@dataclass(frozen=True)
class OverlapRatioResult:
    """Empirical error statistics for one range-overlap ratio.

    Attributes:
        overlap_ratio: ``R/d``.
        separation: beacon separation ``d`` (meters).
        radio_range: ``R`` (meters).
        max_error_fraction: max LE over interior points, as a fraction of d.
        mean_error_fraction: mean LE over interior points, as a fraction of d.
    """

    overlap_ratio: float
    separation: float
    radio_range: float
    max_error_fraction: float
    mean_error_fraction: float


def max_error_for_overlap_ratio(
    overlap_ratio: float,
    *,
    separation: float = 10.0,
    per_axis: int | None = None,
    step_fraction: float = 0.05,
) -> OverlapRatioResult:
    """Measure centroid error on a uniform grid at a given ``R/d``.

    Border cells see fewer (and asymmetric) beacons, so statistics are
    restricted to interior points whose whole radio disk lies inside the
    beacon lattice — matching the infinite-grid setting of the bound.  The
    lattice is sized so that a non-trivial interior exists at every ratio.

    Args:
        overlap_ratio: ``R/d`` to evaluate.
        separation: beacon separation ``d`` in meters.
        per_axis: beacons per axis; default scales with the ratio so the
            interior spans at least two separations.
        step_fraction: measurement step as a fraction of ``d``.
    """
    if overlap_ratio <= 0:
        raise ValueError(f"overlap_ratio must be positive, got {overlap_ratio}")
    if per_axis is None:
        per_axis = 2 * math.ceil(overlap_ratio) + 5
    if per_axis < 4:
        raise ValueError(f"per_axis must be >= 4, got {per_axis}")
    radio_range = overlap_ratio * separation
    margin = separation / 2.0
    side = separation * (per_axis - 1) + 2 * margin
    field = regular_grid_field(per_axis, side, margin=margin)

    step = step_fraction * separation
    # Snap step to divide side exactly.
    divisions = max(int(round(side / step)), 1)
    grid = MeasurementGrid(side=side, step=side / divisions)
    pts = grid.points()

    dist = pairwise_distances(pts, field.positions())
    conn = dist <= radio_range
    localizer = CentroidLocalizer(terrain_side=side)
    est = localizer.estimate(conn, field.positions(), pts)
    errors = localization_errors(est, pts)

    inset = margin + radio_range
    interior = (
        (pts[:, 0] >= inset)
        & (pts[:, 0] <= side - inset)
        & (pts[:, 1] >= inset)
        & (pts[:, 1] <= side - inset)
    )
    if not interior.any():
        raise ValueError(
            f"no interior points at overlap_ratio={overlap_ratio} with "
            f"per_axis={per_axis}; increase per_axis"
        )
    surface = ErrorSurface(grid, np.where(interior, errors, np.nan))
    return OverlapRatioResult(
        overlap_ratio=overlap_ratio,
        separation=separation,
        radio_range=radio_range,
        max_error_fraction=surface.max_error() / separation,
        mean_error_fraction=surface.mean_error() / separation,
    )


def overlap_ratio_sweep(
    ratios=(1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0), **kwargs
) -> list[OverlapRatioResult]:
    """Evaluate :func:`max_error_for_overlap_ratio` over a ratio sweep."""
    return [max_error_for_overlap_ratio(r, **kwargs) for r in ratios]
