"""Grid-Bayes localization: the information-theoretic ceiling.

The connectivity signature a client observes is a (noisy) function of its
position; the best any estimator can do with that signature is the Bayes
posterior mean under a position prior.  This localizer computes it on a
lattice:

* prior: uniform over the terrain lattice;
* likelihood: per-link connectivity probabilities as a function of distance,
  modelling the §4.2.1 noise — a link at distance ``d`` from beacon ``b``
  with noise factor ``nf`` is up with probability 1 below ``R(1−nf)``, 0
  above ``R(1+nf)`` and linearly in between (the marginal over ``u``);
* posterior: product over beacons of P(observed bit | position), normalized
  over the lattice; estimate = posterior mean.

Under the ideal model (``noise = 0``) this degenerates to the exact-locus
centroid (:class:`~repro.localization.LocusLocalizer` with exact regions).
Under noise it strictly dominates both centroid flavours in expectation —
the benchmark that tells us how much accuracy the paper's centroid summary
leaves on the table.
"""

from __future__ import annotations

import numpy as np

from ..geometry import MeasurementGrid, as_point_array, pairwise_distances
from .base import Localizer, UnlocalizedPolicy, apply_unlocalized_policy

__all__ = ["GridBayesLocalizer"]


class GridBayesLocalizer(Localizer):
    """Posterior-mean localization over a terrain lattice.

    Args:
        grid: the hypothesis lattice (posterior support).
        radio_range: nominal range R assumed by clients.
        noise: assumed maximum noise factor (the client's channel model —
            it does not know each beacon's true ``nf``, so it marginalizes
            over ``nf ~ U[0, noise]`` and ``u ~ U[-1, 1]``).
        cm_thresh: if the world applies the §2.2 message-threshold rule
            (see :class:`~repro.radio.BeaconNoiseModel`), pass the same
            value so the client's channel model accounts for the expected
            range shrinkage ``(2·CM_thresh − 1)·E[nf]·R`` (first-order
            correction; None assumes the symmetric model).
        epsilon: label-noise floor, keeps the likelihood strictly positive
            so one inconsistent bit cannot zero the posterior.  Keep it
            small: the floor leaks posterior mass into the (large) area the
            observation excludes, and with few heard beacons that leakage
            drags the posterior mean toward the terrain center.
        policy: fallback for zero-connectivity points (although the Bayes
            posterior is well-defined even then, hearing nothing is treated
            like the other localizers for comparability).
        chunk_size: query points processed per block (memory bound).
    """

    def __init__(
        self,
        grid: MeasurementGrid,
        radio_range: float,
        noise: float = 0.0,
        cm_thresh: float | None = None,
        epsilon: float = 1e-4,
        policy: UnlocalizedPolicy = UnlocalizedPolicy.TERRAIN_CENTER,
        chunk_size: int = 512,
    ):
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        if not 0.0 <= noise < 1.0:
            raise ValueError(f"noise must be in [0, 1), got {noise}")
        if cm_thresh is not None and not 0.5 <= cm_thresh <= 1.0:
            raise ValueError(f"cm_thresh must be in [0.5, 1], got {cm_thresh}")
        if not 0.0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.grid = grid
        self.radio_range = float(radio_range)
        self.noise = float(noise)
        self.cm_thresh = cm_thresh
        self.epsilon = float(epsilon)
        self.policy = policy
        self.chunk_size = int(chunk_size)

    _NF_QUADRATURE = 24

    def link_probability(self, distances: np.ndarray) -> np.ndarray:
        """P(link up | distance) under the client's marginal channel model.

        The link is up iff ``d ≤ R(1 + u·nf) − (2·cm − 1)·nf·R`` (the last
        term only when ``cm_thresh`` is set) with ``u ~ U[-1, 1]`` and
        ``nf ~ U[0, noise]``.  Conditional on nf the probability in u is a
        clipped linear ramp; the nf marginal is taken by midpoint quadrature
        (exact in the limit, ``_NF_QUADRATURE`` points in practice).  With
        ``noise = 0`` this is the hard disk.  Probabilities are clipped to
        ``[ε, 1 − ε]``.
        """
        d = np.asarray(distances, dtype=float)
        if self.noise == 0.0:
            p = (d <= self.radio_range).astype(float)
        else:
            shift = 0.0 if self.cm_thresh is None else 2.0 * self.cm_thresh - 1.0
            x = d / self.radio_range - 1.0  # relative link margin
            p = np.zeros_like(d)
            k = self._NF_QUADRATURE
            for nf in (np.arange(k) + 0.5) / k * self.noise:
                # u threshold: u >= x/nf + shift
                t = x / nf + shift
                p += np.clip((1.0 - t) / 2.0, 0.0, 1.0)
            p /= k
        return np.clip(p, self.epsilon, 1.0 - self.epsilon)

    def posterior(self, connectivity_row: np.ndarray, beacon_positions: np.ndarray) -> np.ndarray:
        """Posterior over the lattice for one observed signature, ``(Q,)``."""
        post = self._log_posteriors(
            np.asarray(connectivity_row, dtype=bool)[None, :], beacon_positions
        )[0]
        return post

    def _log_posteriors(self, conn: np.ndarray, beacon_positions: np.ndarray) -> np.ndarray:
        lattice = self.grid.points()
        dist = pairwise_distances(lattice, beacon_positions)  # (Q, N)
        p_up = self.link_probability(dist)
        log_up = np.log(p_up)  # (Q, N)
        log_down = np.log(1.0 - p_up)

        out = np.empty((conn.shape[0], lattice.shape[0]))
        for start in range(0, conn.shape[0], self.chunk_size):
            block = conn[start : start + self.chunk_size].astype(float)  # (b, N)
            # log P(obs | q) = Σ_n obs·log_up + (1-obs)·log_down
            loglik = block @ log_up.T + (1.0 - block) @ log_down.T  # (b, Q)
            loglik -= loglik.max(axis=1, keepdims=True)
            lik = np.exp(loglik)
            out[start : start + block.shape[0]] = lik / lik.sum(axis=1, keepdims=True)
        return out

    def estimate(
        self,
        connectivity: np.ndarray,
        beacon_positions: np.ndarray,
        points: np.ndarray,
    ) -> np.ndarray:
        conn = np.asarray(connectivity, dtype=bool)
        pos = as_point_array(beacon_positions)
        pts = as_point_array(points)
        if conn.shape != (pts.shape[0], pos.shape[0]):
            raise ValueError(
                f"connectivity shape {conn.shape} does not match "
                f"{pts.shape[0]} points × {pos.shape[0]} beacons"
            )
        unheard = ~conn.any(axis=1)
        if pos.shape[0] == 0:
            estimates = np.zeros_like(pts)
        else:
            # Deduplicate signatures: identical observations share a posterior.
            packed = np.packbits(conn, axis=1)
            keys = packed.view([("", packed.dtype)] * packed.shape[1]).reshape(-1)
            _, first_idx, inverse = np.unique(keys, return_index=True, return_inverse=True)
            posteriors = self._log_posteriors(conn[first_idx], pos)  # (S, Q)
            means = posteriors @ self.grid.points()  # (S, 2)
            estimates = means[inverse.reshape(-1)]
        return apply_unlocalized_policy(
            estimates,
            unheard,
            self.policy,
            points=pts,
            beacon_positions=pos,
            terrain_side=self.grid.side,
        )
