"""Command-line interface: ``beaconplace`` / ``python -m repro``.

Subcommands:

* ``table1`` — print the simulation parameters (Table 1) plus the derived
  quantities quoted in the paper's text.
* ``reproduce {fig4,fig5,fig6,fig7,fig8,fig9}`` — rerun a figure's sweep at
  configurable fidelity and print the series (table + ASCII chart).
* ``place`` — one adaptive-placement trial, narrated.
* ``protocol`` — run the §2.2 discrete-event protocol and compare with the
  geometric connectivity model.
* ``bounds`` — the §2.2 uniform-grid error bounds vs range-overlap ratio.
* ``survey`` — drive a survey robot along a path and report what it saw.
* ``activate`` — density-adaptive beacon self-scheduling on a dense field.
* ``regions`` — localization-region (locus) statistics of a deployment.
* ``report`` — run a compact evaluation and write a markdown report.
* ``faults`` — degrade a deployment over time under a fault model and
  measure how localization and adaptive placement hold up.
* ``timeline`` — error-vs-time curves: sweep several fault models through
  the resilient engine (``--models crash,battery,intermittent --times
  0:86400:24``), with bootstrap CIs, journal resume and every executor
  backend.
* ``selfheal`` — the closed-loop version of ``timeline``: a repair
  controller (thresholds, hysteresis, beacon budget) walks each fault
  timeline and fights the degradation with fault-aware placement; prints
  paired controller-on/off curves, recovery metrics and the decision log
  (``--decisions PATH`` writes it as JSON).
* ``greedyk`` — greedy-k placement over the full measurement lattice,
  powered by the incremental delta-engine (one base field + K cheap deltas
  per round instead of K rebuilds); bit-identical across executor backends.
* ``obs`` — summarize the observability artifacts of an instrumented run
  (top spans by cumulative time, counters, duration histograms).
* ``journal`` — inspect a sweep checkpoint journal (done/failed/NaN
  counts), compact superseded lines out of it, or ``--merge`` the journals
  of sharded/distributed runs into one.
* ``worker`` — join a sweep served on another machine
  (``--connect HOST:PORT``) and pull cell batches until drained.
* ``serve`` — reproduce a figure with the socket executor: cells are
  served to ``worker`` processes instead of computed locally.
* ``place-serve`` — long-running placement service: answers concurrent
  placement queries from a shared expected-LE field cache
  (:mod:`repro.serve`; DESIGN §14).
* ``place-client`` — query a running placement service (field spec +
  algorithm in, placement + base statistics out; ``--repeat`` shows the
  cache warming up, ``--prom`` dumps the server's live counters).

Long sweeps are resilient: ``--workers N`` fans cells across processes and
``--journal PATH`` checkpoints every completed cell to a JSONL file, so an
interrupted ``reproduce`` resumes instead of recomputing.  ``--executor
{serial,pool,socket}`` picks where cells run (``--chunk`` sets the cells
per dispatch, ``--bind`` the socket listen address); see
:mod:`repro.sim.executors`.

Any command can be observed: ``--trace DIR`` writes a JSONL span trace and
a metrics snapshot into ``DIR`` (render them with ``beaconplace obs DIR``)
and ``--profile`` prints a per-stage wall-clock breakdown plus the top
cProfile entries.  Both are off by default and the uninstrumented path is
byte-identical.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .faults import (
    BatteryFault,
    CompositeFault,
    CrashFault,
    DriftFault,
    IntermittentFault,
    NoFaults,
)
from .localization import overlap_ratio_sweep
from .obs import (
    METRICS_FILENAME,
    ObsSession,
    TRACE_FILENAME,
    compact_journal,
    format_journal_summary,
    format_status,
    format_trace_tree,
    inspect_journal,
    merge_journals,
    read_status,
    snapshot_to_prometheus,
    summarize_run_dir,
)
from .placement import GridPlacement, MaxPlacement, RandomPlacement
from .protocol import ProtocolConnectivityEstimator
from .selfheal import ControllerConfig, selfheal_timeline
from .sim import (
    PAPER_NOISE_LEVELS,
    TimelineConfig,
    WorkerRejected,
    bench_config,
    build_world,
    derive_rng,
    fault_error_timeline,
    make_executor,
    mean_error_curve,
    placement_improvement_curves,
    resilient_mean_error_curve,
    resilient_placement_improvement_curves,
    run_placement_trial,
    run_worker,
    write_curve_set,
    write_time_curve_set,
)
from .sim.results import CurveSet
from .viz import format_curve_set, format_table, format_timeline_set, line_chart

__all__ = ["main", "build_parser"]


def _config_from_args(args) -> "object":
    config = bench_config()
    if args.fields is not None:
        config = config.with_fields(args.fields)
    if args.counts:
        config = config.with_counts(args.counts)
    return config


def _paper_algorithms(config):
    return [
        RandomPlacement(),
        MaxPlacement(),
        GridPlacement.paper_configuration(config.side, config.radio_range, config.num_grids),
    ]


def _emit(curve_set: CurveSet, args, csv_suffix: str = "") -> None:
    print(format_curve_set(curve_set))
    series = [(c.label, c.densities, c.values) for c in curve_set.curves]
    print()
    print(
        line_chart(
            series,
            title=curve_set.title,
            x_label="beacons per m^2",
            y_label="meters",
            y_min=0.0,
        )
    )
    if args.csv:
        target = args.csv
        if csv_suffix:
            from pathlib import Path

            p = Path(target)
            target = p.with_name(p.stem + csv_suffix + p.suffix)
        path = write_curve_set(curve_set, target)
        print(f"\nwrote {path}")


def _cmd_table1(args) -> int:
    config = _config_from_args(args)
    rows = [
        ("Side", f"{config.side:g} m"),
        ("R", f"{config.radio_range:g} m"),
        ("step", f"{config.step:g} m"),
        ("N_G", str(config.num_grids)),
        ("P_T (derived)", str(config.num_measurement_points)),
        ("gridSide = 2R (derived)", f"{config.grid_side:g} m"),
        ("P_G (derived)", f"{config.points_per_grid:.0f}"),
        ("density sweep", f"{config.beacon_counts[0]}..{config.beacon_counts[-1]} beacons"),
        ("noise levels", ", ".join(f"{n:g}" for n in config.noise_levels)),
        ("fields per density", str(config.fields_per_density)),
    ]
    print(format_table(("parameter", "value"), rows))
    return 0


def _executor_from_args(args):
    """The CellExecutor requested by --executor/--chunk, built once per run.

    The instance is cached on ``args`` so every sweep of a multi-panel
    figure shares it — for the socket backend that means workers stay
    connected across panels; ``main`` closes it when the command finishes.
    ``None`` means "no explicit choice": the sweep layer's default (serial
    or pool, from ``--workers``) applies.
    """
    executor = getattr(args, "_executor", None)
    if executor is not None:
        return executor
    name = args.executor
    if name is None and args.chunk is not None and args.workers > 1:
        name = "pool"  # --chunk alone upgrades the default pool to chunked
    if name is None:
        return None
    executor = make_executor(
        name, workers=args.workers, chunk=args.chunk,
        bind=args.bind or ("127.0.0.1", 0),
    )
    if name == "socket":
        host, port = executor.address
        print(
            f"serving sweep cells on {host}:{port} — join with: "
            f"beaconplace worker --connect {host}:{port}",
            file=sys.stderr,
        )
    args._executor = executor
    return executor


def _resilient_requested(args) -> bool:
    return (
        args.workers > 1
        or args.journal is not None
        or args.executor is not None
        or args.chunk is not None
    )


def _mean_curve(config, noise, args):
    """A figure 4/6 series, resilient when --workers/--journal ask for it.

    One journal file serves a whole multi-noise figure: the fingerprint
    covers (kind, config) while each cell key carries its noise level.
    """
    if _resilient_requested(args):
        return resilient_mean_error_curve(
            config,
            noise,
            workers=args.workers,
            journal_path=args.journal,
            progress=_progress(args),
            executor=_executor_from_args(args),
        )
    return mean_error_curve(config, noise, progress=_progress(args))


def _improvement(config, noise, algorithms, args):
    """Figure 5/7–9 curve sets, resilient when --workers/--journal ask."""
    if _resilient_requested(args):
        return resilient_placement_improvement_curves(
            config,
            noise,
            algorithms,
            workers=args.workers,
            journal_path=args.journal,
            progress=_progress(args),
            executor=_executor_from_args(args),
        )
    return placement_improvement_curves(config, noise, algorithms, progress=_progress(args))


def _cmd_reproduce(args) -> int:
    config = _config_from_args(args)
    figure = args.figure
    if figure == "fig4":
        curve = _mean_curve(config, 0.0, args)
        _emit(CurveSet("Figure 4: mean localization error vs density (Ideal)", [curve]), args)
        return 0
    if figure == "fig6":
        curves = [_mean_curve(config, noise, args) for noise in PAPER_NOISE_LEVELS]
        _emit(CurveSet("Figure 6: mean localization error vs density (Noise)", curves), args)
        return 0
    if figure == "fig5":
        mean_set, median_set = _improvement(config, 0.0, _paper_algorithms(config), args)
        mean_set.title = "Figure 5a: improvement in mean error (Ideal)"
        median_set.title = "Figure 5b: improvement in median error (Ideal)"
        _emit(mean_set, args, csv_suffix="_mean")
        print()
        _emit(median_set, args, csv_suffix="_median")
        return 0
    algorithm = {"fig7": RandomPlacement(), "fig8": MaxPlacement()}.get(figure)
    if algorithm is None:
        algorithm = GridPlacement.paper_configuration(
            config.side, config.radio_range, config.num_grids
        )
    mean_curves, median_curves = [], []
    for noise in PAPER_NOISE_LEVELS:
        mean_set, median_set = _improvement(config, noise, [algorithm], args)
        label = "Ideal" if noise == 0.0 else f"Noise={noise:g}"
        mean_curves.append(_relabel(mean_set.curves[0], label))
        median_curves.append(_relabel(median_set.curves[0], label))
    number = {"fig7": "7", "fig8": "8", "fig9": "9"}[figure]
    name = algorithm.name.capitalize()
    _emit(
        CurveSet(f"Figure {number}a: {name} improvement in mean error", mean_curves),
        args,
        csv_suffix="_mean",
    )
    print()
    _emit(
        CurveSet(f"Figure {number}b: {name} improvement in median error", median_curves),
        args,
        csv_suffix="_median",
    )
    return 0


def _relabel(curve, label):
    from dataclasses import replace

    return replace(curve, label=label)


def _progress(args):
    if not args.verbose:
        return None

    def report(message: str) -> None:
        print(f"  … {message}", file=sys.stderr)

    return report


def _cmd_place(args) -> int:
    config = _config_from_args(args)
    world = build_world(config, args.noise, args.beacons, args.field_index)
    algorithms = _paper_algorithms(config)
    if args.algorithm != "all":
        algorithms = [a for a in algorithms if a.name == args.algorithm]

    def rng_for(name):
        return derive_rng(config.seed, "cli", name, args.noise, args.beacons, args.field_index)

    outcomes = run_placement_trial(world, algorithms, rng_for)
    base = outcomes[0]
    print(
        f"{args.beacons} beacons (density {args.beacons / config.side**2:.4f}/m^2), "
        f"noise {args.noise:g}: mean LE {base.base_mean:.2f} m, median {base.base_median:.2f} m"
    )
    rows = [
        (
            o.algorithm,
            f"({o.pick.x:.1f}, {o.pick.y:.1f})",
            o.improvement_mean,
            o.improvement_median,
        )
        for o in outcomes
    ]
    print(
        format_table(
            ("algorithm", "placed at", "mean gain (m)", "median gain (m)"), rows
        )
    )
    return 0


def _cmd_protocol(args) -> int:
    config = _config_from_args(args)
    world = build_world(config, args.noise, args.beacons, args.field_index)
    rng = derive_rng(config.seed, "cli-protocol", args.beacons, args.noise)
    points = world.points()[:: args.stride]
    estimator = ProtocolConnectivityEstimator(
        period=args.period,
        listen_time=args.listen_time,
        message_duration=args.message_duration,
        cm_thresh=args.cm_thresh,
    )
    result = estimator.run(points, world.field, world.realization, rng)
    geometric = world.realization.connectivity(points, world.field)
    agreement = float((result.connectivity == geometric).mean())
    rows = [
        ("clients", points.shape[0]),
        ("messages sent", result.messages_sent),
        ("decoded", result.decoded_messages),
        ("collision losses", result.collision_losses),
        ("propagation losses", result.propagation_losses),
        ("collision rate", f"{result.collision_rate:.4f}"),
        ("agreement with geometric model", f"{agreement:.4f}"),
    ]
    print(format_table(("metric", "value"), rows))
    return 0


def _cmd_bounds(args) -> int:
    results = overlap_ratio_sweep()
    rows = [
        (r.overlap_ratio, r.max_error_fraction, r.mean_error_fraction)
        for r in results
    ]
    print(
        format_table(
            ("R/d", "max error (fraction of d)", "mean error (fraction of d)"),
            rows,
            float_digits=3,
        )
    )
    print("\npaper (§2.2): max error 0.5d at R/d=1, falling to 0.25d by R/d=4")
    return 0


def _parse_workers(text: str) -> int:
    try:
        workers = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid worker count {text!r}") from exc
    if workers < 1:
        raise argparse.ArgumentTypeError(f"workers must be >= 1, got {workers}")
    return workers


def _parse_counts(text: str) -> list[int]:
    try:
        counts = [int(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid count list {text!r}") from exc
    if not counts:
        raise argparse.ArgumentTypeError("count list must not be empty")
    return counts


def _cmd_survey(args) -> int:
    from .exploration import (
        GpsErrorModel,
        SurveyAgent,
        lawnmower_path,
        path_length,
        random_walk_path,
        spiral_path,
    )
    from .localization import CentroidLocalizer
    from .placement import GridPlacement

    config = _config_from_args(args)
    world = build_world(config, args.noise, args.beacons, args.field_index)
    rng = derive_rng(config.seed, "cli-survey", args.path, args.beacons)
    if args.path == "lawnmower":
        path = lawnmower_path(config.side, args.spacing, args.spacing)
    elif args.path == "spiral":
        path = spiral_path(config.side, args.spacing)
    else:
        path = random_walk_path(config.side, 2000, args.spacing, rng)
    gps = GpsErrorModel(args.gps_sigma, clamp_side=config.side) if args.gps_sigma else None
    agent = SurveyAgent(
        world.field,
        world.realization,
        CentroidLocalizer(config.side, config.policy),
        config.side,
        gps=gps,
    )
    survey = agent.measure_at(path, rng)
    pick = GridPlacement(config.grid_layout()).propose(survey, rng)
    gain_mean, gain_median = world.evaluate_candidate(pick)
    rows = [
        ("path", args.path),
        ("measurements", survey.num_points),
        ("travel", f"{path_length(path):.0f} m"),
        ("surveyed mean LE", f"{survey.mean_error():.2f} m"),
        ("surveyed median LE", f"{survey.median_error():.2f} m"),
        ("grid pick", f"({pick.x:.1f}, {pick.y:.1f})"),
        ("true mean gain", f"{gain_mean:.3f} m"),
        ("true median gain", f"{gain_median:.3f} m"),
    ]
    print(format_table(("metric", "value"), rows))
    return 0


def _cmd_activate(args) -> int:
    from .placement import DensityAdaptiveActivation
    from .sim import TrialWorld

    config = _config_from_args(args)
    world = build_world(config, args.noise, args.beacons, args.field_index)
    base_mean, _ = world.base_stats()
    result = DensityAdaptiveActivation(target_neighbors=args.target).run(
        world.field,
        world.realization,
        derive_rng(config.seed, "cli-activate", args.beacons, args.target),
    )
    active_world = TrialWorld(
        result.active_field, world.realization, world.grid, world.layout, world.localizer
    )
    active_mean, _ = active_world.base_stats()
    rows = [
        ("deployed beacons", len(world.field)),
        ("active beacons", result.num_active),
        ("duty fraction", f"{result.duty_fraction:.0%}"),
        ("mean LE (all on)", f"{base_mean:.2f} m"),
        ("mean LE (active set)", f"{active_mean:.2f} m"),
    ]
    print(format_table(("metric", "value"), rows))
    return 0


def _cmd_regions(args) -> int:
    from .geometry import decompose_regions

    config = _config_from_args(args)
    world = build_world(config, args.noise, args.beacons, args.field_index)
    regions = decompose_regions(
        world.connectivity(), world.grid, split_spatially=args.split
    )
    areas = regions.covered_region_areas()
    rows = [
        ("beacons", args.beacons),
        ("regions (total)", regions.num_regions),
        ("covered regions", regions.num_covered_regions),
        ("mean covered area", f"{regions.mean_covered_region_area():.1f} m^2"),
        ("largest covered area", f"{areas.max():.1f} m^2" if areas.size else "n/a"),
        ("uncovered area", f"{regions.region_areas.sum() - areas.sum():.1f} m^2"),
    ]
    print(format_table(("metric", "value"), rows))
    return 0


def _cmd_report(args) -> int:
    from .viz import ReportBuilder

    config = _config_from_args(args)
    builder = ReportBuilder("Adaptive Beacon Placement — evaluation report")
    builder.add_section(
        "Configuration",
        f"terrain {config.side:g} m, R = {config.radio_range:g} m, "
        f"{config.fields_per_density} fields per density, "
        f"counts {list(config.beacon_counts)}",
    )
    curve = mean_error_curve(config, 0.0, progress=_progress(args))
    builder.add_section("Mean error vs density (ideal) — Figure 4")
    builder.add_curve_set(CurveSet("Figure 4", [curve]))
    mean_set, median_set = placement_improvement_curves(
        config, 0.0, _paper_algorithms(config), progress=_progress(args)
    )
    builder.add_section("Placement improvements (ideal) — Figure 5")
    builder.add_curve_set(mean_set)
    builder.add_curve_set(median_set, chart=False)
    out = builder.write(args.output)
    print(f"wrote {out}")
    return 0


def _parse_floats(text: str) -> list[float]:
    try:
        values = [float(part) for part in text.split(",") if part.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid float list {text!r}") from exc
    if not values:
        raise argparse.ArgumentTypeError("float list must not be empty")
    return values


def _fault_model_from_args(args):
    if args.mode == "crash":
        return CrashFault(args.lifetime)
    if args.mode == "battery":
        return BatteryFault(args.lifetime, spread=args.spread)
    if args.mode == "flap":
        return IntermittentFault(args.up_time, args.down_time)
    if args.mode == "drift":
        return DriftFault(args.drift_rate, args.max_drift)
    return CompositeFault(
        [CrashFault(args.lifetime), DriftFault(args.drift_rate, args.max_drift)]
    )


def _cmd_faults(args) -> int:
    config = _config_from_args(args)
    model = _fault_model_from_args(args)
    algorithms = _paper_algorithms(config)
    rows = []
    for t in args.times:
        alive: list[float] = []
        base_errors: list[float] = []
        gains: dict[str, list[float]] = {a.name: [] for a in algorithms}
        for index in range(config.fields_per_density):
            world = build_world(
                config, args.noise, args.beacons, index, faults=model, fault_time=t
            )
            alive.append(len(world.field))

            def rng_for(name, t=t, index=index):
                return derive_rng(
                    config.seed, "cli-faults", name, t, args.beacons, index
                )

            outcomes = run_placement_trial(world, algorithms, rng_for)
            base_errors.append(outcomes[0].base_mean)
            for o in outcomes:
                gains[o.algorithm].append(o.improvement_mean)
        rows.append(
            (
                f"{t:g}",
                f"{float(np.mean(alive)):.1f}/{args.beacons}",
                float(np.nanmean(base_errors)),
                *(float(np.nanmean(gains[a.name])) for a in algorithms),
            )
        )
    header = (
        "time",
        "alive",
        "mean LE (m)",
        *(f"{a.name} gain (m)" for a in algorithms),
    )
    print(
        f"fault mode {args.mode}, {args.beacons} beacons, noise {args.noise:g}, "
        f"{config.fields_per_density} field(s) per point"
    )
    print(format_table(header, rows))
    return 0


def _parse_times(text: str) -> list[float]:
    """A time axis: ``START:STOP:NUM`` (inclusive linspace) or comma floats."""
    if ":" in text:
        parts = text.split(":")
        if len(parts) != 3:
            raise argparse.ArgumentTypeError(
                f"expected START:STOP:NUM, got {text!r}"
            )
        try:
            start, stop = float(parts[0]), float(parts[1])
            num = int(parts[2])
        except ValueError as exc:
            raise argparse.ArgumentTypeError(f"invalid time range {text!r}") from exc
        if num < 2:
            raise argparse.ArgumentTypeError(
                f"time range needs at least 2 points, got {num}"
            )
        if stop <= start:
            raise argparse.ArgumentTypeError(
                f"time range must be increasing, got {text!r}"
            )
        return [float(t) for t in np.linspace(start, stop, num)]
    return _parse_floats(text)


_TIMELINE_MODELS = ["crash", "battery", "intermittent", "flap", "drift", "mixed", "none"]


def _parse_model_names(text: str) -> list[str]:
    names = [part.strip() for part in text.split(",") if part.strip()]
    if not names:
        raise argparse.ArgumentTypeError("model list must not be empty")
    for name in names:
        if name not in _TIMELINE_MODELS:
            raise argparse.ArgumentTypeError(
                f"unknown fault model {name!r} (choose from {', '.join(_TIMELINE_MODELS)})"
            )
    if len(set(names)) != len(names):
        raise argparse.ArgumentTypeError(f"duplicate fault model in {names}")
    return names


def _timeline_models(args):
    """The (name, model) list for the timeline sweep, from the fault flags."""

    def build(name):
        if name == "crash":
            return CrashFault(args.lifetime)
        if name == "battery":
            return BatteryFault(args.lifetime, spread=args.spread)
        if name in ("intermittent", "flap"):
            return IntermittentFault(args.up_time, args.down_time)
        if name == "drift":
            return DriftFault(args.drift_rate, args.max_drift)
        if name == "mixed":
            return CompositeFault(
                [CrashFault(args.lifetime), DriftFault(args.drift_rate, args.max_drift)]
            )
        return NoFaults()

    return [(name, build(name)) for name in args.models]


def _emit_timeline(curve_set, args, csv_suffix: str = "") -> None:
    print(format_timeline_set(curve_set))
    series = [(c.label, c.times, c.values) for c in curve_set.curves]
    print()
    print(
        line_chart(
            series,
            title=curve_set.title,
            x_label="time",
            y_label="meters",
            y_min=0.0,
        )
    )
    if args.csv:
        target = args.csv
        if csv_suffix:
            from pathlib import Path

            p = Path(target)
            target = p.with_name(p.stem + csv_suffix + p.suffix)
        path = write_time_curve_set(curve_set, target)
        print(f"\nwrote {path}")


def _cmd_timeline(args) -> int:
    config = _config_from_args(args)
    mean_set, upper_set = fault_error_timeline(
        config,
        _timeline_from_args(args),
        _timeline_models(args),
        workers=args.workers,
        journal_path=args.journal,
        progress=_progress(args),
        executor=_executor_from_args(args),
    )
    _emit_timeline(mean_set, args, csv_suffix="_mean")
    print()
    _emit_timeline(upper_set, args, csv_suffix=f"_p{args.percentile:g}")
    failed = mean_set.meta.get("failed_cells", 0)
    if failed:
        print(f"\nwarning: {failed} cell(s) exhausted retries (NaN-degraded)", file=sys.stderr)
    return 0


def _timeline_from_args(args) -> TimelineConfig:
    return TimelineConfig(
        times=tuple(args.times),
        beacons=args.beacons,
        noise=args.noise,
        trials=args.trials,
        percentile=args.percentile,
        resamples=args.resamples,
    )


def _cmd_selfheal(args) -> int:
    config = _config_from_args(args)
    controller = ControllerConfig(
        mean_threshold=args.mean_threshold,
        alive_threshold=args.alive_threshold,
        budget=args.budget,
        repair_k=args.repair_k,
        horizon=args.horizon,
        hysteresis=args.hysteresis,
        catastrophic_fraction=args.catastrophic,
        penalty=args.penalty,
    )
    result = selfheal_timeline(
        config,
        _timeline_from_args(args),
        _timeline_models(args),
        controller,
        workers=args.workers,
        journal_path=args.journal,
        progress=_progress(args),
        executor=_executor_from_args(args),
    )
    for curve_set, suffix in (
        (result.off_mean, "_off_mean"),
        (result.off_upper, f"_off_p{args.percentile:g}"),
        (result.on_mean, "_on_mean"),
        (result.on_upper, f"_on_p{args.percentile:g}"),
    ):
        _emit_timeline(curve_set, args, csv_suffix=suffix)
        print()
    print("recovery summary (mean LE vs the controller threshold):")
    for name in result.on_mean.labels():
        on = result.on_mean.curve(name)
        off = result.off_mean.curve(name)
        print(
            f"  {name}: repairs={result.repairs[name]} "
            f"added={result.added[name]} moved={result.moved[name]} | "
            f"time-to-recover on={on.meta['time_to_recover']:g} "
            f"off={off.meta['time_to_recover']:g} | "
            f"area-under-degradation on={on.meta['area_under_degradation']:g} "
            f"off={off.meta['area_under_degradation']:g}"
        )
    if args.decisions:
        import json
        from pathlib import Path

        payload = {
            "controller": controller.spec(),
            "decisions": result.decisions,
            "repairs": result.repairs,
            "added": result.added,
            "moved": result.moved,
        }
        Path(args.decisions).write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n"
        )
        print(f"\nwrote decision log {args.decisions}")
    failed = result.on_mean.meta.get("failed_cells", 0)
    if failed:
        print(
            f"\nwarning: {failed} cell(s) exhausted retries (NaN-degraded)",
            file=sys.stderr,
        )
    return 0


def _cmd_greedyk(args) -> int:
    """Greedy-k placement sweep through the incremental delta-engine.

    Cells run through :func:`repro.sim.run_cells`, so ``--workers``,
    ``--executor`` and ``--journal`` all apply; results are bit-identical
    across backends (the CI incremental-smoke job compares serial vs pool
    CSVs byte for byte).
    """
    from .sim import RetryPolicy, SweepJournal, run_cells, sweep_fingerprint
    from .sim.incremental import _greedyk_cell

    config = _config_from_args(args)
    counts = args.counts if args.counts else [args.beacons]
    jobs = []
    for noise in args.noise:
        for count in counts:
            for index in range(config.fields_per_density):
                key = ("greedyk", noise, count, index, args.k, args.subsample)
                jobs.append(
                    (key, (config, noise, count, index, args.k, args.subsample))
                )
    fingerprint = sweep_fingerprint(
        "greedy-k", config, {"k": args.k, "subsample": args.subsample}
    )
    journal = SweepJournal.open(args.journal, fingerprint) if args.journal else None
    results = run_cells(
        jobs,
        _greedyk_cell,
        workers=args.workers,
        policy=RetryPolicy(),
        journal=journal,
        progress=_progress(args),
        executor=_executor_from_args(args),
    )

    rows = []
    for key, _ in jobs:
        _, noise, count, index, k, subsample = key
        cell = results.get(("greedyk", noise, count, index, k, subsample))
        if cell is None:
            rows.append((noise, count, index, float("nan"), float("nan"), ""))
            continue
        picks = ";".join(f"{x:g}/{y:g}" for x, y in cell["picks"])
        rows.append(
            (noise, count, index, cell["base_mean"], cell["final_mean"], picks)
        )

    header = ["noise", "beacons", "field", "base_mean", "final_mean", "picks"]
    print(
        format_table(
            ["noise", "beacons", "field", "base mean", f"mean after +{args.k}", "picks"],
            [
                [f"{n:g}", str(c), str(i), f"{b:.4f}", f"{f:.4f}", p]
                for n, c, i, b, f, p in rows
            ],
        )
    )
    finite = [(b, f) for _, _, _, b, f, _ in rows if b == b and f == f]
    if finite:
        base = sum(b for b, _ in finite) / len(finite)
        after = sum(f for _, f in finite) / len(finite)
        print(
            f"\nmean LE over {len(finite)} cell(s): "
            f"{base:.4f} -> {after:.4f} m (greedy-{args.k})"
        )
    if args.csv:
        from pathlib import Path

        lines = [",".join(header)]
        for n, c, i, b, f, p in rows:
            lines.append(f"{n!r},{c},{i},{b!r},{f!r},{p}")
        Path(args.csv).write_text("\n".join(lines) + "\n")
        print(f"\nwrote {args.csv}")
    failed = sum(1 for _, _, _, b, _, _ in rows if b != b)
    if failed:
        print(
            f"\nwarning: {failed} cell(s) exhausted retries (NaN-degraded)",
            file=sys.stderr,
        )
    return 0


def _cmd_obs(args) -> int:
    try:
        if args.tree:
            from pathlib import Path

            print(format_trace_tree(Path(args.run_dir) / TRACE_FILENAME))
        else:
            print(summarize_run_dir(args.run_dir))
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _status_complete(status: dict) -> bool:
    cells = status.get("cells", {})
    settled = (
        cells.get("done", 0) + cells.get("failed", 0) + cells.get("degraded", 0)
    )
    return status.get("state") == "complete" or settled >= cells.get("total", 0)


def _cmd_top(args) -> int:
    """Live refreshing view of a running sweep's ``status.json``."""
    import time

    waiting_logged = False
    try:
        while True:
            status = read_status(args.run_dir)
            if status is None:
                if args.once:
                    print(
                        f"error: no status.json under {args.run_dir} "
                        "(is a journaled sweep running there?)",
                        file=sys.stderr,
                    )
                    return 1
                if not waiting_logged:
                    print(f"waiting for status.json under {args.run_dir} …")
                    waiting_logged = True
            else:
                if not args.once and sys.stdout.isatty():
                    sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
                print(format_status(status))
                if args.once or _status_complete(status):
                    return 0
                print()  # frame separator for non-tty consumers
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_status(args) -> int:
    """One-shot sweep status; ``--prom`` renders Prometheus text format."""
    import json
    from pathlib import Path

    status = read_status(args.run_dir)
    if args.prom:
        sections = []
        metrics_path = Path(args.run_dir) / METRICS_FILENAME
        if metrics_path.exists():
            try:
                with metrics_path.open() as handle:
                    sections.append(snapshot_to_prometheus(json.load(handle)))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                print(f"error: unreadable {metrics_path}: {exc}", file=sys.stderr)
                return 1
        if status is not None:
            cells = status.get("cells", {})
            rate = status.get("rate", {})
            lines = []
            for name, value in (
                ("sweep_cells_total", cells.get("total", 0)),
                ("sweep_cells_done", cells.get("done", 0)),
                ("sweep_cells_failed", cells.get("failed", 0)),
                ("sweep_cells_degraded", cells.get("degraded", 0)),
                ("sweep_cells_per_second", rate.get("cells_per_second", 0.0)),
                ("sweep_workers", len(status.get("workers", {}))),
            ):
                metric = f"beaconplace_{name}"
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {value}")
            sections.append("\n".join(lines) + "\n")
        if not sections:
            print(
                f"error: neither {METRICS_FILENAME} nor status.json under "
                f"{args.run_dir}",
                file=sys.stderr,
            )
            return 1
        print("".join(sections), end="")
        return 0
    if status is None:
        print(
            f"error: no status.json under {args.run_dir} "
            "(journaled sweeps write one next to the journal)",
            file=sys.stderr,
        )
        return 1
    print(format_status(status))
    return 0


def _cmd_journal(args) -> int:
    try:
        if args.merge is not None:
            stats = merge_journals(args.merge, args.paths)
            print(
                f"merged {stats.inputs} journal(s) into {stats.out}: "
                f"{stats.cells} cell(s), {stats.superseded} superseded "
                "line(s) dropped"
            )
            print(format_journal_summary(inspect_journal(stats.out), keys=args.cells))
            return 0
        if len(args.paths) > 1:
            print(
                "error: multiple journals need --merge OUT (inspection takes one)",
                file=sys.stderr,
            )
            return 1
        path = args.paths[0]
        if args.compact:
            kept, dropped = compact_journal(path)
            print(f"compacted {path}: kept {kept} line(s), dropped {dropped} superseded")
        print(format_journal_summary(inspect_journal(path), keys=args.cells))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _parse_hostport(text: str) -> tuple:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    try:
        return host, int(port)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid port in {text!r}") from exc


def _cmd_worker(args) -> int:
    try:
        cells = run_worker(
            args.connect,
            fingerprint=args.fingerprint,
            max_batches=args.max_batches,
            connect_timeout=args.connect_timeout,
            progress=_progress(args),
        )
    except WorkerRejected as exc:
        print(f"error: server rejected this worker: {exc}", file=sys.stderr)
        return 1
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"worker done: {cells} cell(s) processed")
    return 0


def _cmd_serve(args) -> int:
    """``reproduce`` with cells served to socket workers instead of run here."""
    args.executor = "socket"
    return _cmd_reproduce(args)


def _cmd_place_serve(args) -> int:
    """Run the placement service until interrupted (or --max-requests)."""
    import asyncio

    from .serve import PlacementServer

    async def run() -> int:
        server = PlacementServer(
            args.bind or ("127.0.0.1", 0),
            cache_capacity=args.cache,
            heartbeat=args.heartbeat,
            max_requests=args.max_requests,
        )
        await server.start()
        host, port = server.address
        print(
            f"placement service on {host}:{port} — query with: "
            f"beaconplace place-client --connect {host}:{port}",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.aclose()
        print(
            f"served {server.requests} request(s), "
            f"{server.cache_hits} cache hit(s), {server.errors} error(s)"
        )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _cmd_place_client(args) -> int:
    """One conversation with a placement service: place, then show status."""
    from .serve import PlacementClient, PlacementRequest, PlacementServiceError

    try:
        request = PlacementRequest(
            side=args.side,
            radio_range=args.radio_range,
            seed=args.seed,
            noise=args.noise,
            count=args.beacons,
            field_index=args.field_index,
            algorithm=args.algorithm,
            k=args.k,
            subsample=args.subsample,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        with PlacementClient(args.connect, retry_for=args.connect_timeout) as client:
            for _ in range(args.repeat):
                solution = client.place(request)
                picks = "; ".join(f"({x:.1f}, {y:.1f})" for x, y in solution.picks)
                print(
                    f"{solution.algorithm}: {picks} | base mean "
                    f"{solution.base_mean:.2f} m, median "
                    f"{solution.base_median:.2f} m | "
                    f"{'cache hit' if solution.cache_hit else 'cold'} "
                    f"({solution.fingerprint})"
                )
            if args.prom:
                print(client.status(prom=True)["prom"], end="")
            else:
                status = client.status()
                cache = status["cache"]
                print(
                    f"server: {status['requests']} request(s), "
                    f"{cache['hits']} cache hit(s), "
                    f"{cache['size']}/{cache['capacity']} field(s) cached",
                    file=sys.stderr,
                )
    except PlacementServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach placement service: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="beaconplace",
        description=(
            "Adaptive beacon placement for RF-proximity localization "
            "(reproduction of Bulusu, Heidemann, Estrin; ICDCS 2001)"
        ),
    )
    parser.add_argument("--fields", type=int, default=None, help="fields per density")
    parser.add_argument(
        "--counts",
        type=_parse_counts,
        default=None,
        help="beacon-count sweep override, comma-separated (e.g. 20,60,120)",
    )
    parser.add_argument("--csv", default=None, help="also write results to this CSV path")
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        help="worker processes for reproduce sweeps (1 = in-process)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        help=(
            "JSONL checkpoint journal for reproduce sweeps; an interrupted "
            "run resumes from it instead of recomputing"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "pool", "socket"],
        default=None,
        help=(
            "where sweep cells run: in-process, on a local spawn pool, or "
            "served over TCP to 'beaconplace worker' processes (default: "
            "serial, or pool when --workers > 1)"
        ),
    )
    parser.add_argument(
        "--chunk",
        type=_parse_workers,
        default=None,
        metavar="N",
        help=(
            "cells shipped per dispatch to a pool/socket worker "
            "(default: sized automatically)"
        ),
    )
    parser.add_argument(
        "--bind",
        type=_parse_hostport,
        default=None,
        metavar="HOST:PORT",
        help=(
            "listen address for --executor socket (default 127.0.0.1:0 — "
            "a free port, announced on stderr)"
        ),
    )
    parser.add_argument(
        "--kernels",
        choices=["batch", "scalar"],
        default=None,
        help=(
            "cell evaluation path: 'batch' (default) pre-computes dispatch "
            "chunks through the vectorized LE kernels, 'scalar' forces the "
            "legacy per-cell path (A/B measurement; also REPRO_KERNELS)"
        ),
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="progress to stderr")
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help=(
            "observability run directory: span trace (trace.jsonl) and "
            "metrics snapshot (metrics.json) land here; summarize with "
            "'beaconplace obs DIR'"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile the command (cProfile + per-stage wall-clock "
            "breakdown, printed at exit; also written to the --trace dir)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 and derived quantities")

    rep = sub.add_parser("reproduce", help="reproduce a figure's data series")
    rep.add_argument(
        "figure", choices=["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]
    )

    place = sub.add_parser("place", help="run one adaptive-placement trial")
    place.add_argument("--beacons", type=int, default=40)
    place.add_argument("--noise", type=float, default=0.0)
    place.add_argument("--field-index", type=int, default=0)
    place.add_argument(
        "--algorithm", choices=["random", "max", "grid", "all"], default="all"
    )

    proto = sub.add_parser("protocol", help="run the §2.2 protocol simulation")
    proto.add_argument("--beacons", type=int, default=40)
    proto.add_argument("--noise", type=float, default=0.0)
    proto.add_argument("--field-index", type=int, default=0)
    proto.add_argument("--period", type=float, default=1.0)
    proto.add_argument("--listen-time", type=float, default=20.0)
    proto.add_argument("--message-duration", type=float, default=0.005)
    proto.add_argument("--cm-thresh", type=float, default=0.75)
    proto.add_argument("--stride", type=int, default=100, help="client subsampling")

    sub.add_parser("bounds", help="uniform-grid error bounds vs overlap ratio")

    survey = sub.add_parser("survey", help="drive a survey robot along a path")
    survey.add_argument("--beacons", type=int, default=30)
    survey.add_argument("--noise", type=float, default=0.3)
    survey.add_argument("--field-index", type=int, default=0)
    survey.add_argument(
        "--path", choices=["lawnmower", "spiral", "walk"], default="lawnmower"
    )
    survey.add_argument("--spacing", type=float, default=5.0)
    survey.add_argument("--gps-sigma", type=float, default=0.0)

    activate = sub.add_parser("activate", help="density-adaptive self-scheduling")
    activate.add_argument("--beacons", type=int, default=240)
    activate.add_argument("--noise", type=float, default=0.0)
    activate.add_argument("--field-index", type=int, default=0)
    activate.add_argument("--target", type=int, default=5, help="target active neighbours")

    regions = sub.add_parser("regions", help="localization-region statistics")
    regions.add_argument("--beacons", type=int, default=40)
    regions.add_argument("--noise", type=float, default=0.0)
    regions.add_argument("--field-index", type=int, default=0)
    regions.add_argument(
        "--split", action="store_true", help="split regions into contiguous loci"
    )

    report = sub.add_parser("report", help="write a markdown evaluation report")
    report.add_argument("--output", default="beaconplace-report.md")

    faults = sub.add_parser(
        "faults", help="degrade a deployment under a fault model over time"
    )
    faults.add_argument("--beacons", type=int, default=40)
    faults.add_argument("--noise", type=float, default=0.0)
    faults.add_argument(
        "--mode",
        choices=["crash", "flap", "battery", "drift", "mixed"],
        default="crash",
    )
    faults.add_argument(
        "--lifetime",
        type=float,
        default=50.0,
        help="mean beacon lifetime (crash/battery/mixed)",
    )
    faults.add_argument(
        "--spread", type=float, default=0.1, help="battery lifetime spread fraction"
    )
    faults.add_argument(
        "--up-time", type=float, default=30.0, help="flap mean up-time"
    )
    faults.add_argument(
        "--down-time", type=float, default=10.0, help="flap mean down-time"
    )
    faults.add_argument(
        "--drift-rate",
        type=float,
        default=0.5,
        help="drift magnitude in m per unit sqrt(time) (drift/mixed)",
    )
    faults.add_argument(
        "--max-drift", type=float, default=10.0, help="drift displacement cap in m"
    )
    faults.add_argument(
        "--times",
        type=_parse_floats,
        default=[0.0, 25.0, 50.0, 100.0],
        help="snapshot times, comma-separated",
    )

    def add_timeline_arguments(p) -> None:
        """Flags shared by the ``timeline`` and ``selfheal`` sweeps."""
        p.add_argument(
            "--models",
            type=_parse_model_names,
            default=["crash", "battery", "intermittent"],
            help=(
                "fault models to sweep, comma-separated from "
                f"{{{','.join(_TIMELINE_MODELS)}}} ('flap' is an alias for "
                "'intermittent')"
            ),
        )
        p.add_argument(
            "--times",
            type=_parse_times,
            default=[0.0, 25.0, 50.0, 75.0, 100.0],
            help=(
                "snapshot times: comma-separated floats, or START:STOP:NUM for "
                "an inclusive linspace (e.g. 0:86400:24)"
            ),
        )
        p.add_argument("--beacons", type=int, default=40)
        p.add_argument("--noise", type=float, default=0.0)
        p.add_argument(
            "--trials", type=int, default=8, help="random fields per fault model"
        )
        p.add_argument(
            "--percentile",
            type=float,
            default=90.0,
            help="upper-tail LE percentile reported alongside the mean",
        )
        p.add_argument(
            "--resamples",
            type=int,
            default=500,
            help="bootstrap iterations behind each confidence interval",
        )
        p.add_argument(
            "--lifetime", type=float, default=50.0,
            help="mean beacon lifetime (crash/battery/mixed)",
        )
        p.add_argument(
            "--spread", type=float, default=0.1, help="battery lifetime spread fraction"
        )
        p.add_argument(
            "--up-time", type=float, default=30.0, help="intermittent mean up-time"
        )
        p.add_argument(
            "--down-time", type=float, default=10.0, help="intermittent mean down-time"
        )
        p.add_argument(
            "--drift-rate", type=float, default=0.5,
            help="drift magnitude in m per unit sqrt(time) (drift/mixed)",
        )
        p.add_argument(
            "--max-drift", type=float, default=10.0, help="drift displacement cap in m"
        )

    timeline = sub.add_parser(
        "timeline",
        help=(
            "error-vs-time curves for several fault models, through the "
            "resilient sweep engine"
        ),
    )
    add_timeline_arguments(timeline)

    selfheal = sub.add_parser(
        "selfheal",
        help=(
            "closed-loop recovery: a repair controller walks each fault "
            "timeline and fights back (paired controller-on/off curves)"
        ),
    )
    add_timeline_arguments(selfheal)
    selfheal.add_argument(
        "--mean-threshold",
        type=float,
        default=15.0,
        help="mean-LE ceiling in meters; exceeding it (or total outage) is a breach",
    )
    selfheal.add_argument(
        "--alive-threshold",
        type=float,
        default=0.0,
        help="minimum surviving fraction of the designed field size",
    )
    selfheal.add_argument(
        "--budget", type=int, default=8,
        help="total beacons the controller may add over the whole timeline",
    )
    selfheal.add_argument(
        "--repair-k", type=int, default=2,
        help="beacons added per repair (capped by the remaining budget)",
    )
    selfheal.add_argument(
        "--horizon", type=float, default=25.0,
        help="survivability look-ahead in seconds for fault-aware placement",
    )
    selfheal.add_argument(
        "--hysteresis", type=float, default=0.9,
        help="re-arm fraction of the mean threshold after a repair",
    )
    selfheal.add_argument(
        "--catastrophic", type=float, default=0.0,
        help=(
            "surviving fraction below which a breach redeploys the "
            "survivors instead of adding beacons (0 disables)"
        ),
    )
    selfheal.add_argument(
        "--penalty", type=float, default=None,
        help="orphaned-point error for fault-aware placement (default: side/2)",
    )
    selfheal.add_argument(
        "--decisions",
        default=None,
        metavar="PATH",
        help="write the controller decision log as JSON to PATH",
    )

    greedyk = sub.add_parser(
        "greedyk",
        help=(
            "greedy-k placement over the full lattice through the "
            "incremental delta-engine (bit-identical across executors)"
        ),
    )
    greedyk.add_argument("--beacons", type=int, default=12, help="initial field size")
    greedyk.add_argument(
        "--noise",
        type=float,
        nargs="+",
        default=[0.0],
        help="noise levels to sweep",
    )
    greedyk.add_argument("--k", type=int, default=2, help="beacons to place greedily")
    greedyk.add_argument(
        "--subsample",
        type=int,
        default=1,
        help="stride over the candidate lattice (2 keeps every second point)",
    )

    obs = sub.add_parser("obs", help="summarize an instrumented run directory")
    obs.add_argument("run_dir", help="directory written by --trace/--profile")
    obs.add_argument(
        "--tree",
        action="store_true",
        help="render the stitched driver→worker→cell trace tree",
    )

    top = sub.add_parser(
        "top", help="live refreshing view of a running journaled sweep"
    )
    top.add_argument("run_dir", help="directory holding the sweep's status.json")
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period (default: 1.0)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one frame and exit (nonzero if no status.json yet)",
    )

    status = sub.add_parser(
        "status", help="one-shot sweep status from a run directory"
    )
    status.add_argument("run_dir", help="directory holding status.json/metrics.json")
    status.add_argument(
        "--prom",
        action="store_true",
        help="emit Prometheus text format instead of the human view",
    )

    journal = sub.add_parser(
        "journal", help="inspect, compact or merge sweep journals"
    )
    journal.add_argument(
        "paths", nargs="+", metavar="path",
        help="JSONL checkpoint journal(s); several only with --merge",
    )
    journal.add_argument(
        "--cells", action="store_true", help="list every cell's latest status"
    )
    journal.add_argument(
        "--compact",
        action="store_true",
        help="drop superseded lines in place (atomic rewrite) before summarizing",
    )
    journal.add_argument(
        "--merge",
        default=None,
        metavar="OUT",
        help=(
            "merge the given journals (shards of one sweep — same "
            "fingerprint) into OUT; duplicate cells resolve last-writer-"
            "wins in the order given"
        ),
    )

    worker = sub.add_parser(
        "worker", help="join a served sweep and pull cell batches"
    )
    worker.add_argument(
        "--connect",
        type=_parse_hostport,
        required=True,
        metavar="HOST:PORT",
        help="address of the serving sweep (see 'serve' / --executor socket)",
    )
    worker.add_argument(
        "--fingerprint",
        default=None,
        help=(
            "expected sweep fingerprint; the server refuses this worker on "
            "mismatch (guards fleets against joining the wrong sweep)"
        ),
    )
    worker.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="exit after this many batches (testing/chaos tools)",
    )
    worker.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to retry the initial connect (workers may start first)",
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "reproduce a figure with cells served to socket workers "
            "(reproduce + --executor socket)"
        ),
    )
    serve.add_argument(
        "figure", choices=["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]
    )

    place_serve = sub.add_parser(
        "place-serve",
        help=(
            "run the placement service: concurrent placement queries "
            "answered from a shared expected-LE field cache"
        ),
    )
    place_serve.add_argument(
        "--cache",
        type=_parse_workers,
        default=256,
        metavar="N",
        help="expected-LE maps held in the server's LRU field cache",
    )
    place_serve.add_argument(
        "--heartbeat",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="advertised heartbeat interval; 3x silence drops a connection",
    )
    place_serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="exit after answering N placements (CI smoke runs)",
    )

    place_client = sub.add_parser(
        "place-client", help="query a running placement service"
    )
    place_client.add_argument(
        "--connect",
        type=_parse_hostport,
        required=True,
        metavar="HOST:PORT",
        help="address of the placement service (see 'place-serve')",
    )
    place_client.add_argument(
        "--algorithm",
        choices=["random", "max", "grid", "greedy"],
        default="grid",
    )
    place_client.add_argument("--beacons", type=int, default=40)
    place_client.add_argument("--noise", type=float, default=0.0)
    place_client.add_argument("--field-index", type=int, default=0)
    place_client.add_argument("--side", type=float, default=100.0)
    place_client.add_argument("--radio-range", type=float, default=15.0)
    place_client.add_argument("--seed", type=int, default=20010416)
    place_client.add_argument("--k", type=int, default=1, help="greedy-k picks")
    place_client.add_argument(
        "--subsample", type=int, default=1, help="greedy candidate stride"
    )
    place_client.add_argument(
        "--repeat",
        type=_parse_workers,
        default=1,
        metavar="N",
        help="issue the query N times (the repeats should be cache hits)",
    )
    place_client.add_argument(
        "--prom",
        action="store_true",
        help="print the server's live Prometheus counters after placing",
    )
    place_client.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to retry the initial connect (client may start first)",
    )

    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "reproduce": _cmd_reproduce,
    "place": _cmd_place,
    "protocol": _cmd_protocol,
    "bounds": _cmd_bounds,
    "survey": _cmd_survey,
    "activate": _cmd_activate,
    "regions": _cmd_regions,
    "report": _cmd_report,
    "faults": _cmd_faults,
    "timeline": _cmd_timeline,
    "selfheal": _cmd_selfheal,
    "greedyk": _cmd_greedyk,
    "obs": _cmd_obs,
    "top": _cmd_top,
    "status": _cmd_status,
    "journal": _cmd_journal,
    "worker": _cmd_worker,
    "serve": _cmd_serve,
    "place-serve": _cmd_place_serve,
    "place-client": _cmd_place_client,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "kernels", None):
        from .sim import set_kernel_mode

        set_kernel_mode(args.kernels)
    session = ObsSession(args.trace, profile=args.profile)
    with session:
        try:
            code = _COMMANDS[args.command](args)
        finally:
            executor = getattr(args, "_executor", None)
            if executor is not None:
                executor.close()
    if session.profile_report is not None:
        print(f"\n{session.profile_report}")
    if session.run_dir is not None:
        print(
            f"\nobservability artifacts in {session.run_dir} "
            f"(summarize with: beaconplace obs {session.run_dir})",
            file=sys.stderr,
        )
    return code


if __name__ == "__main__":
    sys.exit(main())
