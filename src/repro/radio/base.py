"""Propagation-model interfaces.

A :class:`PropagationModel` describes radio propagation *statistics*; calling
:meth:`PropagationModel.realize` draws one immutable *realization* — the
static noise field for one simulated deployment.  All connectivity questions
are answered by the realization, so that:

* connectivity between a location and a beacon never changes within a trial
  (the paper's noise is static in time),
* adding a beacon later leaves every existing link untouched (realizations
  key their randomness on stable beacon ids and quantized locations, not on
  query order), and
* re-running with the same seed reproduces the exact same world.

Every model in this package reduces to a per-link *effective range*: the
link (P, B) is connected iff ``dist(P, B) ≤ effective_range(P, B)``.  That
covers the ideal disk (constant R), the paper's beacon-noise model
(``R(1 + u·nf(B))``), log-normal shadowing (solve the link budget for the
distance threshold given the static fade), and terrain occlusion (attenuate
the range on blocked sight-lines).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..field import Beacon, BeaconField
from ..geometry import as_point_array, pairwise_distances

__all__ = ["PropagationModel", "PropagationRealization", "beacon_rows"]


def beacon_rows(beacons: "BeaconField | Sequence[Beacon]") -> tuple[np.ndarray, np.ndarray]:
    """Normalize a field or beacon sequence to ``(ids, positions)`` arrays.

    Returns:
        ``ids`` as ``(N,)`` uint64 and ``positions`` as ``(N, 2)`` float.
    """
    if isinstance(beacons, BeaconField):
        ids = np.asarray(beacons.beacon_ids, dtype=np.uint64).reshape(-1)
        return ids, beacons.positions()
    seq = list(beacons)
    ids = np.asarray([b.beacon_id for b in seq], dtype=np.uint64)
    positions = as_point_array([b.position for b in seq])
    return ids, positions


class PropagationRealization(ABC):
    """One drawn world: a static effective-range field over (location, beacon).

    Subclasses implement :meth:`effective_ranges`; everything else derives
    from it.
    """

    @abstractmethod
    def effective_ranges(self, points, beacons) -> np.ndarray:
        """Per-link connectivity thresholds.

        Args:
            points: ``(P, 2)`` query locations (any points, not just lattice
                points — the noise is a field over the whole terrain).
            beacons: a :class:`BeaconField` or sequence of :class:`Beacon`.

        Returns:
            ``(P, N)`` array; link (p, b) is up iff ``dist ≤ out[p, b]``.
        """

    def connectivity(self, points, beacons) -> np.ndarray:
        """Boolean connectivity matrix ``(P, N)`` (see class docstring)."""
        _, positions = beacon_rows(beacons)
        pts = as_point_array(points)
        if positions.shape[0] == 0:
            return np.zeros((pts.shape[0], 0), dtype=bool)
        dist = pairwise_distances(pts, positions)
        return dist <= self.effective_ranges(pts, beacons)

    def message_success_probability(self, points, beacons) -> np.ndarray:
        """Per-message delivery probability for each link, in ``[0, 1]``.

        The geometric models are all-or-nothing — connected links deliver
        every message, others none — which makes the §2.2 threshold rule
        (``received fraction ≥ CM_thresh``) agree exactly with
        :meth:`connectivity`.  Models with fast fading override this to
        return a smooth ramp; the protocol simulator consumes it per
        transmission.
        """
        return self.connectivity(points, beacons).astype(float)


class PropagationModel(ABC):
    """A family of propagation worlds, parameterized and seedable."""

    @property
    @abstractmethod
    def nominal_range(self) -> float:
        """The nominal transmission range R (meters)."""

    @abstractmethod
    def realize(self, rng: np.random.Generator) -> PropagationRealization:
        """Draw one static realization of the propagation environment.

        Args:
            rng: source of the realization's identity; the realization itself
                is deterministic once drawn (it captures a seed, not the
                generator).
        """
