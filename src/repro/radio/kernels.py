"""Batched connectivity kernels: many realizations in one array pass.

The per-cell hot path of every sweep evaluates one ``(P × N)`` connectivity
matrix per trial — dozens of small NumPy calls whose fixed per-call overhead
dominates at bench geometry (169 lattice points × 8 beacons is ~1300
elements per call).  These kernels evaluate the same quantities for a whole
*stack* of trials at once: one ``(T × P × N)`` pass through the hash-keyed
noise of :mod:`repro.radio.hashrand` instead of ``T`` Python round-trips.

Bit-identity contract
---------------------
Every operation here is elementwise over the broadcast ``(T, P, N)`` shape —
hashing, range arithmetic, distance (a two-term ``x² + y²`` sum), and the
final comparison.  IEEE-754 elementwise operations are deterministic per
element regardless of the array shape they are computed in, so each trial's
slice ``out[t]`` is **bit-identical** to what
:meth:`repro.radio.BeaconNoiseRealization.connectivity` computes for that
trial alone.  Reductions whose summation *order* could differ between the
batched and scalar shapes (mat-vecs, means) are deliberately NOT performed
here — :mod:`repro.sim.kernels` runs those per-trial with the exact scalar
call.  This contract is enforced by ``tests/test_sim_kernels.py``.

All kernels are pure functions of their arguments; blocking over trials for
memory is the caller's concern.
"""

from __future__ import annotations

import numpy as np

from .beacon_noise import _NF_TAG, _U_TAG, BeaconNoiseRealization
from .hashrand import hash_symmetric, hash_uniform, quantize_coords

__all__ = [
    "BatchNoiseParams",
    "batch_params_from_realization",
    "batched_effective_ranges",
    "batched_connectivity",
]


class BatchNoiseParams:
    """Realization-family parameters shared by a stack of trials.

    One :class:`~repro.radio.BeaconNoiseRealization` per trial differs only
    in its seed; everything else (range, noise amplitude, CM_thresh reading,
    u granularity) comes from the propagation *model* and is constant across
    a sweep.  Instances are plain value objects — cheap to build per batch.
    """

    __slots__ = ("radio_range", "noise", "cm_thresh", "u_granularity")

    def __init__(
        self,
        radio_range: float,
        noise: float,
        cm_thresh: float | None,
        u_granularity: str,
    ):
        self.radio_range = float(radio_range)
        self.noise = float(noise)
        self.cm_thresh = cm_thresh
        self.u_granularity = u_granularity

    def key(self) -> tuple:
        """Hashable grouping key (trials sharing it may stack)."""
        return (self.radio_range, self.noise, self.cm_thresh, self.u_granularity)


def batch_params_from_realization(
    realization,
) -> BatchNoiseParams | None:
    """Extract batchable parameters, or ``None`` if the realization's
    connectivity cannot be expressed by these kernels (other model families
    fall back to the scalar path)."""
    if type(realization) is not BeaconNoiseRealization:
        return None
    return BatchNoiseParams(
        realization._radio_range,
        realization._noise,
        realization._cm_thresh,
        realization._u_granularity,
    )


def batched_effective_ranges(
    params: BatchNoiseParams,
    seeds: np.ndarray,
    ids: np.ndarray,
    points: np.ndarray,
) -> np.ndarray:
    """Effective ranges for ``T`` realizations at once, ``(T, P, N)``.

    Args:
        params: the shared model parameters.
        seeds: ``(T,)`` uint64 realization seeds.
        ids: ``(T, N)`` uint64 beacon ids (N equal across the stack).
        points: ``(P, 2)`` query locations, shared by every trial.

    Every element equals the scalar
    :meth:`~repro.radio.BeaconNoiseRealization.effective_ranges` value for
    its trial — all arithmetic is elementwise (see module docstring).
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    ids = np.asarray(ids, dtype=np.uint64)
    if seeds.ndim != 1 or ids.ndim != 2 or ids.shape[0] != seeds.shape[0]:
        raise ValueError(
            f"expected seeds (T,) and ids (T, N), got {seeds.shape} / {ids.shape}"
        )
    shape = (seeds.shape[0], np.asarray(points).shape[0], ids.shape[1])
    if params.noise == 0.0:
        # Ideal-disk degenerate case: nf ≡ +0.0, so u·nf is a signed zero,
        # 1 + 0 is exactly 1.0 and the CM correction is exactly 0.0 — the
        # scalar path yields R in every element.  Skip the hashing.
        return np.full(shape, params.radio_range)
    nf = params.noise * hash_uniform(seeds[:, None], ids, _NF_TAG)  # (T, N)
    if params.u_granularity == "beacon":
        u = hash_symmetric(seeds[:, None], ids, _U_TAG)[:, None, :]  # (T, 1, N)
    else:
        qx, qy = quantize_coords(points)
        u = hash_symmetric(
            seeds[:, None, None],
            ids[:, None, :],
            _U_TAG,
            qx[None, :, None],
            qy[None, :, None],
        )  # (T, P, N)
    ranges = params.radio_range * (1.0 + u * nf[:, None, :])
    if params.cm_thresh is not None:
        ranges = ranges - (
            (2.0 * params.cm_thresh - 1.0) * nf[:, None, :] * params.radio_range
        )
    return np.ascontiguousarray(np.broadcast_to(ranges, (seeds.shape[0],) + (
        np.asarray(points).shape[0], ids.shape[1])))


def batched_connectivity(
    params: BatchNoiseParams,
    seeds: np.ndarray,
    ids: np.ndarray,
    positions: np.ndarray,
    points: np.ndarray,
) -> np.ndarray:
    """Boolean connectivity for ``T`` realizations at once, ``(T, P, N)``.

    Args:
        params: shared model parameters (see :class:`BatchNoiseParams`).
        seeds: ``(T,)`` realization seeds.
        ids: ``(T, N)`` beacon ids.
        positions: ``(T, N, 2)`` beacon coordinates.
        points: ``(P, 2)`` query locations shared across trials.

    Returns:
        C-contiguous ``(T, P, N)`` bool; slice ``[t]`` is bit-identical to
        the scalar ``realization.connectivity(points, field_t)``.
    """
    pts = np.asarray(points, dtype=float)
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 3 or pos.shape[2] != 2:
        raise ValueError(f"expected (T, N, 2) positions, got {pos.shape}")
    if pos.shape[1] == 0:
        return np.zeros((pos.shape[0], pts.shape[0], 0), dtype=bool)
    # Same two-term distance the scalar path computes (pairwise_distances):
    # sqrt(dx² + dy²) — an order-fixed reduction, identical per element.
    diff = pts[None, :, None, :] - pos[:, None, :, :]  # (T, P, N, 2)
    dist = np.sqrt(np.einsum("tpnk,tpnk->tpn", diff, diff))
    if params.noise == 0.0:
        # Every effective range is exactly R (see batched_effective_ranges);
        # compare against the scalar instead of materializing (T, P, N).
        return np.ascontiguousarray(dist <= params.radio_range)
    ranges = batched_effective_ranges(params, seeds, ids, pts)
    return np.ascontiguousarray(dist <= ranges)
