"""Connectivity-matrix statistics.

Small, pure helpers over the ``(P, N)`` boolean matrices produced by
propagation realizations: coverage, beacon degree, and the visibility
summaries quoted throughout the paper's evaluation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coverage_fraction",
    "mean_degree",
    "degree_histogram",
    "unheard_fraction",
    "beacon_audiences",
]


def _as_bool_matrix(connectivity: np.ndarray) -> np.ndarray:
    conn = np.asarray(connectivity, dtype=bool)
    if conn.ndim != 2:
        raise ValueError(f"connectivity must be 2-D (P, N), got shape {conn.shape}")
    return conn


def coverage_fraction(connectivity: np.ndarray) -> float:
    """Fraction of points hearing at least one beacon."""
    conn = _as_bool_matrix(connectivity)
    if conn.shape[0] == 0:
        return float("nan")
    return float(conn.any(axis=1).mean())


def unheard_fraction(connectivity: np.ndarray) -> float:
    """Fraction of points hearing *no* beacon (1 − coverage)."""
    return 1.0 - coverage_fraction(connectivity)


def mean_degree(connectivity: np.ndarray) -> float:
    """Mean number of beacons heard per point."""
    conn = _as_bool_matrix(connectivity)
    if conn.shape[0] == 0:
        return float("nan")
    return float(conn.sum(axis=1).mean())


def degree_histogram(connectivity: np.ndarray, max_degree: int | None = None) -> np.ndarray:
    """Histogram of per-point beacon counts.

    Args:
        connectivity: ``(P, N)`` boolean matrix.
        max_degree: histogram length − 1; defaults to the observed maximum.

    Returns:
        ``(max_degree + 1,)`` integer counts; entry ``k`` is the number of
        points hearing exactly ``k`` beacons.
    """
    conn = _as_bool_matrix(connectivity)
    degrees = conn.sum(axis=1)
    top = int(degrees.max(initial=0)) if max_degree is None else int(max_degree)
    return np.bincount(np.minimum(degrees, top), minlength=top + 1)


def beacon_audiences(connectivity: np.ndarray) -> np.ndarray:
    """Per-beacon audience: how many points hear each beacon, ``(N,)``."""
    conn = _as_bool_matrix(connectivity)
    return conn.sum(axis=0)
