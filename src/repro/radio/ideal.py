"""The idealized radio model of Section 2.1.

Two assumptions: perfect spherical (here: circular) propagation and identical
transmission range for all radios — a link is up iff the distance is at most
the nominal range R.  The model is deterministic, so realizations carry no
state; it is the ``Noise = 0`` end point of the paper's sweep and the setting
of Figures 4 and 5.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array
from .base import PropagationModel, PropagationRealization, beacon_rows

__all__ = ["IdealDiskModel", "IdealDiskRealization"]


class IdealDiskRealization(PropagationRealization):
    """The (unique) realization of the ideal disk model."""

    def __init__(self, radio_range: float):
        self._radio_range = radio_range

    @property
    def radio_range(self) -> float:
        """The disk radius R."""
        return self._radio_range

    def effective_ranges(self, points, beacons) -> np.ndarray:
        ids, _ = beacon_rows(beacons)
        pts = as_point_array(points)
        return np.full((pts.shape[0], ids.shape[0]), self._radio_range)


class IdealDiskModel(PropagationModel):
    """Perfect circular propagation with a shared fixed range.

    Args:
        radio_range: the nominal range R in meters (15 m in the paper).
    """

    def __init__(self, radio_range: float):
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        self._radio_range = float(radio_range)

    def __repr__(self) -> str:
        return f"IdealDiskModel(radio_range={self._radio_range})"

    @property
    def nominal_range(self) -> float:
        return self._radio_range

    def realize(self, rng: np.random.Generator) -> IdealDiskRealization:
        """Return the deterministic realization (``rng`` is unused)."""
        return IdealDiskRealization(self._radio_range)
