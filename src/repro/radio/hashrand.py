"""Deterministic, counter-based randomness for static noise fields.

The paper's propagation noise is *"location based and static with respect to
time"*: the connectivity between a point P and a beacon B is decided once per
field realization and never changes, no matter in what order (or how often)
the simulator queries it — and crucially it must not change when a new beacon
is added later.

Sequential RNG streams cannot provide that (the answer would depend on query
order), so realizations derive every random quantity from a *hash* of
``(realization seed, beacon id, quantized location, tag)``.  This module
implements the underlying vectorized hash: SplitMix64 finalization over a
running 64-bit mix, which passes standard avalanche expectations and is
plenty for simulation noise.

All functions are pure and vectorized over NumPy ``uint64`` arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mix64", "hash_uniform", "hash_symmetric", "hash_normal", "quantize_coords"]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_TWO64 = float(2**64)


def mix64(*keys) -> np.ndarray:
    """Hash one or more ``uint64`` keys (scalars or broadcastable arrays).

    Applies the SplitMix64 finalizer after folding each key into a running
    state, so every input bit influences every output bit.

    Returns:
        ``uint64`` array of the broadcast shape of the inputs.
    """
    if not keys:
        raise ValueError("mix64 requires at least one key")
    with np.errstate(over="ignore"):
        state = np.uint64(0x243F6A8885A308D3)  # pi digits; arbitrary non-zero
        state = np.broadcast_to(state, np.broadcast_shapes(*(np.shape(k) for k in keys))).copy()
        for key in keys:
            k = np.asarray(key, dtype=np.uint64)
            state = state + _GAMMA
            z = state ^ k
            z = (z ^ (z >> np.uint64(30))) * _MIX1
            z = (z ^ (z >> np.uint64(27))) * _MIX2
            state = z ^ (z >> np.uint64(31))
    return state


def hash_uniform(*keys) -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` from integer keys.

    The same keys always yield the same value; distinct keys yield
    independent-looking values.
    """
    bits = mix64(*keys)
    return bits.astype(np.float64) / _TWO64


def hash_symmetric(*keys) -> np.ndarray:
    """Deterministic uniforms in ``[-1, 1)`` — the paper's ``u`` variate."""
    return 2.0 * hash_uniform(*keys) - 1.0


def hash_normal(*keys) -> np.ndarray:
    """Deterministic standard normals via Box–Muller on two derived uniforms.

    Used by the log-normal shadowing model's static per-link fades.

    Only the cosine half of the Box–Muller pair is kept — **by design**, not
    oversight.  The transform yields two independent normals
    (``r·cos θ``, ``r·sin θ``) per uniform pair; a sequential generator
    would bank the sine half for the next call, but a *counter-based* hash
    has no "next call" — every key must map to one value, statelessly and
    order-independently.  Discarding the sine half costs one extra
    ``hash_uniform`` per normal (cheap) and keeps the map pure, which is
    the property the static noise field is built on.
    """
    u1 = hash_uniform(*keys, np.uint64(0x5BF0A8B1))
    u2 = hash_uniform(*keys, np.uint64(0x3C6EF372))
    # Guard against log(0): the hash can produce exactly 0.
    u1 = np.maximum(u1, 1e-300)
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def quantize_coords(points: np.ndarray, resolution: float = 1e-6) -> tuple[np.ndarray, np.ndarray]:
    """Quantize ``(P, 2)`` coordinates to integer keys.

    Two queries within ``resolution`` meters of each other see the same
    noise — this is what makes the noise a *field over locations* rather
    than a property of query objects.

    Returns:
        ``(qx, qy)`` int64-as-uint64 arrays of shape ``(P,)``.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (P, 2) points, got shape {pts.shape}")
    q = np.round(pts / resolution).astype(np.int64)
    return q[:, 0].view(np.uint64), q[:, 1].view(np.uint64)
