"""Log-normal shadowing propagation (the "more sophisticated" model of §6).

The paper's future work calls for *"a more sophisticated terrain map and
propagation model"*; log-normal shadowing (Rappaport, ref [15] of the paper)
is the standard such model.  Received path loss at distance ``d`` is::

    PL(d) = PL(d₀) + 10·n·log₁₀(d/d₀) + X_σ,   X_σ ~ N(0, σ_dB)

with a *static* shadowing term per link.  We parameterize by the nominal
range R — the distance at which the link budget is exactly met with zero
shadowing — so the per-link effective range is::

    r_eff = R · 10^(−X_σ / (10·n))

which plugs straight into the package's effective-range interface.  The
static fade is keyed on (seed, beacon id, quantized location) exactly like
the paper's noise model, so it is a location-based time-static field.

Optionally, a fast-fading margin ``σ_fast`` (dB) gives per-message delivery
probabilities for the protocol simulator: the instantaneous fade is normal
around the static link budget, so the success probability is a smooth ramp
in the link margin rather than a hard step.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

from ..geometry import as_point_array, pairwise_distances
from .base import PropagationModel, PropagationRealization, beacon_rows
from .hashrand import hash_normal, quantize_coords

__all__ = ["LogNormalShadowingModel", "LogNormalShadowingRealization"]

_SHADOW_TAG = np.uint64(0x10D0F1)


class LogNormalShadowingRealization(PropagationRealization):
    """One static shadowing field."""

    def __init__(
        self,
        radio_range: float,
        path_loss_exponent: float,
        sigma_db: float,
        fast_fading_db: float,
        seed: int,
    ):
        self._radio_range = radio_range
        self._n = path_loss_exponent
        self._sigma_db = sigma_db
        self._fast_db = fast_fading_db
        self._seed = np.uint64(seed)

    def shadowing_db(self, points, beacons) -> np.ndarray:
        """Static per-link shadowing ``X_σ`` in dB, shape ``(P, N)``."""
        ids, _ = beacon_rows(beacons)
        pts = as_point_array(points)
        if ids.shape[0] == 0:
            return np.zeros((pts.shape[0], 0))
        qx, qy = quantize_coords(pts)
        z = hash_normal(self._seed, ids[None, :], _SHADOW_TAG, qx[:, None], qy[:, None])
        return self._sigma_db * z

    def effective_ranges(self, points, beacons) -> np.ndarray:
        shadow = self.shadowing_db(points, beacons)
        return self._radio_range * np.power(10.0, -shadow / (10.0 * self._n))

    def link_margin_db(self, points, beacons) -> np.ndarray:
        """Static link margin in dB: positive ⇒ connected.

        ``margin = 10·n·log₁₀(r_eff / d)``; the hard-connectivity rule
        ``d ≤ r_eff`` is exactly ``margin ≥ 0``.
        """
        _, positions = beacon_rows(beacons)
        pts = as_point_array(points)
        if positions.shape[0] == 0:
            return np.zeros((pts.shape[0], 0))
        dist = np.maximum(pairwise_distances(pts, positions), 1e-9)
        r_eff = self.effective_ranges(pts, beacons)
        return 10.0 * self._n * np.log10(r_eff / dist)

    def message_success_probability(self, points, beacons) -> np.ndarray:
        """Per-message delivery probability under fast fading.

        With ``σ_fast = 0`` this is the hard 0/1 connectivity; otherwise
        ``P(success) = Φ(margin / σ_fast)``.
        """
        margin = self.link_margin_db(points, beacons)
        if self._fast_db <= 0.0:
            return (margin >= 0.0).astype(float)
        return ndtr(margin / self._fast_db)


class LogNormalShadowingModel(PropagationModel):
    """Log-normal shadowing parameterized by nominal range.

    Args:
        radio_range: distance at which the link budget is met with zero
            shadowing (meters).
        path_loss_exponent: environment exponent ``n`` (2 free space,
            2.7–4 outdoor/urban).
        sigma_db: shadowing standard deviation (dB); 0 recovers the disk.
        fast_fading_db: optional per-message fading spread (dB) for protocol
            simulations; 0 disables fast fading.
    """

    def __init__(
        self,
        radio_range: float,
        path_loss_exponent: float = 3.0,
        sigma_db: float = 4.0,
        fast_fading_db: float = 0.0,
    ):
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        if path_loss_exponent <= 0:
            raise ValueError(f"path_loss_exponent must be positive, got {path_loss_exponent}")
        if sigma_db < 0 or fast_fading_db < 0:
            raise ValueError("sigma_db and fast_fading_db must be non-negative")
        self._radio_range = float(radio_range)
        self._n = float(path_loss_exponent)
        self._sigma_db = float(sigma_db)
        self._fast_db = float(fast_fading_db)

    def __repr__(self) -> str:
        return (
            f"LogNormalShadowingModel(radio_range={self._radio_range}, "
            f"n={self._n}, sigma_db={self._sigma_db}, fast_fading_db={self._fast_db})"
        )

    @property
    def nominal_range(self) -> float:
        return self._radio_range

    @property
    def sigma_db(self) -> float:
        """Shadowing standard deviation in dB."""
        return self._sigma_db

    def realize(self, rng: np.random.Generator) -> LogNormalShadowingRealization:
        seed = int(rng.integers(0, 2**63, dtype=np.int64))
        return LogNormalShadowingRealization(
            self._radio_range, self._n, self._sigma_db, self._fast_db, seed
        )
