"""Terrain-aware propagation: occlusion on top of any base model.

The paper's future work (§6) plans simulations *"with a more sophisticated
terrain map and propagation model ... to analyze the effects of terrain
commonality"*.  :class:`TerrainAwareModel` composes any base model with a
:class:`~repro.terrain.Heightmap`: links whose sight-line the terrain blocks
have their effective range attenuated by a fixed factor (diffraction leaves
blocked links usable at short distance, not dead).

Because line-of-sight is a deterministic function of the two endpoints, the
composition preserves the static-field property of the base realization.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array
from ..terrain import Heightmap
from .base import PropagationModel, PropagationRealization, beacon_rows

__all__ = ["TerrainAwareModel", "TerrainAwareRealization"]


class TerrainAwareRealization(PropagationRealization):
    """A base realization with terrain occlusion applied per link."""

    def __init__(
        self,
        base: PropagationRealization,
        heightmap: Heightmap,
        blocked_range_factor: float,
        antenna_height: float,
        los_samples: int,
    ):
        self._base = base
        self._heightmap = heightmap
        self._factor = blocked_range_factor
        self._antenna_height = antenna_height
        self._los_samples = los_samples

    @property
    def base(self) -> PropagationRealization:
        """The wrapped (non-terrain) realization."""
        return self._base

    def line_of_sight(self, points, beacons) -> np.ndarray:
        """``(P, N)`` boolean: True where the link's sight-line is clear."""
        _, positions = beacon_rows(beacons)
        pts = as_point_array(points)
        if positions.shape[0] == 0:
            return np.ones((pts.shape[0], 0), dtype=bool)
        return self._heightmap.line_of_sight(
            pts,
            positions,
            antenna_height=self._antenna_height,
            samples=self._los_samples,
        )

    def effective_ranges(self, points, beacons) -> np.ndarray:
        ranges = self._base.effective_ranges(points, beacons)
        if ranges.shape[1] == 0:
            return ranges
        clear = self.line_of_sight(points, beacons)
        return np.where(clear, ranges, ranges * self._factor)


class TerrainAwareModel(PropagationModel):
    """Compose a propagation model with terrain occlusion.

    Args:
        base: the underlying model (ideal disk, beacon-noise, shadowing …).
        heightmap: terrain elevation over the same square.
        blocked_range_factor: multiplier applied to the effective range of
            links without line of sight, in ``[0, 1]`` (0 = blocked links are
            dead; the default 0.4 models strong diffraction loss).
        antenna_height: antenna height above ground, meters.
        los_samples: interior samples per sight-line test.
    """

    def __init__(
        self,
        base: PropagationModel,
        heightmap: Heightmap,
        *,
        blocked_range_factor: float = 0.4,
        antenna_height: float = 1.0,
        los_samples: int = 16,
    ):
        if not 0.0 <= blocked_range_factor <= 1.0:
            raise ValueError(
                f"blocked_range_factor must be in [0, 1], got {blocked_range_factor}"
            )
        if antenna_height < 0:
            raise ValueError(f"antenna_height must be non-negative, got {antenna_height}")
        self._base = base
        self._heightmap = heightmap
        self._factor = float(blocked_range_factor)
        self._antenna_height = float(antenna_height)
        self._los_samples = int(los_samples)

    def __repr__(self) -> str:
        return (
            f"TerrainAwareModel(base={self._base!r}, "
            f"blocked_range_factor={self._factor})"
        )

    @property
    def nominal_range(self) -> float:
        return self._base.nominal_range

    def realize(self, rng: np.random.Generator) -> TerrainAwareRealization:
        return TerrainAwareRealization(
            self._base.realize(rng),
            self._heightmap,
            self._factor,
            self._antenna_height,
            self._los_samples,
        )
