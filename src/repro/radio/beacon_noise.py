"""The paper's propagation-noise model (Section 4.2.1).

Connectivity between a point P and a beacon B exists iff::

    distance(P, B) ≤ R · (1 + u · nf(B))

where ``nf(B) ~ U[0, Noise]`` is the beacon's *noise factor* (drawn once per
beacon per field) and ``u ~ U[-1, 1]`` is drawn per (point, beacon) pair.
The intent (quoting the paper) is *"to create non-uniform propagation noise
for the beacons, and to create random regions with higher propagation noise
than the rest of the location field"*; the noise is *"location based and
static with respect to time"*.

Staticness is implemented by deriving both variates from counter-based
hashes (:mod:`repro.radio.hashrand`) keyed on the realization seed, the
beacon id and — for ``u`` — the quantized query location:

* querying any location repeatedly gives the same answer, in any order;
* a beacon added mid-trial gets fresh noise without disturbing any existing
  link (its id is new);
* the whole world is reproducible from one seed.

With ``Noise = 0`` the model degenerates exactly to the ideal disk.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array
from .base import PropagationModel, PropagationRealization, beacon_rows
from .hashrand import hash_symmetric, hash_uniform, quantize_coords

__all__ = ["BeaconNoiseModel", "BeaconNoiseRealization"]

_NF_TAG = np.uint64(0xBEAC01)
_U_TAG = np.uint64(0xBEAC02)


class BeaconNoiseRealization(PropagationRealization):
    """One static noise field drawn from :class:`BeaconNoiseModel`."""

    def __init__(
        self,
        radio_range: float,
        noise: float,
        seed: int,
        u_granularity: str = "pair",
        cm_thresh: float | None = None,
    ):
        if u_granularity not in ("pair", "beacon"):
            raise ValueError(f"u_granularity must be 'pair' or 'beacon', got {u_granularity!r}")
        if cm_thresh is not None and not 0.5 <= cm_thresh <= 1.0:
            raise ValueError(f"cm_thresh must be in [0.5, 1], got {cm_thresh}")
        self._radio_range = radio_range
        self._noise = noise
        self._seed = np.uint64(seed)
        self._u_granularity = u_granularity
        self._cm_thresh = cm_thresh

    @property
    def radio_range(self) -> float:
        """Nominal range R."""
        return self._radio_range

    @property
    def noise(self) -> float:
        """Maximum noise factor for the field (``Noise`` in the paper)."""
        return self._noise

    @property
    def seed(self) -> int:
        """The realization's identity; equal seeds ⇒ identical worlds."""
        return int(self._seed)

    def noise_factors(self, beacons) -> np.ndarray:
        """``nf(B) ∈ [0, Noise]`` for each beacon, ``(N,)``."""
        ids, _ = beacon_rows(beacons)
        return self._noise * hash_uniform(self._seed, ids, _NF_TAG)

    def pair_u(self, points, beacons) -> np.ndarray:
        """The variate ``u ∈ [-1, 1)``, broadcast to ``(P, N)``.

        With ``u_granularity="pair"`` each (point, beacon) link draws its
        own u; with ``"beacon"`` each beacon draws one u shared by every
        point (its whole disk shrinks or grows coherently).
        """
        ids, _ = beacon_rows(beacons)
        pts = as_point_array(points)
        if self._u_granularity == "beacon":
            per_beacon = hash_symmetric(self._seed, ids, _U_TAG)
            return np.broadcast_to(per_beacon[None, :], (pts.shape[0], ids.shape[0]))
        qx, qy = quantize_coords(pts)
        return hash_symmetric(
            self._seed, ids[None, :], _U_TAG, qx[:, None], qy[:, None]
        )

    def effective_ranges(self, points, beacons) -> np.ndarray:
        nf = self.noise_factors(beacons)
        if nf.shape[0] == 0:
            pts = as_point_array(points)
            return np.zeros((pts.shape[0], 0))
        ranges = self._radio_range * (1.0 + self.pair_u(points, beacons) * nf[None, :])
        if self._cm_thresh is not None:
            # §2.2 protocol semantics: a link counts as connected only when
            # the fraction of received periodic messages clears CM_thresh.
            # With per-message symmetric jitter of amplitude nf(B)·R around
            # the static range, the success fraction at margin m is
            # (1 + m/(nf·R))/2, so the threshold pulls the connectivity
            # boundary inward by (2·CM_thresh − 1)·nf(B)·R.
            ranges = ranges - (2.0 * self._cm_thresh - 1.0) * nf[None, :] * self._radio_range
        return ranges


class BeaconNoiseModel(PropagationModel):
    """The paper's static per-beacon noise model.

    Args:
        radio_range: nominal range R (15 m in the paper).
        noise: maximum noise factor ``Noise`` (0, 0.1, 0.3, 0.5 in §4.2.1).
            Effective ranges then span ``[R(1-Noise), R(1+Noise)]``.
    """

    def __init__(
        self,
        radio_range: float,
        noise: float,
        u_granularity: str = "pair",
        cm_thresh: float | None = None,
    ):
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        if not 0.0 <= noise < 1.0:
            raise ValueError(f"noise must be in [0, 1), got {noise}")
        if u_granularity not in ("pair", "beacon"):
            raise ValueError(f"u_granularity must be 'pair' or 'beacon', got {u_granularity!r}")
        if cm_thresh is not None and not 0.5 <= cm_thresh <= 1.0:
            raise ValueError(f"cm_thresh must be in [0.5, 1], got {cm_thresh}")
        self._radio_range = float(radio_range)
        self._noise = float(noise)
        self._u_granularity = u_granularity
        self._cm_thresh = cm_thresh

    def __repr__(self) -> str:
        return (
            f"BeaconNoiseModel(radio_range={self._radio_range}, noise={self._noise}, "
            f"u_granularity={self._u_granularity!r}, cm_thresh={self._cm_thresh})"
        )

    @property
    def nominal_range(self) -> float:
        return self._radio_range

    @property
    def noise(self) -> float:
        """Maximum noise factor ``Noise``."""
        return self._noise

    def realize(self, rng: np.random.Generator) -> BeaconNoiseRealization:
        seed = int(rng.integers(0, 2**63, dtype=np.int64))
        return BeaconNoiseRealization(
            self._radio_range, self._noise, seed, self._u_granularity, self._cm_thresh
        )
