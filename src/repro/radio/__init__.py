"""Radio propagation substrate: models, static realizations, connectivity."""

from .base import PropagationModel, PropagationRealization, beacon_rows
from .beacon_noise import BeaconNoiseModel, BeaconNoiseRealization
from .connectivity import (
    beacon_audiences,
    coverage_fraction,
    degree_histogram,
    mean_degree,
    unheard_fraction,
)
from .ideal import IdealDiskModel, IdealDiskRealization
from .lognormal import LogNormalShadowingModel, LogNormalShadowingRealization
from .terrain_aware import TerrainAwareModel, TerrainAwareRealization
from .time_varying import TimeVaryingModel, TimeVaryingRealization

__all__ = [
    "PropagationModel",
    "PropagationRealization",
    "beacon_rows",
    "IdealDiskModel",
    "IdealDiskRealization",
    "BeaconNoiseModel",
    "BeaconNoiseRealization",
    "LogNormalShadowingModel",
    "LogNormalShadowingRealization",
    "TerrainAwareModel",
    "TerrainAwareRealization",
    "TimeVaryingModel",
    "TimeVaryingRealization",
    "coverage_fraction",
    "unheard_fraction",
    "mean_degree",
    "degree_histogram",
    "beacon_audiences",
]
