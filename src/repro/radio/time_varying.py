"""Time-varying propagation (the §6 "time varying propagation loss").

The paper's noise is static in time; its future work plans models that vary.
:class:`TimeVaryingModel` supplies them without giving up reproducibility:
time is discretized into *epochs*, and each epoch is an independent static
realization of the base model (drawn from hash-derived, epoch-indexed
seeds).  Querying at epoch t is exact and order-independent, epochs never
bleed into each other, and epoch 0 of a given realization is always the
same world.

The temporal correlation knob ``persistence`` blends each epoch's effective
ranges with epoch 0's: 0 = fully independent epochs, 1 = static (epoch 0
forever).  That is enough to study the §3 question the paper raises
implicitly: a survey measured at epoch t is *stale* by the time the beacon
is placed at epoch t+k — how fast do placement gains decay with staleness?
(Extension bench E8.)
"""

from __future__ import annotations

import numpy as np

from .base import PropagationModel, PropagationRealization
from .hashrand import mix64

__all__ = ["TimeVaryingModel", "TimeVaryingRealization"]


class TimeVaryingRealization(PropagationRealization):
    """Epoch-indexed sequence of static worlds.

    The realization itself answers queries for its *current* epoch (set via
    :meth:`at_epoch`, default 0), so it drops into every API that expects a
    static realization; trial code advances time explicitly.
    """

    def __init__(self, base_model: PropagationModel, seed: int, persistence: float):
        self._base_model = base_model
        self._seed = np.uint64(seed)
        self._persistence = persistence
        self._epoch = 0
        self._cache: dict[int, PropagationRealization] = {}

    @property
    def epoch(self) -> int:
        """The epoch queries currently resolve against."""
        return self._epoch

    def at_epoch(self, epoch: int) -> "TimeVaryingRealization":
        """A view of this world at another epoch (shares the epoch cache)."""
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        view = TimeVaryingRealization(self._base_model, int(self._seed), self._persistence)
        view._cache = self._cache
        view._epoch = epoch
        return view

    def _epoch_realization(self, epoch: int) -> PropagationRealization:
        cached = self._cache.get(epoch)
        if cached is not None:
            return cached
        epoch_seed = int(mix64(self._seed, np.uint64(epoch), np.uint64(0x71D0)))
        rng = np.random.default_rng(epoch_seed)
        realization = self._base_model.realize(rng)
        self._cache[epoch] = realization
        return realization

    def effective_ranges(self, points, beacons) -> np.ndarray:
        current = self._epoch_realization(self._epoch).effective_ranges(points, beacons)
        if self._persistence <= 0.0 or self._epoch == 0:
            return current
        anchor = self._epoch_realization(0).effective_ranges(points, beacons)
        return self._persistence * anchor + (1.0 - self._persistence) * current


class TimeVaryingModel(PropagationModel):
    """Wrap any static model into an epoch-indexed time-varying one.

    Args:
        base: the per-epoch model (its randomness drives the variation —
            wrapping the deterministic ideal disk yields a constant world).
        persistence: temporal correlation in [0, 1]; each epoch's effective
            ranges are ``persistence·epoch0 + (1 − persistence)·fresh``.
    """

    def __init__(self, base: PropagationModel, persistence: float = 0.5):
        if not 0.0 <= persistence <= 1.0:
            raise ValueError(f"persistence must be in [0, 1], got {persistence}")
        self._base = base
        self._persistence = float(persistence)

    def __repr__(self) -> str:
        return f"TimeVaryingModel(base={self._base!r}, persistence={self._persistence})"

    @property
    def nominal_range(self) -> float:
        return self._base.nominal_range

    @property
    def persistence(self) -> float:
        """Temporal correlation knob."""
        return self._persistence

    def realize(self, rng: np.random.Generator) -> TimeVaryingRealization:
        seed = int(rng.integers(0, 2**63, dtype=np.int64))
        return TimeVaryingRealization(self._base, seed, self._persistence)
