"""Span-based tracing to an append-only JSONL event file.

A *span* is one named, timed section of work with free-form attributes::

    with get_tracer().span("sweep.cell", noise=0.3, count=40, index=7):
        ...

Spans nest (the tracer tracks a per-thread stack of span ids, so records
carry both a ``depth`` and a resolvable ``parent``) and land in the trace
file as one flushed JSON line each, following the conventions of the sweep
journal (:class:`repro.sim.SweepJournal`): line 1 is a header record, every
other line is self-contained, lines are flushed as written, and a partial
trailing line from a killed process is tolerated by :func:`read_trace`.

Every span record also carries identity fields so a distributed run
stitches back into one tree (:func:`repro.obs.summary.stitch_trace`):

* ``trace`` — the run-wide trace id.  The driver mints it; executors ship
  it to workers in dispatch extras / the socket welcome, installed with
  :func:`set_trace_context`.
* ``span`` / ``parent`` — per-span ids.  A worker-side record's parent is
  the driver span that dispatched it, so driver → worker → cell edges
  resolve across process and machine boundaries.
* ``pid`` / ``host`` / optional ``worker`` — process metadata making each
  record attributable.

Workers usually have no tracer of their own: :func:`span_record` builds a
complete record against the installed remote context, the executor ships
it home in the outcome, and the driver writes it verbatim with
:meth:`Tracer.write_span_record` — the trace stays a single-writer file.

Like metrics, tracing is off by default: :data:`NULL_TRACER` hands out a
shared no-op context manager, so instrumented code costs one method call
and an ``with`` block — nanoseconds against cells that run for
milliseconds to seconds.
"""

from __future__ import annotations

import json
import os
import socket as _socket
import threading
import time
from pathlib import Path

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "read_trace",
    "new_trace_id",
    "set_trace_context",
    "clear_trace_context",
    "current_trace_context",
    "set_worker_id",
    "process_metadata",
    "span_record",
]

TRACE_VERSION = 2  # v2: span/trace ids + process metadata on every record

_host_cache: str | None = None

# Remote trace context installed on workers: {"trace": id, "parent": span id}.
# Thread-local so an in-process socket worker (tests run them on threads)
# cannot leak its context into the driver thread's spans.
_context_local = threading.local()
# Worker identity stamped onto records written by this process ("pool:1234").
_worker_id: str | None = None


def _remote() -> dict | None:
    return getattr(_context_local, "remote", None)


def _hostname() -> str:
    global _host_cache
    if _host_cache is None:
        try:
            _host_cache = _socket.gethostname()
        except OSError:
            _host_cache = "unknown"
    return _host_cache


def new_trace_id() -> str:
    """A fresh 64-bit hex id (used for both trace and span ids)."""
    return os.urandom(8).hex()


def set_trace_context(trace_id: str | None, parent_id: str | None = None) -> None:
    """Install the remote trace context shipped by the driver.

    Called worker-side when dispatch extras (pool chunk payloads, the
    socket welcome) carry a ``trace`` entry.  Records built afterwards via
    :func:`span_record` — and spans written by a local tracer with an empty
    stack — adopt this trace id and parent.  The context is per-thread.
    """
    if trace_id is None:
        _context_local.remote = None
    else:
        _context_local.remote = {"trace": str(trace_id), "parent": parent_id}


def clear_trace_context() -> None:
    """Drop any installed remote trace context."""
    set_trace_context(None)


def current_trace_context() -> dict | None:
    """The context to ship with a dispatch, or ``None`` when not tracing.

    On the driver this is the active tracer's trace id plus the innermost
    open span on the calling thread; in a worker that itself re-dispatches
    it relays the installed remote context.
    """
    tracer = get_tracer()
    if tracer.enabled:
        return {"trace": tracer.trace_id, "parent": tracer.current_span_id()}
    remote = _remote()
    if remote is not None:
        return dict(remote)
    return None


def set_worker_id(worker_id: str | None) -> None:
    """Stamp subsequent span records from this process with ``worker_id``."""
    global _worker_id
    _worker_id = None if worker_id is None else str(worker_id)


def process_metadata() -> dict:
    """Identity fields for this process: pid, host, optional worker id."""
    meta = {"pid": os.getpid(), "host": _hostname()}
    if _worker_id is not None:
        meta["worker"] = _worker_id
    return meta


def span_record(name: str, seconds: float, **attrs) -> dict:
    """A complete span record for work measured in this process.

    Built against the installed remote context (trace id + driver parent)
    and process metadata, without needing an active tracer — workers ship
    the dict home and the driver writes it with
    :meth:`Tracer.write_span_record`.
    """
    record = {
        "kind": "span",
        "name": name,
        "ts": time.time() - seconds,
        "dur": float(seconds),
        "depth": 0,
        "span": new_trace_id(),
        **process_metadata(),
    }
    remote = _remote()
    if remote is not None:
        record["trace"] = remote["trace"]
        if remote.get("parent"):
            record["parent"] = remote["parent"]
    if attrs:
        record["attrs"] = attrs
    return record


class _Span:
    """Context manager for one traced section (created by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_wall", "_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._wall = time.time()
        self._start = time.perf_counter()
        self._id = new_trace_id()
        self._tracer._stack().append(self._id)
        return self

    def __exit__(self, exc_type, *exc) -> None:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        attrs = self._attrs
        if exc_type is not None:
            attrs = {**attrs, "error": exc_type.__name__}
        self._tracer._write(
            {
                "kind": "span",
                "name": self._name,
                "ts": self._wall,
                "dur": duration,
                "depth": len(stack),
                "trace": self._tracer.trace_id,
                "span": self._id,
                **self._tracer._parent_fields(stack),
                **process_metadata(),
                **({"attrs": attrs} if attrs else {}),
            }
        )


class _NullSpan:
    """Shared no-op span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


class Tracer:
    """Writes span/event records to one JSONL file.

    Args:
        path: the trace file.  Created (with a header line) if missing;
            appended to otherwise, so several sweeps of one session share a
            file the way resumed runs share a journal.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        remote = _remote()
        self.trace_id = remote["trace"] if remote is not None else new_trace_id()
        fresh = not self.path.exists()
        self._handle = self.path.open("a")
        self._lock = threading.Lock()
        self._local = threading.local()
        if fresh:
            self._write(
                {
                    "kind": "header",
                    "format": "repro-trace",
                    "version": TRACE_VERSION,
                    "trace": self.trace_id,
                    "pid": os.getpid(),
                    "host": _hostname(),
                }
            )

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _parent_fields(self, stack: list) -> dict:
        if stack:
            return {"parent": stack[-1]}
        remote = _remote()
        if remote is not None and remote.get("parent"):
            return {"parent": remote["parent"]}
        return {}

    @property
    def enabled(self) -> bool:
        """Whether records reach a file (False only for the null tracer)."""
        return True

    def current_span_id(self) -> str | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs) -> _Span:
        """A context manager tracing one named section."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event."""
        self._write(
            {
                "kind": "event",
                "name": name,
                "ts": time.time(),
                "trace": self.trace_id,
                **process_metadata(),
                **({"attrs": attrs} if attrs else {}),
            }
        )

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        """Record a span measured elsewhere (e.g. inside a pool worker).

        Pool cells time themselves in the worker; the parent calls this with
        the reported duration so the trace stays a single-writer file.  The
        record parents under the calling thread's innermost open span.
        """
        stack = self._stack()
        self._write(
            {
                "kind": "span",
                "name": name,
                "ts": time.time() - seconds,
                "dur": float(seconds),
                "depth": 0,
                "trace": self.trace_id,
                "span": new_trace_id(),
                **self._parent_fields(stack),
                **process_metadata(),
                **({"attrs": attrs} if attrs else {}),
            }
        )

    def write_span_record(self, record: dict) -> None:
        """Write a record built elsewhere (:func:`span_record`) verbatim.

        Used by executors to land worker-built spans — complete with the
        worker's pid/host/worker identity and the shipped parent id — in
        the driver's single-writer trace file.
        """
        self._write(dict(record))

    def _write(self, record: dict) -> None:
        line = json.dumps(record) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the trace file."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class _NullTracer(Tracer):
    """The do-nothing tracer installed by default."""

    _SPAN = _NullSpan()

    def __init__(self):  # noqa: D107 — no file, no state
        self.trace_id = None

    @property
    def enabled(self) -> bool:
        return False

    def current_span_id(self) -> None:
        return None

    def span(self, name: str, **attrs) -> _NullSpan:
        return self._SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        pass

    def write_span_record(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = _NullTracer()
_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently installed tracer (the null tracer by default)."""
    return _active


def tracing_enabled() -> bool:
    """Whether a real (writing) tracer is installed."""
    return _active.enabled


def enable_tracing(path) -> Tracer:
    """Install a :class:`Tracer` writing to ``path``."""
    global _active
    if _active.enabled:
        _active.close()
    _active = Tracer(path)
    return _active


def disable_tracing() -> None:
    """Close any active tracer and restore the no-op null tracer."""
    global _active
    _active.close()
    _active = NULL_TRACER


def read_trace(path) -> tuple[dict, list[dict]]:
    """Load a trace file: ``(header, records)``.

    A partial trailing line (killed writer) is ignored, mirroring the sweep
    journal's loader; everything before it is intact because records are
    flushed line-by-line.

    Raises:
        ValueError: if the file does not start with a trace header.
    """
    header: dict = {}
    records: list[dict] = []
    with Path(path).open() as handle:
        for i, line in enumerate(handle):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if i == 0:
                if record.get("kind") != "header" or record.get("format") != "repro-trace":
                    raise ValueError(f"{path} is not a repro trace file (no header)")
                header = record
            else:
                records.append(record)
    if not header:
        raise ValueError(f"{path} is not a repro trace file (no header)")
    return header, records
