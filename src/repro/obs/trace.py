"""Span-based tracing to an append-only JSONL event file.

A *span* is one named, timed section of work with free-form attributes::

    with get_tracer().span("sweep.cell", noise=0.3, count=40, index=7):
        ...

Spans nest (the tracer tracks a per-thread depth so summaries can tell
self-time from children later if they care) and land in the trace file as
one flushed JSON line each, following the conventions of the sweep journal
(:class:`repro.sim.SweepJournal`): line 1 is a header record, every other
line is self-contained, lines are flushed as written, and a partial
trailing line from a killed process is tolerated by :func:`read_trace`.

Like metrics, tracing is off by default: :data:`NULL_TRACER` hands out a
shared no-op context manager, so instrumented code costs one method call
and an ``with`` block — nanoseconds against cells that run for
milliseconds to seconds.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "read_trace",
]

TRACE_VERSION = 1


class _Span:
    """Context manager for one traced section (created by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_wall")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        self._wall = time.time()
        self._start = time.perf_counter()
        self._tracer._depth.value = getattr(self._tracer._depth, "value", 0) + 1
        return self

    def __exit__(self, exc_type, *exc) -> None:
        duration = time.perf_counter() - self._start
        depth = self._tracer._depth.value = self._tracer._depth.value - 1
        attrs = self._attrs
        if exc_type is not None:
            attrs = {**attrs, "error": exc_type.__name__}
        self._tracer._write(
            {
                "kind": "span",
                "name": self._name,
                "ts": self._wall,
                "dur": duration,
                "depth": depth,
                **({"attrs": attrs} if attrs else {}),
            }
        )


class _NullSpan:
    """Shared no-op span used while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


class Tracer:
    """Writes span/event records to one JSONL file.

    Args:
        path: the trace file.  Created (with a header line) if missing;
            appended to otherwise, so several sweeps of one session share a
            file the way resumed runs share a journal.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists()
        self._handle = self.path.open("a")
        self._lock = threading.Lock()
        self._depth = threading.local()
        self._depth.value = 0
        if fresh:
            self._write(
                {
                    "kind": "header",
                    "format": "repro-trace",
                    "version": TRACE_VERSION,
                    "pid": os.getpid(),
                }
            )

    @property
    def enabled(self) -> bool:
        """Whether records reach a file (False only for the null tracer)."""
        return True

    def span(self, name: str, **attrs) -> _Span:
        """A context manager tracing one named section."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous event."""
        self._write(
            {
                "kind": "event",
                "name": name,
                "ts": time.time(),
                **({"attrs": attrs} if attrs else {}),
            }
        )

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        """Record a span measured elsewhere (e.g. inside a pool worker).

        Pool cells time themselves in the worker; the parent calls this with
        the reported duration so the trace stays a single-writer file.
        """
        self._write(
            {
                "kind": "span",
                "name": name,
                "ts": time.time() - seconds,
                "dur": float(seconds),
                "depth": 0,
                **({"attrs": attrs} if attrs else {}),
            }
        )

    def _write(self, record: dict) -> None:
        if not hasattr(self._depth, "value"):
            self._depth.value = 0
        line = json.dumps(record) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the trace file."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class _NullTracer(Tracer):
    """The do-nothing tracer installed by default."""

    _SPAN = _NullSpan()

    def __init__(self):  # noqa: D107 — no file, no state
        pass

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **attrs) -> _NullSpan:
        return self._SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = _NullTracer()
_active: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently installed tracer (the null tracer by default)."""
    return _active


def tracing_enabled() -> bool:
    """Whether a real (writing) tracer is installed."""
    return _active.enabled


def enable_tracing(path) -> Tracer:
    """Install a :class:`Tracer` writing to ``path``."""
    global _active
    if _active.enabled:
        _active.close()
    _active = Tracer(path)
    return _active


def disable_tracing() -> None:
    """Close any active tracer and restore the no-op null tracer."""
    global _active
    _active.close()
    _active = NULL_TRACER


def read_trace(path) -> tuple[dict, list[dict]]:
    """Load a trace file: ``(header, records)``.

    A partial trailing line (killed writer) is ignored, mirroring the sweep
    journal's loader; everything before it is intact because records are
    flushed line-by-line.

    Raises:
        ValueError: if the file does not start with a trace header.
    """
    header: dict = {}
    records: list[dict] = []
    with Path(path).open() as handle:
        for i, line in enumerate(handle):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if i == 0:
                if record.get("kind") != "header" or record.get("format") != "repro-trace":
                    raise ValueError(f"{path} is not a repro trace file (no header)")
                header = record
            else:
                records.append(record)
    if not header:
        raise ValueError(f"{path} is not a repro trace file (no header)")
    return header, records
