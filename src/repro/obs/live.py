"""Live run-status ledger: an atomically rewritten ``status.json``.

While a resilient sweep runs, the driver keeps a :class:`LiveStatus` next
to the journal and rewrites ``status.json`` (tmp + ``os.replace``, so a
concurrent ``beaconplace top`` never reads a torn file) at most once per
:data:`STATUS_WRITE_INTERVAL` seconds.  The ledger tracks:

* progress — cells total / done / failed / degraded (NaN values) /
  resumed-from-journal, the session throughput in cells/s, elapsed wall
  time and an ETA extrapolated from it;
* fleet health — one entry per worker (pool worker pid, socket connection
  name, or ``serial``) with last-seen timestamp, current cell and cells
  completed, fed by chunk results and socket heartbeat frames;
* stragglers — the slowest cells seen so far, so a stuck fleet points at
  its cause.

The same null-object convention as metrics/tracing applies: executors call
:func:`get_live` unconditionally and pay one no-op method call when no
ledger is enabled.  :func:`read_status` / :func:`format_status` are the
consumer half, used by ``beaconplace top`` and ``beaconplace status``.

When metrics are also enabled, every ledger write dumps a live
``metrics.json`` beside the status file so the Prometheus exporter
(``beaconplace status --prom``) serves mid-run numbers, not just the
post-exit snapshot.
"""

from __future__ import annotations

import heapq
import json
import math
import os
import time
from pathlib import Path

from .metrics import get_metrics, metrics_enabled
from .trace import _hostname

__all__ = [
    "LiveStatus",
    "NULL_LIVE",
    "STATUS_FILENAME",
    "get_live",
    "enable_live",
    "disable_live",
    "live_enabled",
    "read_status",
    "format_status",
    "write_json_atomic",
    "write_text_atomic",
]

STATUS_FILENAME = "status.json"
STATUS_FORMAT = "beaconplace-status"
STATUS_VERSION = 1

# Minimum seconds between status.json rewrites (tests shrink this to 0 to
# observe every outcome land).
STATUS_WRITE_INTERVAL = 1.0

# How many slowest cells the ledger remembers.
STRAGGLER_LIMIT = 5


def write_json_atomic(path, payload) -> None:
    """Write ``payload`` as JSON via a tmp file + ``os.replace``.

    Readers polling the file (``top``, ``status``) either see the old
    complete document or the new one, never a partial write.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def write_text_atomic(path, text: str) -> None:
    """Write ``text`` via a tmp file + ``os.replace`` (same guarantee)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class LiveStatus:
    """The driver-side ledger behind ``status.json``.

    Single-writer: only the driver's execute loop mutates it (executor
    hooks all run on that thread), so no locking is needed.
    """

    def __init__(self, path, *, fingerprint: str = "", total: int = 0,
                 interval: float | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint
        self.total = int(total)
        self.done = 0
        self.failed = 0
        self.degraded = 0
        self.resumed = 0
        self.interval = STATUS_WRITE_INTERVAL if interval is None else float(interval)
        self._started = time.time()
        self._clock = time.perf_counter()
        self._session_settled = 0  # settled this session — the rate basis
        self._last_write = float("-inf")
        self._workers: dict[str, dict] = {}
        self._stragglers: list[tuple] = []  # min-heap of (seconds, seq, key, worker)
        self._seq = 0
        self.write()

    @property
    def enabled(self) -> bool:
        """Whether this ledger records anything (False only for the null)."""
        return True

    @property
    def settled(self) -> int:
        """Cells with a recorded outcome (done + failed + degraded)."""
        return self.done + self.failed + self.degraded

    # ------------------------------------------------------------------ #
    # recording hooks (driver thread)                                    #
    # ------------------------------------------------------------------ #

    def note_outcome(self, key, *, ok: bool, value=None, resumed: bool = False) -> None:
        """Record one settled cell; NaN values count as degraded."""
        if not ok:
            self.failed += 1
        elif isinstance(value, float) and math.isnan(value):
            self.degraded += 1
        else:
            self.done += 1
        if resumed:
            self.resumed += 1
        else:
            self._session_settled += 1
        self.maybe_write()

    def cell_timing(self, key, seconds: float, worker: str | None = None) -> None:
        """Track ``key`` as a straggler candidate."""
        self._seq += 1
        entry = (float(seconds), self._seq, _jsonable_key(key), worker)
        if len(self._stragglers) < STRAGGLER_LIMIT:
            heapq.heappush(self._stragglers, entry)
        elif entry[0] > self._stragglers[0][0]:
            heapq.heapreplace(self._stragglers, entry)

    def worker_seen(self, worker_id, *, current=None, pid=None, host=None,
                    cells_done: int | None = None) -> None:
        """Refresh a worker's health entry (heartbeat, assignment, result)."""
        entry = self._workers.setdefault(str(worker_id), {"cells": 0})
        entry["last_seen"] = time.time()
        if current is not None:
            entry["current"] = _jsonable_key(current)
        if pid is not None:
            entry["pid"] = pid
        if host is not None:
            entry["host"] = host
        if cells_done is not None:
            entry["cells"] = int(cells_done)
        self.maybe_write()

    def worker_cell_done(self, worker_id) -> None:
        """Credit one completed cell to a worker and clear its current cell."""
        entry = self._workers.setdefault(str(worker_id), {"cells": 0})
        entry["last_seen"] = time.time()
        entry["cells"] = entry.get("cells", 0) + 1
        entry.pop("current", None)

    # ------------------------------------------------------------------ #
    # persistence                                                        #
    # ------------------------------------------------------------------ #

    def maybe_write(self) -> None:
        """Rewrite ``status.json`` if the write interval has elapsed."""
        if time.perf_counter() - self._last_write >= self.interval:
            self.write()

    def payload(self) -> dict:
        """The JSON document written to ``status.json``."""
        elapsed = time.perf_counter() - self._clock
        rate = self._session_settled / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.total - self.settled)
        eta = remaining / rate if rate > 0 else None
        return {
            "format": STATUS_FORMAT,
            "version": STATUS_VERSION,
            "state": "complete" if self.settled >= self.total else "running",
            "fingerprint": self.fingerprint,
            "pid": os.getpid(),
            "host": _hostname(),
            "started": self._started,
            "updated": time.time(),
            "cells": {
                "total": self.total,
                "done": self.done,
                "failed": self.failed,
                "degraded": self.degraded,
                "resumed": self.resumed,
            },
            "rate": {
                "cells_per_second": rate,
                "elapsed_seconds": elapsed,
                "eta_seconds": eta,
            },
            "workers": {name: dict(entry) for name, entry in self._workers.items()},
            "stragglers": [
                {"key": key, "seconds": seconds, **({"worker": worker} if worker else {})}
                for seconds, _, key, worker in sorted(self._stragglers, reverse=True)
            ],
        }

    def write(self) -> None:
        """Rewrite ``status.json`` (and a live ``metrics.json``) atomically."""
        write_json_atomic(self.path, self.payload())
        if metrics_enabled():
            from .summary import METRICS_FILENAME

            write_json_atomic(
                self.path.with_name(METRICS_FILENAME), get_metrics().snapshot()
            )
        self._last_write = time.perf_counter()

    def close(self) -> None:
        """Write the final ledger state."""
        self.write()


def _jsonable_key(key) -> list | str:
    if isinstance(key, (tuple, list)):
        return [_jsonable_key(k) if isinstance(k, (tuple, list)) else k for k in key]
    return key


class _NullLiveStatus(LiveStatus):
    """The do-nothing ledger installed by default."""

    def __init__(self):  # noqa: D107 — no file, no state
        pass

    @property
    def enabled(self) -> bool:
        return False

    def note_outcome(self, key, *, ok, value=None, resumed=False) -> None:
        pass

    def cell_timing(self, key, seconds, worker=None) -> None:
        pass

    def worker_seen(self, worker_id, *, current=None, pid=None, host=None,
                    cells_done=None) -> None:
        pass

    def worker_cell_done(self, worker_id) -> None:
        pass

    def maybe_write(self) -> None:
        pass

    def write(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_LIVE = _NullLiveStatus()
_active: LiveStatus = NULL_LIVE


def get_live() -> LiveStatus:
    """The currently installed ledger (the null ledger by default)."""
    return _active


def live_enabled() -> bool:
    """Whether a real (writing) ledger is installed."""
    return _active.enabled


def enable_live(path, *, fingerprint: str = "", total: int = 0,
                interval: float | None = None) -> LiveStatus:
    """Install a :class:`LiveStatus` writing to ``path``."""
    global _active
    _active = LiveStatus(path, fingerprint=fingerprint, total=total, interval=interval)
    return _active


def disable_live() -> None:
    """Write the final ledger state and restore the no-op null ledger."""
    global _active
    _active.close()
    _active = NULL_LIVE


# ---------------------------------------------------------------------- #
# consumers                                                              #
# ---------------------------------------------------------------------- #


def read_status(path):
    """Load a status document from a file or run directory.

    Returns ``None`` when the file is missing (run not started yet) or
    unparsable (should not happen — writes are atomic — but a reader
    polling a shared filesystem should not crash on the impossible).
    """
    path = Path(path)
    if path.is_dir():
        path = path / STATUS_FILENAME
    try:
        with path.open() as handle:
            status = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(status, dict) or status.get("format") != STATUS_FORMAT:
        return None
    return status


def _fmt_duration(seconds) -> str:
    if seconds is None:
        return "—"
    seconds = max(0.0, float(seconds))
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _fmt_key(key) -> str:
    if isinstance(key, list):
        return "(" + ", ".join(str(k) for k in key) + ")"
    return str(key)


def format_status(status: dict, *, now: float | None = None) -> str:
    """Render a status document as the ``top``/``status`` terminal view."""
    from ..viz import format_table

    cells = status.get("cells", {})
    rate = status.get("rate", {})
    total = cells.get("total", 0)
    done = cells.get("done", 0)
    failed = cells.get("failed", 0)
    degraded = cells.get("degraded", 0)
    settled = done + failed + degraded
    now = time.time() if now is None else now

    lines = [
        f"sweep {status.get('fingerprint') or '?'} — {status.get('state', '?')} "
        f"(driver pid {status.get('pid', '?')} @{status.get('host', '?')})"
    ]
    frac = settled / total if total else 0.0
    width = 30
    filled = int(round(frac * width))
    bar = "#" * filled + "." * (width - filled)
    lines.append(f"  [{bar}] {settled}/{total} cells ({frac:6.1%})")
    detail = f"  done {done}  failed {failed}  degraded {degraded}"
    if cells.get("resumed"):
        detail += f"  (resumed {cells['resumed']})"
    lines.append(detail)
    lines.append(
        f"  {rate.get('cells_per_second', 0.0):.2f} cells/s   "
        f"elapsed {_fmt_duration(rate.get('elapsed_seconds'))}   "
        f"eta {_fmt_duration(rate.get('eta_seconds'))}"
    )

    workers = status.get("workers", {})
    if workers:
        rows = []
        for name in sorted(workers):
            entry = workers[name]
            age = now - entry["last_seen"] if "last_seen" in entry else None
            rows.append(
                [
                    name,
                    str(entry.get("cells", 0)),
                    _fmt_key(entry.get("current", "—")),
                    f"{age:.1f}s ago" if age is not None else "—",
                ]
            )
        lines.append("")
        lines.append(
            format_table(["worker", "cells", "current", "last seen"], rows)
        )

    stragglers = status.get("stragglers", [])
    if stragglers:
        rows = [
            [
                _fmt_key(entry.get("key")),
                f"{entry.get('seconds', 0.0):.3f}s",
                entry.get("worker") or "—",
            ]
            for entry in stragglers
        ]
        lines.append("")
        lines.append(format_table(["slowest cells", "seconds", "worker"], rows))

    return "\n".join(lines)
