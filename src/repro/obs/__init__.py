"""repro.obs — dependency-free observability: metrics, tracing, profiling.

The measurement substrate under every perf claim in this repo.  Three
instruments, all off by default behind no-op singletons so the tier-1
pipeline stays byte-identical and within a <3% overhead budget
(``benchmarks/bench_obs_overhead.py`` enforces it):

* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms with
  a picklable snapshot/merge protocol, so spawn-pool workers ship their
  numbers back to the sweep parent;
* :mod:`repro.obs.trace` — span tracing to append-only JSONL, same
  conventions as the sweep journal (flushed lines, tolerated partial tail);
* :mod:`repro.obs.profiling` — opt-in cProfile + per-stage wall-clock
  breakdown behind the CLI's ``--profile``.

:class:`ObsSession` bundles them for the CLI: ``--trace DIR`` routes spans
to ``DIR/trace.jsonl`` and the final metrics snapshot to
``DIR/metrics.json``; ``beaconplace obs DIR`` renders the result
(:mod:`repro.obs.summary`).
"""

from __future__ import annotations

from pathlib import Path

from .live import (
    LiveStatus,
    NULL_LIVE,
    STATUS_FILENAME,
    disable_live,
    enable_live,
    format_status,
    get_live,
    live_enabled,
    read_status,
    write_json_atomic,
    write_text_atomic,
)
from .metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    disable_metrics,
    enable_metrics,
    get_metrics,
    instrumented_call,
    metrics_enabled,
    snapshot_to_prometheus,
)
from .profiling import (
    ProfileSession,
    disable_profiling,
    enable_profiling,
    get_profile,
)
from .summary import (
    JournalMergeStats,
    JournalSummary,
    METRICS_FILENAME,
    PROFILE_FILENAME,
    TRACE_FILENAME,
    TraceStitch,
    compact_journal,
    format_journal_summary,
    format_metrics_snapshot,
    format_trace_summary,
    format_trace_tree,
    inspect_journal,
    merge_journals,
    stitch_trace,
    summarize_run_dir,
    summarize_spans,
)
from .trace import (
    NULL_TRACER,
    Tracer,
    clear_trace_context,
    current_trace_context,
    disable_tracing,
    enable_tracing,
    get_tracer,
    process_metadata,
    read_trace,
    set_trace_context,
    set_worker_id,
    span_record,
    tracing_enabled,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_metrics",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "instrumented_call",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "read_trace",
    "ProfileSession",
    "get_profile",
    "enable_profiling",
    "disable_profiling",
    "LiveStatus",
    "NULL_LIVE",
    "STATUS_FILENAME",
    "get_live",
    "enable_live",
    "disable_live",
    "live_enabled",
    "read_status",
    "format_status",
    "write_json_atomic",
    "write_text_atomic",
    "snapshot_to_prometheus",
    "set_trace_context",
    "clear_trace_context",
    "current_trace_context",
    "set_worker_id",
    "process_metadata",
    "span_record",
    "TraceStitch",
    "stitch_trace",
    "format_trace_tree",
    "summarize_spans",
    "summarize_run_dir",
    "format_trace_summary",
    "format_metrics_snapshot",
    "JournalSummary",
    "JournalMergeStats",
    "inspect_journal",
    "compact_journal",
    "merge_journals",
    "format_journal_summary",
    "TRACE_FILENAME",
    "METRICS_FILENAME",
    "PROFILE_FILENAME",
    "ObsSession",
]


class ObsSession:
    """One observed CLI command: metrics + trace + optional profile.

    With neither a run directory nor profiling requested the session is a
    complete no-op — enter/exit install nothing, which is the default CLI
    path.

    Args:
        run_dir: directory for artifacts (``trace.jsonl``,
            ``metrics.json``, and ``profile.txt`` under ``--profile``);
            created on demand.  ``None`` keeps trace/metrics off unless
            profiling alone is requested.
        profile: capture a :class:`ProfileSession` and render the
            per-stage breakdown (available as :attr:`profile_report`).
    """

    def __init__(self, run_dir=None, *, profile: bool = False):
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.profile = bool(profile)
        self.profile_report: str | None = None
        self._session: ProfileSession | None = None

    @property
    def active(self) -> bool:
        """Whether this session installs any instrumentation at all."""
        return self.run_dir is not None or self.profile

    def __enter__(self) -> "ObsSession":
        if not self.active:
            return self
        enable_metrics()
        if self.run_dir is not None:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            enable_tracing(self.run_dir / TRACE_FILENAME)
        if self.profile:
            self._session = enable_profiling()
        return self

    def __exit__(self, *exc) -> None:
        if not self.active:
            return
        if self._session is not None:
            disable_profiling()
            self.profile_report = self._session.render()
        snapshot = get_metrics().snapshot()
        if self.run_dir is not None:
            # Atomic so a live `top`/`status --prom` never reads a torn file.
            write_json_atomic(self.run_dir / METRICS_FILENAME, snapshot)
            if self.profile_report is not None:
                write_text_atomic(
                    self.run_dir / PROFILE_FILENAME, self.profile_report + "\n"
                )
        disable_tracing()
        disable_metrics()
