"""Process-local metrics: counters, gauges, log-bucket histograms.

The sweep/protocol/placement stack is instrumented with *instruments* —
counters (monotonic totals: cells completed, retries, messages lost),
gauges (last/peak values: duty fraction, collision rate) and histograms
(durations, with fixed log-scale buckets so merging never re-bins).  All
instruments live in a :class:`MetricsRegistry`.

Two registries exist at any time conceptually:

* the **null registry** (:data:`NULL_REGISTRY`) — the default.  Every
  instrument it hands out is a shared no-op singleton, so instrumented
  code pays one attribute call per record site and nothing else.  This is
  what keeps tier-1 results byte-identical with observability off.
* an **active registry**, installed with :func:`enable_metrics` (the CLI's
  ``--trace``/``--profile`` session does this).  Instrumented code always
  fetches the current one via :func:`get_metrics`.

Worker processes cannot share the parent's registry (sweeps use ``spawn``
pools), so registries support a snapshot/merge protocol: a worker wraps its
cell in :func:`instrumented_call`, ships back a picklable plain-dict
:func:`MetricsRegistry.snapshot`, and the parent folds it in with
:func:`MetricsRegistry.merge`.  Merge is associative and commutative
(counters and histogram fields add, gauges take the max), so aggregation
order across workers never changes the result.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_metrics",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "instrumented_call",
    "snapshot_to_prometheus",
]

SNAPSHOT_VERSION = 1

# Histogram bucket upper bounds: 4 buckets per decade, 1e-6 .. 1e3 (seconds
# scale for durations, but unit-agnostic).  Fixed so that snapshots from any
# process merge bucket-for-bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(10.0 ** (k / 4.0) for k in range(-24, 13))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the total."""
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n


class Gauge:
    """A point-in-time value (merge takes the maximum across processes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Sample distribution over fixed log-scale buckets.

    ``counts[i]`` counts samples ``<= BUCKET_BOUNDS[i]`` (and above the
    previous bound); the final slot is the overflow bucket.  Count, sum,
    min and max are tracked exactly, so means are exact and only quantiles
    are bucket-resolution approximations.
    """

    __slots__ = ("count", "total", "min", "max", "counts")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.counts[_bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        """Exact sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def time(self) -> "_HistogramTimer":
        """Context manager observing the wall-clock duration of its body."""
        return _HistogramTimer(self)


def _bucket_index(value: float) -> int:
    lo, hi = 0, len(BUCKET_BOUNDS)
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= BUCKET_BOUNDS[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram

    def __enter__(self) -> "_HistogramTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:  # noqa: D102 — deliberate no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 — deliberate no-op
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 — deliberate no-op
        pass


class MetricsRegistry:
    """Named instruments plus the snapshot/merge protocol.

    Instrument accessors create on first use and are thread-safe; the
    instruments themselves are plain attribute updates (atomic enough for
    CPython counters, and sweeps only write from one thread per process).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()
        # Baselines for snapshot_delta(): name -> last-shipped value.
        self._delta_counters: dict[str, int] = {}
        self._delta_gauges: dict[str, float] = {}
        self._delta_histograms: dict[str, tuple] = {}

    @property
    def enabled(self) -> bool:
        """Whether records are retained (False only for the null registry)."""
        return True

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(self._histograms, name, Histogram)

    def _get(self, table: dict, name: str, factory: Callable):
        instrument = table.get(name)
        if instrument is None:
            with self._lock:
                instrument = table.setdefault(name, factory())
        return instrument

    def snapshot(self) -> dict:
        """A picklable, JSON-able plain-dict copy of every instrument."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {
                n: g.value for n, g in self._gauges.items() if g.value is not None
            },
            "histograms": {
                n: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": list(h.counts),
                }
                for n, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters and histogram fields add; gauges keep the maximum.  The
        operation is associative and commutative, so per-worker snapshots
        may arrive (and be merged) in any order.
        """
        version = snapshot.get("version", SNAPSHOT_VERSION)
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported metrics snapshot version {version!r}")
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if gauge.value is None or value > gauge.value:
                gauge.value = value
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            buckets = data["buckets"]
            if len(buckets) != len(hist.counts):
                raise ValueError(
                    f"histogram {name!r} has {len(buckets)} buckets, "
                    f"expected {len(hist.counts)} — snapshot from an "
                    "incompatible build"
                )
            hist.count += data["count"]
            hist.total += data["sum"]
            for bound in ("min", "max"):
                other = data[bound]
                if other is None:
                    continue
                mine = getattr(hist, bound)
                pick = min if bound == "min" else max
                setattr(hist, bound, other if mine is None else pick(mine, other))
            for i, n in enumerate(buckets):
                hist.counts[i] += n

    def snapshot_delta(self) -> dict:
        """Increments since the previous ``snapshot_delta`` call.

        The delta has the same shape as :meth:`snapshot` and is consumed by
        the same :meth:`merge`, but only carries what changed: counter and
        histogram fields hold the *increase* since the last call, gauges
        ship their current value only when it changed (merge keeps the max,
        so a stream of deltas yields the max-over-time on the receiver).
        Merging every delta a registry ever emitted reproduces its full
        snapshot exactly for counters and histogram counts/sums/buckets —
        the property that makes streaming telemetry (heartbeat frames,
        chunk results) equivalent to the old ship-once-at-exit protocol.

        Values read concurrently with writer threads are never lost: each
        baseline stores exactly the value that was shipped, so an increment
        racing this call lands in the *next* delta.
        """
        delta: dict = {
            "version": SNAPSHOT_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, counter in list(self._counters.items()):
            current = counter.value
            previous = self._delta_counters.get(name, 0)
            if current != previous:
                delta["counters"][name] = current - previous
                self._delta_counters[name] = current
        for name, gauge in list(self._gauges.items()):
            current = gauge.value
            if current is not None and current != self._delta_gauges.get(name):
                delta["gauges"][name] = current
                self._delta_gauges[name] = current
        for name, hist in list(self._histograms.items()):
            count = hist.count
            total = hist.total
            buckets = list(hist.counts)
            prev_count, prev_total, prev_buckets = self._delta_histograms.get(
                name, (0, 0.0, None)
            )
            if count != prev_count:
                delta["histograms"][name] = {
                    "count": count - prev_count,
                    "sum": total - prev_total,
                    "min": hist.min,
                    "max": hist.max,
                    "buckets": [
                        n - (prev_buckets[i] if prev_buckets else 0)
                        for i, n in enumerate(buckets)
                    ],
                }
                self._delta_histograms[name] = (count, total, buckets)
        return delta

    def to_prometheus(self, *, prefix: str = "beaconplace_") -> str:
        """Render the current state in Prometheus text exposition format."""
        return snapshot_to_prometheus(self.snapshot(), prefix=prefix)


def _prom_name(name: str, prefix: str) -> str:
    return prefix + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def snapshot_to_prometheus(snapshot: dict, *, prefix: str = "beaconplace_") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Counters become ``<prefix><name>_total``, gauges map directly, and
    histograms expand to the conventional cumulative ``_bucket{le=...}`` /
    ``_sum`` / ``_count`` series over :data:`BUCKET_BOUNDS`.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(BUCKET_BOUNDS, data["buckets"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound:.6g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
        lines.append(f"{metric}_sum {data['sum']}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + "\n" if lines else ""


class _NullRegistry(MetricsRegistry):
    """The do-nothing registry installed by default.

    Hands out shared no-op instruments so instrumented code never branches
    on "is observability on?" — the fast path is one method call returning
    a singleton.
    """

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> Counter:
        return self._COUNTER

    def gauge(self, name: str) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str) -> Histogram:
        return self._HISTOGRAM

    def snapshot(self) -> dict:
        return {"version": SNAPSHOT_VERSION, "counters": {}, "gauges": {}, "histograms": {}}

    def snapshot_delta(self) -> dict:
        return self.snapshot()

    def merge(self, snapshot: dict) -> None:
        pass


NULL_REGISTRY = _NullRegistry()
_active: MetricsRegistry = NULL_REGISTRY


def get_metrics() -> MetricsRegistry:
    """The currently installed registry (the null registry by default)."""
    return _active


def metrics_enabled() -> bool:
    """Whether a real (recording) registry is installed."""
    return _active.enabled


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the process registry."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable_metrics() -> None:
    """Restore the no-op null registry."""
    global _active
    _active = NULL_REGISTRY


def instrumented_call(payload: tuple) -> dict:
    """Run one sweep cell in a worker with a private registry.

    ``payload`` is ``(fn, args)``.  A fresh registry is installed for the
    duration of the call (restoring whatever was active before), the cell's
    wall-clock duration is observed into ``sweep.cell.seconds``, and the
    result ships back as a plain dict::

        {"value": <fn(args)>, "seconds": <duration>, "metrics": <snapshot>}

    Module-level and picklable, so ``ProcessPoolExecutor`` can run it under
    the pinned ``spawn`` start method.
    """
    fn, args = payload
    previous = get_metrics()
    registry = MetricsRegistry()
    enable_metrics(registry)
    start = time.perf_counter()
    try:
        value = fn(args)
    finally:
        elapsed = time.perf_counter() - start
        enable_metrics(previous) if previous.enabled else disable_metrics()
    registry.histogram("sweep.cell.seconds").observe(elapsed)
    return {"value": value, "seconds": elapsed, "metrics": registry.snapshot()}
