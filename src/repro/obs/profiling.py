"""Opt-in profiling: wall-clock stage sections plus a cProfile capture.

The ``--profile`` CLI flag wraps a whole command in a
:class:`ProfileSession`.  Two complementary views come out:

* **stage sections** — instrumented code brackets coarse stages with
  ``session.section("sweep")``; the report is a per-stage wall-clock
  breakdown table (count, total, mean, share of profiled time).  Stages
  answer "where does the run spend its time" at the granularity the
  methodology cares about (trial RNG, world build, scoring, event loop).
* **cProfile** — the standard deterministic profiler runs underneath and
  the report appends the top functions by cumulative time, for when the
  stage view points somewhere surprising.

Profiling is strictly opt-in and never on during tier-1 runs, so its
(considerable) interpreter overhead is irrelevant to the <3% off-mode
budget enforced by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time

__all__ = ["ProfileSession", "get_profile", "enable_profiling", "disable_profiling"]


class _Section:
    __slots__ = ("_session", "_name", "_start")

    def __init__(self, session: "ProfileSession", name: str):
        self._session = session
        self._name = name

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._session._record(self._name, time.perf_counter() - self._start)


class _NullSection:
    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SECTION = _NullSection()


class ProfileSession:
    """One profiled command: stage timers + a cProfile capture.

    Use as a context manager (or call :meth:`start`/:meth:`stop`); render
    the per-stage breakdown with :meth:`render` after stopping.
    """

    def __init__(self) -> None:
        self._profile = cProfile.Profile()
        self._stages: dict[str, list] = {}  # name -> [count, total seconds]
        self._t0: float | None = None
        self.wall_seconds = 0.0

    def start(self) -> None:
        """Begin profiling (idempotent)."""
        if self._t0 is None:
            self._t0 = time.perf_counter()
            self._profile.enable()

    def stop(self) -> None:
        """Stop profiling and freeze the wall-clock total (idempotent)."""
        if self._t0 is not None:
            self._profile.disable()
            self.wall_seconds += time.perf_counter() - self._t0
            self._t0 = None

    def __enter__(self) -> "ProfileSession":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def section(self, name: str) -> _Section:
        """Context manager timing one named stage."""
        return _Section(self, name)

    def _record(self, name: str, seconds: float) -> None:
        entry = self._stages.setdefault(name, [0, 0.0])
        entry[0] += 1
        entry[1] += seconds

    def stage_rows(self) -> list[tuple]:
        """``(stage, count, total s, mean s, share)`` rows, biggest first."""
        total = self.wall_seconds or sum(t for _, t in self._stages.values()) or 1.0
        rows = [
            (name, count, seconds, seconds / count, seconds / total)
            for name, (count, seconds) in self._stages.items()
        ]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows

    def render(self, *, top: int = 15) -> str:
        """The full profile report (stage table + top cProfile functions)."""
        from ..viz import format_table

        lines = [f"profiled wall time: {self.wall_seconds:.3f} s"]
        if self._stages:
            rows = [
                (name, count, f"{total:.3f}", f"{mean * 1e3:.2f}", f"{share:.1%}")
                for name, count, total, mean, share in self.stage_rows()
            ]
            lines.append("")
            lines.append(
                format_table(
                    ("stage", "count", "total (s)", "mean (ms)", "share"), rows
                )
            )
        stream = io.StringIO()
        stats = pstats.Stats(self._profile, stream=stream)
        stats.sort_stats("cumulative").print_stats(top)
        lines.append("")
        lines.append(f"top {top} functions by cumulative time (cProfile):")
        lines.append(stream.getvalue().rstrip())
        return "\n".join(lines)


class _NullProfile:
    """No-op stand-in handed out while profiling is off."""

    def section(self, name: str) -> _NullSection:
        return _NULL_SECTION


NULL_PROFILE = _NullProfile()
_active = NULL_PROFILE


def get_profile():
    """The active :class:`ProfileSession`, or the no-op stand-in."""
    return _active


def enable_profiling(session: ProfileSession | None = None) -> ProfileSession:
    """Install (and start) a profile session for this process."""
    global _active
    _active = session if session is not None else ProfileSession()
    _active.start()
    return _active


def disable_profiling() -> None:
    """Stop any active session and restore the no-op stand-in."""
    global _active
    if isinstance(_active, ProfileSession):
        _active.stop()
    _active = NULL_PROFILE
