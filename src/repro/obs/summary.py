"""Rendering observability artifacts for humans.

One run directory (the CLI's ``--trace DIR``) holds:

* ``trace.jsonl`` — span/event records (:mod:`repro.obs.trace`),
* ``metrics.json`` — the final registry snapshot
  (:meth:`repro.obs.MetricsRegistry.snapshot`),
* ``profile.txt`` — the ``--profile`` breakdown, when requested.

:func:`summarize_run_dir` renders whichever of those exist into the report
behind ``beaconplace obs``: top spans by cumulative time, counters (retries,
timeouts, messages lost …), gauges and duration histograms.

The sweep journal helpers live here too because ``beaconplace journal``
(the ROADMAP inspection/compaction tool) shares this module's rendering.
They parse journal JSONL directly — same format as
:class:`repro.sim.SweepJournal`, without importing the sim layer (obs sits
below everything it instruments, so it must not import upward).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from .metrics import BUCKET_BOUNDS
from .trace import read_trace

__all__ = [
    "summarize_spans",
    "format_trace_summary",
    "format_metrics_snapshot",
    "summarize_run_dir",
    "TraceStitch",
    "stitch_trace",
    "format_trace_tree",
    "JournalSummary",
    "JournalMergeStats",
    "inspect_journal",
    "compact_journal",
    "merge_journals",
    "format_journal_summary",
]

TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.json"
PROFILE_FILENAME = "profile.txt"


# -- Trace ------------------------------------------------------------------


def summarize_spans(records: list[dict]) -> list[tuple]:
    """Aggregate span records by name.

    Returns:
        ``(name, count, total s, mean s, max s)`` rows, by cumulative time
        descending.
    """
    totals: dict[str, list] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        entry = totals.setdefault(record["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record.get("dur", 0.0)
        entry[2] = max(entry[2], record.get("dur", 0.0))
    rows = [
        (name, count, total, total / count, peak)
        for name, (count, total, peak) in totals.items()
    ]
    rows.sort(key=lambda r: r[2], reverse=True)
    return rows


def format_trace_summary(path, *, top: int = 12) -> str:
    """Render the top spans (and event count) of one trace file."""
    from ..viz import format_table

    _, records = read_trace(path)
    spans = summarize_spans(records)
    events = sum(1 for r in records if r.get("kind") == "event")
    lines = [f"trace: {len(records)} record(s), {len(spans)} span name(s), {events} event(s)"]
    if spans:
        rows = [
            (name, count, f"{total:.3f}", f"{mean * 1e3:.2f}", f"{peak * 1e3:.2f}")
            for name, count, total, mean, peak in spans[:top]
        ]
        lines.append(
            format_table(
                ("span", "count", "total (s)", "mean (ms)", "max (ms)"), rows
            )
        )
    return "\n".join(lines)


# -- Trace stitching --------------------------------------------------------


@dataclass(frozen=True)
class TraceStitch:
    """One distributed trace reassembled from span records.

    Attributes:
        spans: every span record carrying a ``span`` id.
        roots: spans with no parent — normally the driver's top-level
            section(s) (``sweep.run_cells``).
        children: parent span id → child records, dispatch order preserved.
        orphans: spans naming a parent that no record defines — a stitching
            failure (lost context, or a trace file truncated mid-run).
        legacy: span records without ids (pre-v2 traces); they cannot be
            placed in the tree.
        traces: distinct trace ids seen.
    """

    spans: list[dict]
    roots: list[dict]
    children: dict[str, list[dict]]
    orphans: list[dict]
    legacy: list[dict]
    traces: list[str]


def stitch_trace(records: list[dict]) -> TraceStitch:
    """Reassemble span records into a driver → worker → cell tree.

    Worker-side spans ship home with the driver's span id as their
    ``parent`` (:func:`repro.obs.trace.span_record`), so one socket or pool
    sweep stitches into a single tree no matter how many processes and
    machines produced the spans.
    """
    spans = [r for r in records if r.get("kind") == "span" and "span" in r]
    legacy = [r for r in records if r.get("kind") == "span" and "span" not in r]
    by_id = {r["span"]: r for r in spans}
    roots: list[dict] = []
    orphans: list[dict] = []
    children: dict[str, list[dict]] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is None:
            roots.append(record)
        elif parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            orphans.append(record)
    traces = sorted({r["trace"] for r in spans if "trace" in r})
    return TraceStitch(
        spans=spans,
        roots=roots,
        children=children,
        orphans=orphans,
        legacy=legacy,
        traces=traces,
    )


def _span_origin(record: dict) -> str:
    origin = record.get("worker") or f"pid {record.get('pid', '?')}"
    host = record.get("host")
    return f"{origin}@{host}" if host else str(origin)


def _render_subtree(record: dict, children: dict, lines: list[str],
                    prefix: str, last: bool, max_children: int) -> None:
    connector = "└─ " if last else "├─ "
    attrs = record.get("attrs") or {}
    key = attrs.get("key")
    label = f"{record['name']}{' ' + _fmt_stitch_key(key) if key is not None else ''}"
    lines.append(
        f"{prefix}{connector}{label}  {record.get('dur', 0.0):.3f}s"
        f"  [{_span_origin(record)}]"
    )
    kids = children.get(record["span"], [])
    shown = kids[:max_children]
    child_prefix = prefix + ("   " if last else "│  ")
    for i, kid in enumerate(shown):
        kid_last = i == len(shown) - 1 and len(kids) <= max_children
        _render_subtree(kid, children, lines, child_prefix, kid_last, max_children)
    if len(kids) > max_children:
        lines.append(f"{child_prefix}└─ … {len(kids) - max_children} more")


def _fmt_stitch_key(key) -> str:
    if isinstance(key, list):
        return "(" + ", ".join(str(k) for k in key) + ")"
    return str(key)


def format_trace_tree(path, *, max_children: int = 8) -> str:
    """Render the stitched trace tree of one trace file."""
    _, records = read_trace(path)
    stitch = stitch_trace(records)
    if not stitch.spans:
        return "trace tree: no id-carrying spans (trace predates stitching?)"
    trace_label = ", ".join(stitch.traces) if stitch.traces else "?"
    lines = [
        f"trace {trace_label} — {len(stitch.spans)} span(s), "
        f"{len(stitch.roots)} root(s), {len(stitch.orphans)} orphan(s)"
        + (f", {len(stitch.legacy)} legacy" if stitch.legacy else "")
    ]
    for i, root in enumerate(stitch.roots):
        _render_subtree(
            root, stitch.children, lines, "", i == len(stitch.roots) - 1, max_children
        )
    for orphan in stitch.orphans:
        lines.append(
            f"?? orphan {orphan['name']} (parent {orphan.get('parent')!r} missing)"
            f"  [{_span_origin(orphan)}]"
        )
    return "\n".join(lines)


# -- Metrics ----------------------------------------------------------------


def _quantile_from_buckets(buckets: list[int], q: float) -> float | None:
    """Approximate the q-quantile from log-bucket counts (upper bound)."""
    total = sum(buckets)
    if total == 0:
        return None
    target = q * total
    seen = 0
    for i, count in enumerate(buckets):
        seen += count
        if seen >= target:
            return BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else math.inf
    return BUCKET_BOUNDS[-1]


def format_metrics_snapshot(snapshot: dict) -> str:
    """Render one registry snapshot (counters, gauges, histograms)."""
    from ..viz import format_table

    sections = []
    counters = snapshot.get("counters", {})
    if counters:
        rows = [(name, counters[name]) for name in sorted(counters)]
        sections.append("counters:\n" + format_table(("name", "total"), rows))
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows = [(name, f"{gauges[name]:g}") for name in sorted(gauges)]
        sections.append("gauges:\n" + format_table(("name", "value"), rows))
    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            count = h["count"]
            mean = h["sum"] / count if count else 0.0
            p95 = _quantile_from_buckets(h["buckets"], 0.95)
            rows.append(
                (
                    name,
                    count,
                    f"{mean * 1e3:.2f}",
                    f"{(p95 or 0.0) * 1e3:.2f}",
                    f"{(h['max'] or 0.0) * 1e3:.2f}",
                )
            )
        sections.append(
            "histograms (seconds-scale):\n"
            + format_table(
                ("name", "count", "mean (ms)", "~p95 (ms)", "max (ms)"), rows
            )
        )
    if not sections:
        return "metrics: empty snapshot"
    return "\n\n".join(sections)


def summarize_run_dir(run_dir) -> str:
    """Render every observability artifact present in ``run_dir``.

    Raises:
        FileNotFoundError: if the directory holds none of the artifacts.
    """
    run_dir = Path(run_dir)
    sections = []
    trace_path = run_dir / TRACE_FILENAME
    if trace_path.exists():
        sections.append(format_trace_summary(trace_path))
        _, records = read_trace(trace_path)
        stitch = stitch_trace(records)
        if stitch.spans:
            hosts = {r.get("host") for r in stitch.spans} - {None}
            pids = {r.get("pid") for r in stitch.spans} - {None}
            sections.append(
                f"stitched trace: {len(stitch.spans)} span(s) across "
                f"{len(pids)} process(es) on {len(hosts)} host(s), "
                f"{len(stitch.roots)} root(s), {len(stitch.orphans)} orphan(s)"
            )
    metrics_path = run_dir / METRICS_FILENAME
    if metrics_path.exists():
        with metrics_path.open() as handle:
            sections.append(format_metrics_snapshot(json.load(handle)))
    profile_path = run_dir / PROFILE_FILENAME
    if profile_path.exists():
        sections.append(f"profile breakdown: see {profile_path}")
    if not sections:
        raise FileNotFoundError(
            f"no observability artifacts in {run_dir} "
            f"(expected {TRACE_FILENAME} and/or {METRICS_FILENAME}; "
            "produce them with --trace/--profile)"
        )
    return "\n\n".join(sections)


# -- Sweep journals ---------------------------------------------------------


@dataclass(frozen=True)
class JournalSummary:
    """What ``beaconplace journal`` reports about one sweep journal.

    Attributes:
        path: the journal file.
        fingerprint: sweep identity from the header.
        total_lines: cell lines in the file (including superseded ones).
        done: keys whose latest entry succeeded with a finite value.
        nan: keys whose latest entry succeeded with a NaN/None value.
        failed: keys whose latest entry is a failure (degrades to NaN).
        superseded: stale lines for keys that have a later entry —
            exactly what ``--compact`` drops.
        attempts: total attempts recorded across latest entries.
    """

    path: Path
    fingerprint: str
    total_lines: int
    done: int
    nan: int
    failed: int
    superseded: int
    attempts: int


def _load_journal_lines(path: Path) -> tuple[dict, list[dict]]:
    header: dict = {}
    cells: list[dict] = []
    with path.open() as handle:
        for i, line in enumerate(handle):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # partial trailing line from a killed run
            if i == 0:
                if record.get("kind") != "header":
                    raise ValueError(f"journal {path} has no header line")
                header = record
            elif record.get("kind") == "cell":
                cells.append(record)
    if not header:
        raise ValueError(f"journal {path} has no header line")
    return header, cells


def _latest_entries(cells: list[dict]) -> dict:
    latest: dict = {}
    for record in cells:
        latest[tuple(record["key"])] = record
    return latest


def inspect_journal(path) -> JournalSummary:
    """Summarize a sweep journal without touching it."""
    path = Path(path)
    header, cells = _load_journal_lines(path)
    latest = _latest_entries(cells)
    done = nan = failed = attempts = 0
    for entry in latest.values():
        attempts += int(entry.get("attempts", 1))
        if not entry.get("ok"):
            failed += 1
        else:
            value = entry.get("value")
            if value is None or (isinstance(value, float) and math.isnan(value)):
                nan += 1
            else:
                done += 1
    return JournalSummary(
        path=path,
        fingerprint=str(header.get("fingerprint", "")),
        total_lines=len(cells),
        done=done,
        nan=nan,
        failed=failed,
        superseded=len(cells) - len(latest),
        attempts=attempts,
    )


def compact_journal(path) -> tuple[int, int]:
    """Drop superseded lines from a journal, in place (atomic replace).

    A line is superseded when a later line exists for the same cell key —
    the retry bookkeeping of resumed runs.  The surviving lines keep their
    original order of last occurrence, so a compacted journal loads to the
    same state as the original.

    Returns:
        ``(kept, dropped)`` cell-line counts.
    """
    path = Path(path)
    header, cells = _load_journal_lines(path)
    latest = _latest_entries(cells)
    kept = [entry for entry in cells if latest[tuple(entry["key"])] is entry]
    tmp = path.with_suffix(path.suffix + ".compact")
    with tmp.open("w") as handle:
        handle.write(json.dumps(header) + "\n")
        for entry in kept:
            handle.write(json.dumps(entry) + "\n")
    tmp.replace(path)
    return len(kept), len(cells) - len(kept)


@dataclass(frozen=True)
class JournalMergeStats:
    """What :func:`merge_journals` did.

    Attributes:
        out: the merged journal path.
        fingerprint: the (single) sweep identity all inputs shared.
        inputs: number of input journals read.
        cells: distinct cell keys in the merged journal.
        superseded: input cell lines dropped because a later input (or a
            later line in the same input) recorded the same key —
            last-writer-wins, in the order the inputs were given.
    """

    out: Path
    fingerprint: str
    inputs: int
    cells: int
    superseded: int


def merge_journals(out, inputs) -> JournalMergeStats:
    """Merge sharded/distributed sweep journals into one.

    The shards of one sweep — separate machines each running a slice of the
    cells, or interrupted runs of the same sweep — share a fingerprint;
    merging journals from *different* sweeps is refused.  Duplicate cell
    keys resolve last-writer-wins across the concatenation of the inputs in
    the order given, matching how a single journal resolves its own
    superseded lines; the merged file is compact (one line per key, in
    order of last occurrence) and atomically replaces ``out`` (which may
    itself be one of the inputs).

    Args:
        out: destination path for the merged journal.
        inputs: one or more journal paths to merge.

    Raises:
        ValueError: no inputs, or the inputs' fingerprints disagree.
        FileNotFoundError: an input journal does not exist.
    """
    paths = [Path(p) for p in inputs]
    if not paths:
        raise ValueError("merge needs at least one input journal")
    loaded = []
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no journal at {path}")
        loaded.append((path, *_load_journal_lines(path)))
    fingerprints = {str(header.get("fingerprint", "")) for _, header, _ in loaded}
    if len(fingerprints) != 1:
        detail = ", ".join(
            f"{path}: {header.get('fingerprint')!r}" for path, header, _ in loaded
        )
        raise ValueError(
            f"journals belong to different sweeps ({detail}); "
            "only shards of one sweep can merge"
        )
    header = loaded[0][1]
    combined = [record for _, _, cells in loaded for record in cells]
    latest = _latest_entries(combined)
    kept = [entry for entry in combined if latest[tuple(entry["key"])] is entry]
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    tmp = out.with_suffix(out.suffix + ".merge")
    with tmp.open("w") as handle:
        handle.write(json.dumps(header) + "\n")
        for entry in kept:
            handle.write(json.dumps(entry) + "\n")
    tmp.replace(out)
    return JournalMergeStats(
        out=out,
        fingerprint=fingerprints.pop(),
        inputs=len(paths),
        cells=len(kept),
        superseded=len(combined) - len(kept),
    )


def format_journal_summary(summary: JournalSummary, *, keys: bool = False) -> str:
    """Render one :class:`JournalSummary` (optionally listing cell keys)."""
    from ..viz import format_table

    cells = summary.done + summary.nan + summary.failed
    rows = [
        ("fingerprint", summary.fingerprint),
        ("cells recorded", cells),
        ("done", summary.done),
        ("NaN-valued", summary.nan),
        ("failed (degrade to NaN)", summary.failed),
        ("superseded lines", summary.superseded),
        ("attempts (latest entries)", summary.attempts),
    ]
    text = f"journal {summary.path}\n" + format_table(("field", "value"), rows)
    if keys:
        _, records = _load_journal_lines(summary.path)
        lines = []
        for key, entry in sorted(_latest_entries(records).items()):
            status = "ok" if entry.get("ok") else f"FAILED ({entry.get('error', '?')})"
            lines.append(f"  {list(key)}: {status} after {entry.get('attempts', 1)} attempt(s)")
        text += "\ncells:\n" + "\n".join(lines)
    return text
