"""Spatial statistics of error surfaces.

The Max algorithm *"is predicated on the assumption that points with high
localization error are spatially correlated"* (§3.2.2), and the Grid
algorithm's 2R grid side implicitly assumes the correlation length is on the
order of the radio range.  This module measures both assumptions directly on
simulated error surfaces:

* :func:`morans_i` — Moran's I spatial autocorrelation of a lattice field
  (+1 clustered, 0 random, −1 dispersed);
* :func:`correlation_length` — the lag at which the isotropic spatial
  autocorrelation of the error surface decays below a threshold;
* :func:`semivariogram` — the classical geostatistical summary γ(h).

Ablation bench A6 reports these across densities and noise levels: the
correlation length sits near R (validating gridSide = 2R) and shrinks with
noise (why Max degrades first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["morans_i", "semivariogram", "correlation_length", "SpatialSummary"]


def _as_image(values: np.ndarray) -> np.ndarray:
    img = np.asarray(values, dtype=float)
    if img.ndim != 2:
        raise ValueError(f"expected a 2-D lattice image, got shape {img.shape}")
    if not np.isfinite(img).any():
        raise ValueError("image has no finite values")
    return img


def morans_i(image: np.ndarray) -> float:
    """Moran's I of a lattice field under rook (4-neighbour) weights.

    NaN cells are mean-imputed (they carry no deviation signal).

    Returns:
        I ∈ [−1, 1]; ≈ 0 for spatially random fields, → 1 for smooth ones.
    """
    img = _as_image(image)
    mean = np.nanmean(img)
    dev = np.nan_to_num(img - mean, nan=0.0)

    num = 0.0
    weight_sum = 0.0
    # Horizontal and vertical neighbour products.
    num += 2.0 * float((dev[:, :-1] * dev[:, 1:]).sum())
    weight_sum += 2.0 * dev[:, :-1].size
    num += 2.0 * float((dev[:-1, :] * dev[1:, :]).sum())
    weight_sum += 2.0 * dev[:-1, :].size

    denom = float((dev**2).sum())
    if denom <= 0.0:
        return 0.0
    n = dev.size
    return (n / weight_sum) * (num / denom)


def semivariogram(
    image: np.ndarray, max_lag: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic (axis-aligned) empirical semivariogram of a lattice field.

    γ(h) = ½ · E[(z(p) − z(p+h))²] averaged over the two axis directions.

    Args:
        image: ``(n, m)`` lattice values (NaNs excluded pairwise).
        max_lag: largest lag in cells (default: half the smaller dimension).

    Returns:
        ``(lags, gamma)`` — integer lags ``1..max_lag`` and γ values (NaN for
        lags with no valid pairs).
    """
    img = _as_image(image)
    if max_lag is None:
        max_lag = min(img.shape) // 2
    if max_lag < 1:
        raise ValueError(f"max_lag must be >= 1, got {max_lag}")

    lags = np.arange(1, max_lag + 1)
    gamma = np.full(max_lag, np.nan)
    for k, h in enumerate(lags):
        diffs = []
        if img.shape[1] > h:
            diffs.append((img[:, :-h] - img[:, h:]).ravel())
        if img.shape[0] > h:
            diffs.append((img[:-h, :] - img[h:, :]).ravel())
        if not diffs:
            continue
        d = np.concatenate(diffs)
        d = d[~np.isnan(d)]
        if d.size:
            gamma[k] = 0.5 * float(np.mean(d**2))
    return lags, gamma


def correlation_length(
    image: np.ndarray,
    cell_size: float = 1.0,
    threshold: float = np.e**-1,
) -> float:
    """Distance at which spatial autocorrelation decays below ``threshold``.

    Computed from the semivariogram via ρ(h) = 1 − γ(h)/γ(∞), with γ(∞)
    estimated as the variogram sill (its mean over the largest quartile of
    lags).

    Args:
        image: lattice values.
        cell_size: meters per lattice cell (converts lag to distance).
        threshold: correlation level defining the length (default 1/e).

    Returns:
        The correlation length in meters; ``inf`` if correlation never
        decays below the threshold within the measured lags.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    lags, gamma = semivariogram(image)
    valid = ~np.isnan(gamma)
    if valid.sum() < 4:
        raise ValueError("not enough valid lags to estimate a correlation length")
    lags, gamma = lags[valid], gamma[valid]
    tail = gamma[-max(len(gamma) // 4, 1):]
    sill = float(tail.mean())
    if sill <= 0.0:
        return 0.0
    rho = 1.0 - gamma / sill
    below = np.flatnonzero(rho < threshold)
    if below.size == 0:
        return float("inf")
    return float(lags[below[0]]) * cell_size


@dataclass(frozen=True)
class SpatialSummary:
    """Spatial statistics of one error surface.

    Attributes:
        morans_i: 4-neighbour Moran's I.
        correlation_length: 1/e correlation distance in meters.
    """

    morans_i: float
    correlation_length: float

    @classmethod
    def of_error_surface(cls, surface) -> "SpatialSummary":
        """Compute the summary of a :class:`repro.localization.ErrorSurface`."""
        image = surface.as_image()
        return cls(
            morans_i=morans_i(image),
            correlation_length=correlation_length(image, cell_size=surface.grid.step),
        )
