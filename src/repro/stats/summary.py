"""Summary statistics with confidence intervals.

All figures in the paper carry 95 % confidence intervals over the 1000
replicated beacon fields; these helpers compute the matching t-based
intervals (and medians with order-statistic intervals) for our replications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = ["MeanCI", "mean_ci", "median_ci"]


@dataclass(frozen=True)
class MeanCI:
    """A point estimate with a symmetric confidence half-width.

    Attributes:
        value: the point estimate.
        half_width: half-width of the confidence interval (0 for n = 1).
        n: number of samples.
        confidence: the confidence level used.
    """

    value: float
    half_width: float
    n: int
    confidence: float

    @property
    def low(self) -> float:
        """Lower confidence bound."""
        return self.value - self.half_width

    @property
    def high(self) -> float:
        """Upper confidence bound."""
        return self.value + self.half_width


def mean_ci(samples, confidence: float = 0.95) -> MeanCI:
    """Sample mean with a Student-t confidence interval.

    NaN samples are dropped (they encode excluded measurements upstream).

    Raises:
        ValueError: if no finite samples remain.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    x = np.asarray(samples, dtype=float)
    x = x[~np.isnan(x)]
    if x.size == 0:
        raise ValueError("mean_ci requires at least one finite sample")
    mean = float(x.mean())
    if x.size == 1:
        return MeanCI(mean, 0.0, 1, confidence)
    sem = float(x.std(ddof=1)) / np.sqrt(x.size)
    t_crit = float(sps.t.ppf(0.5 + confidence / 2.0, df=x.size - 1))
    return MeanCI(mean, t_crit * sem, int(x.size), confidence)


def median_ci(samples, confidence: float = 0.95) -> MeanCI:
    """Sample median with a distribution-free order-statistic interval.

    Uses the binomial order-statistic bounds; for tiny samples the interval
    degenerates to the data range.  Reported as a symmetric half-width for
    uniformity (the larger of the two sides).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    x = np.sort(np.asarray(samples, dtype=float))
    x = x[~np.isnan(x)]
    if x.size == 0:
        raise ValueError("median_ci requires at least one finite sample")
    med = float(np.median(x))
    n = x.size
    if n < 3:
        half = float(x.max() - x.min()) / 2.0
        return MeanCI(med, half, n, confidence)
    lo_idx = int(sps.binom.ppf((1.0 - confidence) / 2.0, n, 0.5))
    hi_idx = int(sps.binom.isf((1.0 - confidence) / 2.0, n, 0.5))
    lo_idx = max(min(lo_idx, n - 1), 0)
    hi_idx = max(min(hi_idx, n - 1), 0)
    half = max(med - float(x[lo_idx]), float(x[hi_idx]) - med)
    return MeanCI(med, half, n, confidence)
