"""Statistics: confidence intervals, bootstrap, solution-space density."""

from .bootstrap import BootstrapCI, bootstrap_ci
from .distribution import (
    ErrorCdf,
    distribution_improvement,
    error_cdf,
    quantile_profile,
)
from .spatial import SpatialSummary, correlation_length, morans_i, semivariogram
from .solution_space import SolutionSpaceAnalysis, analyze_solution_space
from .summary import MeanCI, mean_ci, median_ci

__all__ = [
    "MeanCI",
    "mean_ci",
    "median_ci",
    "BootstrapCI",
    "bootstrap_ci",
    "SolutionSpaceAnalysis",
    "analyze_solution_space",
    "SpatialSummary",
    "morans_i",
    "semivariogram",
    "correlation_length",
    "ErrorCdf",
    "error_cdf",
    "quantile_profile",
    "distribution_improvement",
]
