"""Error-distribution summaries beyond mean and median.

The paper reports the mean and median of the localization-error field; the
full distribution says more — the tail is what a context-aware application
actually experiences at its worst moments.  These helpers compute empirical
CDFs and quantile profiles of error surfaces, and compare two surfaces
(before/after a placement) across the whole distribution rather than at two
scalar cuts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ErrorCdf", "error_cdf", "quantile_profile", "distribution_improvement"]


@dataclass(frozen=True)
class ErrorCdf:
    """Empirical CDF of a (NaN-filtered) error sample.

    Attributes:
        values: sorted error values, ``(K,)``.
        probabilities: cumulative probabilities at each value, ``(K,)``.
    """

    values: np.ndarray
    probabilities: np.ndarray

    def at(self, error: float) -> float:
        """P(LE ≤ error)."""
        return float(np.searchsorted(self.values, error, side="right") / self.values.size)

    def quantile(self, q: float) -> float:
        """The error level not exceeded with probability ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    def exceedance(self, error: float) -> float:
        """P(LE > error) — the service-failure rate at a tolerance."""
        return 1.0 - self.at(error)


def error_cdf(errors) -> ErrorCdf:
    """Empirical CDF of an error sample (NaNs dropped).

    Raises:
        ValueError: if no finite values remain.
    """
    x = np.asarray(errors, dtype=float).ravel()
    x = x[~np.isnan(x)]
    if x.size == 0:
        raise ValueError("error_cdf requires at least one finite value")
    values = np.sort(x)
    probabilities = np.arange(1, values.size + 1) / values.size
    return ErrorCdf(values=values, probabilities=probabilities)


def quantile_profile(errors, qs=(0.1, 0.25, 0.5, 0.75, 0.9, 0.99)) -> dict[float, float]:
    """Named quantiles of an error sample (NaN-aware)."""
    x = np.asarray(errors, dtype=float).ravel()
    x = x[~np.isnan(x)]
    if x.size == 0:
        raise ValueError("quantile_profile requires at least one finite value")
    return {float(q): float(np.quantile(x, q)) for q in qs}


def distribution_improvement(
    before, after, qs=(0.5, 0.75, 0.9, 0.99)
) -> dict[float, float]:
    """Per-quantile improvement (before − after) between two error samples.

    Generalizes the paper's two §4.1 metrics: entry 0.5 is exactly the
    improvement-in-median metric; the upper quantiles show whether a
    placement fixed the tail or just the middle.
    """
    profile_before = quantile_profile(before, qs)
    profile_after = quantile_profile(after, qs)
    return {q: profile_before[q] - profile_after[q] for q in profile_before}
