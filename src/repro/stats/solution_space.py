"""Solution-space density analysis (Section 3's enabling concept).

The paper: *"The efficacy of algorithms … designed to work in noisy
environments is predicated on the assumption that the solution space for the
problem must be dense in number of satisfying solutions.  For instance, if
the only way to improve the quality of localization … is to place [the
beacon] at a single point in the region, then it is difficult to design
algorithms that can identify that point in the presence of so much noise."*

This module measures that density empirically: sample candidate positions
uniformly over the terrain, evaluate the true improvement each would yield
(via the trial world's counterfactual evaluation), and summarize how much of
the terrain constitutes a "satisfying" placement.  Bench A4 reports the
analysis across densities and noise levels — the quantitative backing for
the paper's claim that its algorithms work precisely because low-density
regimes are improvement-rich.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SolutionSpaceAnalysis", "analyze_solution_space"]


@dataclass(frozen=True)
class SolutionSpaceAnalysis:
    """Improvements achievable across sampled candidate placements.

    Attributes:
        candidates: ``(K, 2)`` sampled candidate positions.
        improvements: ``(K,)`` improvement in mean localization error that a
            beacon at each candidate would deliver (meters; may be negative —
            a beacon can hurt).
    """

    candidates: np.ndarray
    improvements: np.ndarray

    @property
    def best(self) -> float:
        """The best achievable improvement among the sampled candidates."""
        return float(self.improvements.max())

    @property
    def mean(self) -> float:
        """Mean improvement over all candidates (the Random algorithm's
        expected gain, by definition)."""
        return float(self.improvements.mean())

    def satisfying_fraction(self, threshold: float) -> float:
        """Fraction of candidates achieving at least ``threshold`` meters."""
        if self.improvements.size == 0:
            return float("nan")
        return float((self.improvements >= threshold).mean())

    def density_at_fraction_of_best(self, fraction: float = 0.5) -> float:
        """Fraction of the terrain that is a near-optimal placement.

        Args:
            fraction: "satisfying" means achieving at least this fraction of
                the best sampled improvement.

        Returns:
            The solution-space density in [0, 1]; NaN when even the best
            candidate yields no improvement (saturated regime).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self.best <= 0.0:
            return float("nan")
        return self.satisfying_fraction(fraction * self.best)

    def quantiles(self, qs=(0.1, 0.5, 0.9)) -> list[float]:
        """Improvement quantiles across candidates."""
        return [float(v) for v in np.quantile(self.improvements, qs)]


def analyze_solution_space(
    world,
    rng: np.random.Generator,
    *,
    num_candidates: int = 200,
) -> SolutionSpaceAnalysis:
    """Sample the candidate space of one trial world.

    Args:
        world: a :class:`repro.sim.TrialWorld` (anything exposing
            ``terrain_side`` and ``evaluate_candidate``).
        rng: randomness for candidate sampling.
        num_candidates: how many uniform candidates to evaluate.
    """
    if num_candidates < 1:
        raise ValueError(f"num_candidates must be >= 1, got {num_candidates}")
    candidates = rng.uniform(0.0, world.terrain_side, size=(num_candidates, 2))
    gains = np.empty(num_candidates)
    for k, (x, y) in enumerate(candidates):
        mean_gain, _ = world.evaluate_candidate((float(x), float(y)))
        gains[k] = mean_gain
    return SolutionSpaceAnalysis(candidates=candidates, improvements=gains)
