"""Bootstrap confidence intervals.

A nonparametric companion to the t-based intervals in
:mod:`repro.stats.summary`, used by tests to validate the parametric
intervals and by analyses whose statistic has no clean sampling
distribution (e.g. improvement *ratios* between algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BootstrapCI", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap percentile interval.

    Attributes:
        value: statistic of the original sample.
        low: lower percentile bound.
        high: upper percentile bound.
        resamples: number of bootstrap resamples used.
        confidence: the confidence level.
    """

    value: float
    low: float
    high: float
    resamples: int
    confidence: float


def bootstrap_ci(
    samples,
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapCI:
    """Percentile bootstrap interval for an arbitrary statistic.

    Args:
        samples: 1-D data (NaNs dropped).
        statistic: function of a 1-D array returning a scalar.
        confidence: interval coverage.
        resamples: bootstrap iterations.
        rng: randomness source (fresh default generator if omitted).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 1:
        raise ValueError(f"resamples must be >= 1, got {resamples}")
    x = np.asarray(samples, dtype=float)
    x = x[~np.isnan(x)]
    if x.size == 0:
        raise ValueError("bootstrap_ci requires at least one finite sample")
    if rng is None:
        rng = np.random.default_rng()

    point = float(statistic(x))
    idx = rng.integers(0, x.size, size=(resamples, x.size))
    values = np.array([statistic(x[row]) for row in idx], dtype=float)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        value=point,
        low=float(np.quantile(values, alpha)),
        high=float(np.quantile(values, 1.0 - alpha)),
        resamples=resamples,
        confidence=confidence,
    )
