"""Duty-cycled beacon transmitters (the power motivation of §1, executed).

    "Power considerations may require that only a restricted smaller subset
    of beacon nodes be active at any given time so as to prolong system
    lifetime."

:class:`DutyCycledTransmitter` runs the standard periodic process through an
awake/asleep schedule: the beacon cycles with period ``cycle_length``,
transmitting only during the awake fraction.  Per-beacon phase offsets are
randomized so the population's awake sets rotate (the AFECA-style fidelity
rotation of ref [19]).

The interaction with §2.2's threshold rule is the interesting part, probed
by tests: a client's received fraction from a duty-cycled beacon tracks the
awake fraction, so connectivity flips from "all in-range beacons" to "the
currently awake in-range beacons" once the duty fraction drops below
CM_thresh — the protocol-level mechanism behind
:class:`~repro.placement.DensityAdaptiveActivation`'s accuracy/energy trade.
"""

from __future__ import annotations

import numpy as np

from ..obs import get_metrics
from .beacon_process import BeaconTransmitter
from .channel import RadioChannel
from .events import Simulator

__all__ = ["DutyCycledTransmitter", "start_duty_cycled_processes"]


class DutyCycledTransmitter(BeaconTransmitter):
    """A periodic transmitter that sleeps through part of every cycle.

    Args:
        simulator: the event kernel.
        channel: the shared radio channel.
        beacon_index: this beacon's column in the field.
        period: transmission period while awake (seconds).
        message_duration: airtime per message.
        jitter: per-message phase jitter fraction.
        rng: randomness (initial phase, jitter, cycle phase).
        cycle_length: length of one awake/asleep cycle (seconds).
        awake_fraction: fraction of each cycle spent awake, in (0, 1].
    """

    def __init__(
        self,
        simulator: Simulator,
        channel: RadioChannel,
        beacon_index: int,
        period: float,
        message_duration: float,
        jitter: float,
        rng: np.random.Generator,
        *,
        cycle_length: float,
        awake_fraction: float,
    ):
        super().__init__(
            simulator, channel, beacon_index, period, message_duration, jitter, rng
        )
        if cycle_length <= 0:
            raise ValueError(f"cycle_length must be positive, got {cycle_length}")
        if not 0.0 < awake_fraction <= 1.0:
            raise ValueError(f"awake_fraction must be in (0, 1], got {awake_fraction}")
        self._cycle = float(cycle_length)
        self._awake_fraction = float(awake_fraction)
        self._cycle_phase = float(rng.uniform(0.0, cycle_length))
        self.messages_suppressed = 0

    def is_awake(self, time: float) -> bool:
        """Whether the beacon's schedule has it awake at ``time``."""
        phase = (time + self._cycle_phase) % self._cycle
        return phase < self._awake_fraction * self._cycle

    def _fire(self) -> None:
        if self._stopped:
            return
        if self.is_awake(self._sim.now):
            super()._fire()
            return
        # Asleep: skip this slot, but keep the clock running.
        self.messages_suppressed += 1
        get_metrics().counter("protocol.messages.suppressed").inc()
        delay = self._period
        if self._jitter > 0:
            delay += self._period * self._rng.uniform(-self._jitter, self._jitter)
            delay = max(delay, self._duration)
        self._sim.schedule_in(delay, self._fire)


def start_duty_cycled_processes(
    simulator: Simulator,
    channel: RadioChannel,
    num_beacons: int,
    *,
    period: float,
    message_duration: float,
    jitter: float,
    rng: np.random.Generator,
    cycle_length: float,
    awake_fraction: float,
) -> list[DutyCycledTransmitter]:
    """Create and start one duty-cycled transmitter per beacon."""
    get_metrics().gauge("protocol.duty.awake_fraction").set(awake_fraction)
    transmitters = []
    for b in range(num_beacons):
        tx = DutyCycledTransmitter(
            simulator,
            channel,
            b,
            period,
            message_duration,
            jitter,
            rng,
            cycle_length=cycle_length,
            awake_fraction=awake_fraction,
        )
        tx.start()
        transmitters.append(tx)
    return transmitters
