"""Protocol-level connectivity estimation (§2.2, executed rather than assumed).

    "Clients listen for a period t >> T to evaluate connectivity.  If the
    percentage of messages received from a beacon in a time interval t
    exceeds a threshold CM_thresh, that beacon is considered connected."

:class:`ProtocolConnectivityEstimator` runs the full pipeline — periodic
transmitters, collision channel, listening window, threshold — and returns
the same ``(P, N)`` boolean matrix the geometric models produce, plus the
channel statistics (collision/loss rates) the geometric shortcut hides.

Bench E4 uses it two ways: to *validate* the shortcut (with generous
``t/T`` and low beacon density the protocol matrix equals the geometric
one), and to *quantify self-interference* (at high densities collisions
push per-link delivery below CM_thresh, so protocol connectivity — and with
it localization — degrades even though geometry says it should saturate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..field import BeaconField
from ..geometry import as_point_array
from ..obs import get_metrics, get_profile, get_tracer
from ..radio import PropagationRealization
from .beacon_process import start_beacon_processes
from .channel import RadioChannel
from .events import Simulator

__all__ = ["ProtocolConnectivityEstimator", "ProtocolRunResult"]


@dataclass(frozen=True)
class ProtocolRunResult:
    """Outcome of one protocol listening window.

    Attributes:
        connectivity: ``(P, N)`` boolean — §2.2 threshold rule outcome.
        received_fraction: ``(P, N)`` decoded-message fraction per link
            (denominator: messages each beacon actually sent).
        messages_sent: total messages transmitted during the window.
        decoded_messages: messages successfully decoded, summed over
            listeners.
        collision_losses: messages destroyed by overlap, summed over
            listeners.
        propagation_losses: messages lost to the channel (inaudible draws),
            summed over listeners.
    """

    connectivity: np.ndarray
    received_fraction: np.ndarray
    messages_sent: int
    decoded_messages: int
    collision_losses: int
    propagation_losses: int

    @property
    def collision_rate(self) -> float:
        """Fraction of audible message arrivals destroyed by overlap."""
        audible = self.collision_losses + self.decoded_messages
        if audible <= 0:
            return 0.0
        return self.collision_losses / audible


class ProtocolConnectivityEstimator:
    """Estimate connectivity by actually running the beacon protocol.

    Args:
        period: beacon transmission period ``T`` (seconds).
        listen_time: client listening window ``t`` (seconds; the paper only
            requires ``t ≫ T`` — default 20 periods).
        message_duration: airtime per message (seconds).
        cm_thresh: the §2.2 received-fraction threshold ``CM_thresh``.
        jitter: per-message phase jitter fraction (desynchronization).
    """

    def __init__(
        self,
        period: float = 1.0,
        listen_time: float | None = None,
        message_duration: float = 0.005,
        cm_thresh: float = 0.75,
        jitter: float = 0.05,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 < cm_thresh <= 1.0:
            raise ValueError(f"cm_thresh must be in (0, 1], got {cm_thresh}")
        self.period = float(period)
        self.listen_time = float(listen_time) if listen_time is not None else 20.0 * period
        if self.listen_time < 2 * period:
            raise ValueError("listen_time must be at least 2 periods (t >> T)")
        self.message_duration = float(message_duration)
        self.cm_thresh = float(cm_thresh)
        self.jitter = float(jitter)

    def run(
        self,
        points,
        field: BeaconField,
        realization: PropagationRealization,
        rng: np.random.Generator,
        *,
        burst_loss=None,
        faults=None,
    ) -> ProtocolRunResult:
        """Simulate one listening window for every client point at once.

        Args:
            points: ``(P, 2)`` client locations.
            field: the transmitting beacons.
            realization: the propagation world.
            rng: per-run randomness (phases, jitter, loss draws).
            burst_loss: optional bursty loss process (see
                :class:`~repro.protocol.GilbertElliottLoss`).
            faults: optional beacon fault realization (see
                :class:`repro.faults.FaultRealization`); down beacons skip
                scheduled transmissions.
        """
        pts = as_point_array(points)
        sim = Simulator()
        channel = RadioChannel(sim, field, realization, pts, rng, burst_loss=burst_loss)
        transmitters = start_beacon_processes(
            sim,
            channel,
            len(field),
            period=self.period,
            message_duration=self.message_duration,
            jitter=self.jitter,
            rng=rng,
            faults=faults,
        )
        with get_profile().section("protocol.run"), get_tracer().span(
            "protocol.run", clients=int(pts.shape[0]), beacons=len(field)
        ):
            sim.run(until=self.listen_time)
            for tx in transmitters:
                tx.stop()
            sim.run()  # drain in-flight message completions

        sent = np.array([tx.messages_sent for tx in transmitters], dtype=float)
        received = channel.received_matrix(len(field)).astype(float)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(sent[None, :] > 0, received / sent[None, :], 0.0)
        connectivity = fraction >= self.cm_thresh

        collisions = sum(listener.collisions for listener in channel.listeners)
        missed = sum(listener.missed for listener in channel.listeners)
        decoded = int(received.sum())
        audible = collisions + decoded
        get_metrics().gauge("protocol.collision_rate").set(
            collisions / audible if audible else 0.0
        )
        return ProtocolRunResult(
            connectivity=connectivity,
            received_fraction=fraction,
            messages_sent=channel.messages_sent,
            decoded_messages=decoded,
            collision_losses=collisions,
            propagation_losses=missed,
        )

    def estimate(
        self,
        points,
        field: BeaconField,
        realization: PropagationRealization,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Just the ``(P, N)`` connectivity matrix (see :meth:`run`)."""
        return self.run(points, field, realization, rng).connectivity
