"""Protocol-level connectivity estimation (§2.2, executed rather than assumed).

    "Clients listen for a period t >> T to evaluate connectivity.  If the
    percentage of messages received from a beacon in a time interval t
    exceeds a threshold CM_thresh, that beacon is considered connected."

:class:`ProtocolConnectivityEstimator` runs the full pipeline — periodic
transmitters, collision channel, listening window, threshold — and returns
the same ``(P, N)`` boolean matrix the geometric models produce, plus the
channel statistics (collision/loss rates) the geometric shortcut hides.

Bench E4 uses it two ways: to *validate* the shortcut (with generous
``t/T`` and low beacon density the protocol matrix equals the geometric
one), and to *quantify self-interference* (at high densities collisions
push per-link delivery below CM_thresh, so protocol connectivity — and with
it localization — degrades even though geometry says it should saturate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..field import BeaconField
from ..geometry import as_point_array
from ..obs import get_metrics, get_profile, get_tracer
from ..radio import PropagationRealization
from .beacon_process import start_beacon_processes
from .channel import RadioChannel
from .events import Simulator

__all__ = ["BeaconBlacklist", "ProtocolConnectivityEstimator", "ProtocolRunResult"]


class BeaconBlacklist:
    """Client-side beacon blacklisting across successive listening windows.

    Under :class:`~repro.faults.IntermittentFault` flapping, a beacon that
    oscillates around ``CM_thresh`` flips in and out of every client's
    centroid set window after window, and the localization estimate jitters
    with it.  This is the minimal protocol-level recovery: each client
    tracks, per beacon, how many *consecutive* windows an expected beacon
    has gone missing; after ``miss_limit`` misses the beacon is dropped
    from the connected set for ``cooldown`` windows, then re-admitted the
    next time it is actually heard.  A flapping beacon thus degrades the
    client to its stable neighbours *gracefully* instead of oscillating —
    and a beacon that genuinely recovers rejoins after one clean window.

    A beacon becomes *expected* by being heard while admitted; a beacon the
    client has never heard is not counted as missing (clients cannot miss
    beacons they don't know about).  Hearing a beacon mid-cooldown does not
    shorten the cooldown — that is the point: one lucky window must not
    instantly restore trust in a flapper.

    The filter is stateful and deterministic: feeding it the same window
    sequence reproduces the same admitted sets.

    Args:
        miss_limit: consecutive missed windows before a beacon is dropped.
        cooldown: windows a dropped beacon stays excluded before it may be
            re-admitted.
    """

    def __init__(self, miss_limit: int = 3, cooldown: int = 5):
        if miss_limit < 1:
            raise ValueError(f"miss_limit must be >= 1, got {miss_limit}")
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.miss_limit = int(miss_limit)
        self.cooldown = int(cooldown)
        self._expected: np.ndarray | None = None
        self._misses: np.ndarray | None = None
        self._cooldown_left: np.ndarray | None = None

    def _ensure_state(self, shape: tuple[int, int]) -> None:
        if self._expected is None:
            self._expected = np.zeros(shape, dtype=bool)
            self._misses = np.zeros(shape, dtype=np.int64)
            self._cooldown_left = np.zeros(shape, dtype=np.int64)
        elif self._expected.shape != shape:
            raise ValueError(
                f"window shape {shape} does not match blacklist state "
                f"{self._expected.shape} (one blacklist per client/field pairing)"
            )

    @property
    def blacklisted(self) -> np.ndarray:
        """Current ``(P, N)`` exclusion mask (False before the first window)."""
        if self._cooldown_left is None:
            return np.zeros((0, 0), dtype=bool)
        return self._cooldown_left > 0

    def observe(self, connectivity: np.ndarray) -> np.ndarray:
        """Fold one window's raw connectivity into the admitted set.

        Args:
            connectivity: ``(P, N)`` boolean — the §2.2 threshold outcome
                for this listening window.

        Returns:
            The admitted ``(P, N)`` matrix: raw connectivity minus
            blacklisted beacons.  Call once per window, in order.
        """
        observed = np.asarray(connectivity, dtype=bool)
        if observed.ndim != 2:
            raise ValueError(
                f"connectivity must be 2-D (clients x beacons), got {observed.shape}"
            )
        self._ensure_state(observed.shape)
        active = self._cooldown_left == 0
        admitted = observed & active

        missed = self._expected & active & ~observed
        self._misses = np.where(missed, self._misses + 1, 0)
        drop = self._misses >= self.miss_limit
        # Existing cooldowns tick down at window end; fresh drops are set
        # *after* the tick so a dropped beacon sits out `cooldown` complete
        # windows before it may be re-admitted.
        np.maximum(self._cooldown_left - 1, 0, out=self._cooldown_left)
        if drop.any():
            self._cooldown_left[drop] = self.cooldown
            self._expected[drop] = False
            self._misses[drop] = 0
            admitted &= ~drop
        self._expected |= admitted
        return admitted


@dataclass(frozen=True)
class ProtocolRunResult:
    """Outcome of one protocol listening window.

    Attributes:
        connectivity: ``(P, N)`` boolean — §2.2 threshold rule outcome.
        received_fraction: ``(P, N)`` decoded-message fraction per link
            (denominator: messages each beacon actually sent).
        messages_sent: total messages transmitted during the window.
        decoded_messages: messages successfully decoded, summed over
            listeners.
        collision_losses: messages destroyed by overlap, summed over
            listeners.
        propagation_losses: messages lost to the channel (inaudible draws),
            summed over listeners.
    """

    connectivity: np.ndarray
    received_fraction: np.ndarray
    messages_sent: int
    decoded_messages: int
    collision_losses: int
    propagation_losses: int

    @property
    def collision_rate(self) -> float:
        """Fraction of audible message arrivals destroyed by overlap."""
        audible = self.collision_losses + self.decoded_messages
        if audible <= 0:
            return 0.0
        return self.collision_losses / audible


class ProtocolConnectivityEstimator:
    """Estimate connectivity by actually running the beacon protocol.

    Args:
        period: beacon transmission period ``T`` (seconds).
        listen_time: client listening window ``t`` (seconds; the paper only
            requires ``t ≫ T`` — default 20 periods).
        message_duration: airtime per message (seconds).
        cm_thresh: the §2.2 received-fraction threshold ``CM_thresh``.
        jitter: per-message phase jitter fraction (desynchronization).
    """

    def __init__(
        self,
        period: float = 1.0,
        listen_time: float | None = None,
        message_duration: float = 0.005,
        cm_thresh: float = 0.75,
        jitter: float = 0.05,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 < cm_thresh <= 1.0:
            raise ValueError(f"cm_thresh must be in (0, 1], got {cm_thresh}")
        self.period = float(period)
        self.listen_time = float(listen_time) if listen_time is not None else 20.0 * period
        if self.listen_time < 2 * period:
            raise ValueError("listen_time must be at least 2 periods (t >> T)")
        self.message_duration = float(message_duration)
        self.cm_thresh = float(cm_thresh)
        self.jitter = float(jitter)

    def run(
        self,
        points,
        field: BeaconField,
        realization: PropagationRealization,
        rng: np.random.Generator,
        *,
        burst_loss=None,
        faults=None,
        blacklist: "BeaconBlacklist | None" = None,
    ) -> ProtocolRunResult:
        """Simulate one listening window for every client point at once.

        Args:
            points: ``(P, 2)`` client locations.
            field: the transmitting beacons.
            realization: the propagation world.
            rng: per-run randomness (phases, jitter, loss draws).
            burst_loss: optional bursty loss process (see
                :class:`~repro.protocol.GilbertElliottLoss`).
            faults: optional beacon fault realization (see
                :class:`repro.faults.FaultRealization`); down beacons skip
                scheduled transmissions.
            blacklist: optional stateful :class:`BeaconBlacklist`; this
                window's threshold outcome is folded into it and the
                returned connectivity is the *admitted* set.  Pass the same
                instance across consecutive windows.
        """
        pts = as_point_array(points)
        sim = Simulator()
        channel = RadioChannel(sim, field, realization, pts, rng, burst_loss=burst_loss)
        transmitters = start_beacon_processes(
            sim,
            channel,
            len(field),
            period=self.period,
            message_duration=self.message_duration,
            jitter=self.jitter,
            rng=rng,
            faults=faults,
        )
        with get_profile().section("protocol.run"), get_tracer().span(
            "protocol.run", clients=int(pts.shape[0]), beacons=len(field)
        ):
            sim.run(until=self.listen_time)
            for tx in transmitters:
                tx.stop()
            sim.run()  # drain in-flight message completions

        sent = np.array([tx.messages_sent for tx in transmitters], dtype=float)
        received = channel.received_matrix(len(field)).astype(float)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(sent[None, :] > 0, received / sent[None, :], 0.0)
        connectivity = fraction >= self.cm_thresh
        if blacklist is not None:
            connectivity = blacklist.observe(connectivity)

        collisions = sum(listener.collisions for listener in channel.listeners)
        missed = sum(listener.missed for listener in channel.listeners)
        decoded = int(received.sum())
        audible = collisions + decoded
        get_metrics().gauge("protocol.collision_rate").set(
            collisions / audible if audible else 0.0
        )
        return ProtocolRunResult(
            connectivity=connectivity,
            received_fraction=fraction,
            messages_sent=channel.messages_sent,
            decoded_messages=decoded,
            collision_losses=collisions,
            propagation_losses=missed,
        )

    def estimate(
        self,
        points,
        field: BeaconField,
        realization: PropagationRealization,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Just the ``(P, N)`` connectivity matrix (see :meth:`run`)."""
        return self.run(points, field, realization, rng).connectivity
