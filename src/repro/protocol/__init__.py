"""Beacon protocol substrate: discrete-event simulation of §2.2."""

from .beacon_process import BeaconTransmitter, start_beacon_processes
from .channel import Listener, RadioChannel, Transmission
from .duty_cycle import DutyCycledTransmitter, start_duty_cycled_processes
from .estimator import (
    BeaconBlacklist,
    ProtocolConnectivityEstimator,
    ProtocolRunResult,
)
from .events import ScheduledEvent, Simulator
from .loss import GilbertElliottLoss

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "RadioChannel",
    "Listener",
    "Transmission",
    "BeaconTransmitter",
    "start_beacon_processes",
    "DutyCycledTransmitter",
    "start_duty_cycled_processes",
    "ProtocolConnectivityEstimator",
    "ProtocolRunResult",
    "BeaconBlacklist",
    "GilbertElliottLoss",
]
