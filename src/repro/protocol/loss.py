"""Bursty per-link message loss (Gilbert–Elliott channels).

Real RF links don't fail i.i.d.: interference and fading come in bursts.
The classic two-state Gilbert–Elliott model captures this — each link is
either GOOD (low loss) or BAD (high loss) and flips state as a Markov chain
in continuous time.  Burstiness matters specifically to the §2.2 threshold
rule: with the same *average* loss rate, bursty links spend whole listening
windows in the BAD state and flap in and out of "connected", while i.i.d.
loss of equal rate averages out.  The protocol bench quantifies the
difference.

The chain is sampled lazily per (listener, beacon) pair and advanced only
when that link carries a message, using exponential holding times — exact
for a two-state Markov chain, no per-tick simulation needed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GilbertElliottLoss"]


class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) loss process per link.

    Args:
        good_loss: message-loss probability in the GOOD state.
        bad_loss: message-loss probability in the BAD state.
        mean_good_time: mean sojourn in GOOD, seconds.
        mean_bad_time: mean sojourn in BAD, seconds.
        rng: randomness for state flips and loss draws.
    """

    def __init__(
        self,
        good_loss: float = 0.0,
        bad_loss: float = 0.9,
        mean_good_time: float = 10.0,
        mean_bad_time: float = 3.0,
        rng: np.random.Generator | None = None,
    ):
        for name, p in (("good_loss", good_loss), ("bad_loss", bad_loss)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if mean_good_time <= 0 or mean_bad_time <= 0:
            raise ValueError("mean sojourn times must be positive")
        self.good_loss = float(good_loss)
        self.bad_loss = float(bad_loss)
        self.mean_good_time = float(mean_good_time)
        self.mean_bad_time = float(mean_bad_time)
        self._rng = rng or np.random.default_rng()
        # link key -> (state_is_bad, time_state_expires)
        self._links: dict[tuple[int, int], tuple[bool, float]] = {}

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss rate of the chain."""
        total = self.mean_good_time + self.mean_bad_time
        return (
            self.good_loss * self.mean_good_time + self.bad_loss * self.mean_bad_time
        ) / total

    def _sojourn(self, bad: bool) -> float:
        mean = self.mean_bad_time if bad else self.mean_good_time
        return float(self._rng.exponential(mean))

    def _state_at(self, key: tuple[int, int], now: float) -> bool:
        entry = self._links.get(key)
        if entry is None:
            # Start in steady state.
            p_bad = self.mean_bad_time / (self.mean_good_time + self.mean_bad_time)
            bad = bool(self._rng.random() < p_bad)
            self._links[key] = (bad, now + self._sojourn(bad))
            return bad
        bad, expires = entry
        while expires <= now:
            bad = not bad
            expires += self._sojourn(bad)
        self._links[key] = (bad, expires)
        return bad

    def message_lost(self, listener_index: int, beacon_index: int, now: float) -> bool:
        """Whether a message on this link at time ``now`` is lost to the burst
        process (in addition to any propagation/collision loss)."""
        bad = self._state_at((listener_index, beacon_index), now)
        loss = self.bad_loss if bad else self.good_loss
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return bool(self._rng.random() < loss)
