"""A minimal discrete-event simulation core.

The localization protocol of §2.2 is fundamentally temporal — beacons
transmit every ``T`` seconds, clients listen for ``t ≫ T`` and threshold the
*fraction of messages received* — and the paper's self-interference argument
(§1) is about transmissions colliding in time.  The numeric shortcut used by
the evaluation (geometric connectivity) abstracts all of that away; this
package keeps it, so the abstraction can be validated rather than assumed.

:class:`Simulator` is a classic event-queue kernel: a priority queue of
``(time, sequence, callback)`` entries, FIFO-stable among simultaneous
events, with ``schedule_at``/``schedule_in`` and a bounded ``run``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs import get_metrics

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """One pending event (ordered by time, then insertion sequence)."""

    time: float
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Sequential event-driven simulation kernel.

    Time is a monotonically non-decreasing float in seconds; the unit is by
    convention only.  Callbacks may schedule further events.
    """

    def __init__(self):
        self._queue: list[ScheduledEvent] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled tombstones)."""
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callable, *args) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at an absolute time.

        Raises:
            ValueError: if ``time`` lies in the past.
        """
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        event = ScheduledEvent(float(time), self._sequence, callback, tuple(args))
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, callback: Callable, *args) -> ScheduledEvent:
        """Schedule ``callback(*args)`` after a non-negative delay."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Execute events in order.

        Args:
            until: stop once the next event is strictly later than this time
                (the clock advances to ``until``); None runs to exhaustion.
            max_events: safety bound on callbacks executed this call.

        Returns:
            The number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            executed += 1
            self._processed += 1
        if until is not None and self._now < until:
            self._now = until
        # One counter update per run() call, not per event — the kernel's
        # hot loop stays untouched by observability.
        get_metrics().counter("protocol.events").inc(executed)
        return executed
