"""The shared radio channel: propagation, per-message loss, collisions.

Transmissions occupy the channel for their airtime.  A listener receives a
message iff

1. the link is *audible* — decided per message by the propagation
   realization's :meth:`message_success_probability` (a hard 0/1 for the
   geometric models, a fading ramp for the shadowing model), and
2. no other transmission audible at that listener overlapped it in time
   (otherwise all overlapping audible messages are destroyed — no capture
   effect by default, matching the §1 worry that *"at very high densities,
   the probability of collisions among signals transmitted by the beacons
   increases"*).

The channel is deliberately listener-centric: two beacons out of range of
each other can still collide at a listener in the middle (the hidden-terminal
situation a CSMA-less periodic beacon protocol cannot avoid).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..field import BeaconField
from ..obs import get_metrics
from ..radio import PropagationRealization
from .events import Simulator

__all__ = ["RadioChannel", "Listener", "Transmission"]


@dataclass
class Transmission:
    """One beacon message on the air."""

    beacon_index: int
    start: float
    end: float


@dataclass
class Listener:
    """A receiver at a fixed position, counting received beacon messages.

    Attributes:
        index: the listener's row in the channel's point array.
        received: per-beacon counts of successfully decoded messages.
        collisions: messages lost to overlap at this listener.
        missed: messages lost to propagation (inaudible draws).
    """

    index: int
    received: dict[int, int] = field(default_factory=dict)
    collisions: int = 0
    missed: int = 0
    _active: list = field(default_factory=list)
    _collided: set = field(default_factory=set)


class RadioChannel:
    """Propagation + collision model binding beacons to listeners.

    Args:
        simulator: the event kernel (used only for its clock).
        field: the transmitting beacon field.
        realization: the propagation world.
        points: ``(L, 2)`` listener positions.
        rng: randomness for per-message audibility draws.
        capture: if True, an overlapping message whose link success
            probability is at least ``capture_margin`` higher than every
            competitor survives the collision (simple capture effect).
        capture_margin: see ``capture``.
        burst_loss: optional bursty per-link loss process (e.g.
            :class:`~repro.protocol.GilbertElliottLoss`); consulted per
            message in addition to the propagation draw.
    """

    def __init__(
        self,
        simulator: Simulator,
        field: BeaconField,
        realization: PropagationRealization,
        points: np.ndarray,
        rng: np.random.Generator,
        *,
        capture: bool = False,
        capture_margin: float = 0.3,
        burst_loss=None,
    ):
        self._sim = simulator
        self._field = field
        self._rng = rng
        self._capture = capture
        self._capture_margin = float(capture_margin)
        self._burst_loss = burst_loss
        self._success_prob = realization.message_success_probability(points, field)
        self.listeners = [Listener(i) for i in range(points.shape[0])]
        self.messages_sent = 0
        # Instruments bound once here (no registry lookups on the per-message
        # paths); no-op singletons when observability is off.
        metrics = get_metrics()
        self._m_sent = metrics.counter("protocol.messages.sent")
        self._m_decoded = metrics.counter("protocol.messages.decoded")
        self._m_collisions = metrics.counter("protocol.messages.collision_lost")
        self._m_missed = metrics.counter("protocol.messages.propagation_lost")

    def audible_listeners(self, beacon_index: int) -> np.ndarray:
        """Listener indices with any chance of hearing a beacon."""
        return np.flatnonzero(self._success_prob[:, beacon_index] > 0.0)

    def transmit(self, beacon_index: int, duration: float) -> None:
        """Put one message on the air, starting now.

        Audibility per listener is drawn immediately (the fade over the
        message); delivery is resolved at end-of-airtime so later-starting
        overlaps can still destroy it.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        now = self._sim.now
        tx = Transmission(beacon_index, now, now + duration)
        self.messages_sent += 1
        self._m_sent.inc()
        for li in self.audible_listeners(beacon_index):
            listener = self.listeners[li]
            p = self._success_prob[li, beacon_index]
            if p < 1.0 and self._rng.random() >= p:
                listener.missed += 1
                self._m_missed.inc()
                continue
            if self._burst_loss is not None and self._burst_loss.message_lost(
                int(li), beacon_index, now
            ):
                listener.missed += 1
                self._m_missed.inc()
                continue
            # Overlap check against messages still on the air here.
            overlapping = [t for t in listener._active if t.end > now + 1e-12]
            if overlapping:
                survivor = None
                if self._capture:
                    strengths = {
                        id(t): self._success_prob[li, t.beacon_index]
                        for t in overlapping
                    }
                    strengths[id(tx)] = p
                    ordered = sorted(strengths.values(), reverse=True)
                    if len(ordered) == 1 or ordered[0] - ordered[1] >= self._capture_margin:
                        best = max(strengths, key=strengths.get)
                        survivor = best
                for t in overlapping + [tx]:
                    if survivor is not None and id(t) == survivor:
                        continue
                    listener._collided.add(id(t))
            listener._active.append(tx)
            self._sim.schedule_at(tx.end, self._finish, listener, tx)

    def _finish(self, listener: Listener, tx: Transmission) -> None:
        listener._active.remove(tx)
        if id(tx) in listener._collided:
            listener._collided.discard(id(tx))
            listener.collisions += 1
            self._m_collisions.inc()
            return
        listener.received[tx.beacon_index] = listener.received.get(tx.beacon_index, 0) + 1
        self._m_decoded.inc()

    def received_matrix(self, num_beacons: int) -> np.ndarray:
        """Per-(listener, beacon) decoded-message counts, ``(L, N)``."""
        out = np.zeros((len(self.listeners), num_beacons), dtype=int)
        for listener in self.listeners:
            for b, count in listener.received.items():
                out[listener.index, b] = count
        return out
