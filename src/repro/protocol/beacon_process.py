"""Periodic beacon transmitters (§2.2: "beacons … transmit periodically
with a time period T").

Each beacon is an independent process: it wakes every ``period`` seconds
(plus optional per-message jitter — real beacon firmwares desynchronize on
purpose, and without jitter co-periodic beacons would collide forever or
never) and hands one message of ``message_duration`` airtime to the channel.
"""

from __future__ import annotations

import numpy as np

from .channel import RadioChannel
from .events import Simulator

__all__ = ["BeaconTransmitter", "start_beacon_processes"]


class BeaconTransmitter:
    """One beacon's periodic transmission process.

    Args:
        simulator: the event kernel.
        channel: the shared radio channel.
        beacon_index: this beacon's column in the field.
        period: nominal transmission period ``T`` (seconds).
        message_duration: airtime per message (seconds, ≪ period).
        jitter: uniform per-message phase jitter as a fraction of the period
            (0 = strictly periodic).
        rng: randomness for the initial phase and per-message jitter.
        faults: optional fault realization (any object with
            ``is_up(beacon_index, time) -> bool``, e.g. a
            :class:`repro.faults.FaultRealization`).  A beacon that is down
            at a scheduled transmission skips it — permanently-crashed
            beacons fall silent, flapping beacons transmit in bursts — but
            keeps its schedule so it resumes if the fault clears.
    """

    def __init__(
        self,
        simulator: Simulator,
        channel: RadioChannel,
        beacon_index: int,
        period: float,
        message_duration: float,
        jitter: float,
        rng: np.random.Generator,
        faults=None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0 < message_duration < period:
            raise ValueError(
                f"message_duration must be in (0, period); got {message_duration} vs {period}"
            )
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self._sim = simulator
        self._channel = channel
        self._index = beacon_index
        self._period = float(period)
        self._duration = float(message_duration)
        self._jitter = float(jitter)
        self._rng = rng
        self._faults = faults
        self.messages_sent = 0
        self.messages_suppressed = 0
        self._stopped = False

    def start(self) -> None:
        """Begin transmitting; the first message lands at a random phase."""
        first = self._rng.uniform(0.0, self._period)
        self._sim.schedule_in(first, self._fire)

    def stop(self) -> None:
        """Cease scheduling further messages (in-flight airtime completes)."""
        self._stopped = True

    def _fire(self) -> None:
        if self._stopped:
            return
        if self._faults is not None and not self._faults.is_up(self._index, self._sim.now):
            self.messages_suppressed += 1
        else:
            self._channel.transmit(self._index, self._duration)
            self.messages_sent += 1
        delay = self._period
        if self._jitter > 0:
            delay += self._period * self._rng.uniform(-self._jitter, self._jitter)
            delay = max(delay, self._duration)
        self._sim.schedule_in(delay, self._fire)


def start_beacon_processes(
    simulator: Simulator,
    channel: RadioChannel,
    num_beacons: int,
    *,
    period: float,
    message_duration: float,
    jitter: float,
    rng: np.random.Generator,
    faults=None,
) -> list[BeaconTransmitter]:
    """Create and start one transmitter per beacon.

    Args:
        faults: optional fault realization gating every transmitter (see
            :class:`BeaconTransmitter`); beacon index is used as beacon id,
            matching fields built with :meth:`BeaconField.from_positions`.

    Returns:
        The transmitters, indexed like the beacon field.
    """
    transmitters = []
    for b in range(num_beacons):
        tx = BeaconTransmitter(
            simulator, channel, b, period, message_duration, jitter, rng, faults=faults
        )
        tx.start()
        transmitters.append(tx)
    return transmitters
