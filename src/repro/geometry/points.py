"""Planar point primitives and distance kernels.

Everything in the simulator works on 2-D Euclidean coordinates expressed in
meters.  Points travel through the code base in two shapes:

* a single :class:`Point` — a lightweight named tuple used at API surfaces
  where a human reads or writes one coordinate pair (e.g. "the new beacon
  goes at (37.0, 12.0)"), and
* ``(P, 2)`` float arrays — the bulk representation used by every numeric
  kernel.

The helpers in this module convert between the two and provide the distance
kernels that the rest of the package builds on.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple, Sequence

import numpy as np

__all__ = [
    "Point",
    "as_point",
    "as_point_array",
    "distance",
    "pairwise_distances",
    "distances_to_point",
    "clamp_to_square",
    "points_equal",
]


class Point(NamedTuple):
    """A 2-D point in meters.

    >>> Point(3.0, 4.0).distance_to(Point(0.0, 0.0))
    5.0
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_array(self) -> np.ndarray:
        """This point as a ``(2,)`` float array."""
        return np.array([self.x, self.y], dtype=float)


def as_point(value: "Point | Sequence[float] | np.ndarray") -> Point:
    """Coerce a coordinate pair of any supported shape into a :class:`Point`.

    Accepts :class:`Point`, 2-sequences and ``(2,)`` arrays.

    Raises:
        ValueError: if ``value`` does not contain exactly two coordinates.
    """
    if isinstance(value, Point):
        return value
    arr = np.asarray(value, dtype=float).reshape(-1)
    if arr.shape != (2,):
        raise ValueError(f"expected a coordinate pair, got shape {arr.shape}")
    return Point(float(arr[0]), float(arr[1]))


def as_point_array(points: "np.ndarray | Iterable") -> np.ndarray:
    """Coerce an iterable of coordinate pairs into a ``(P, 2)`` float array.

    A single :class:`Point` (or 2-sequence) becomes a ``(1, 2)`` array.
    An empty iterable becomes a ``(0, 2)`` array, which every downstream
    kernel accepts.

    Raises:
        ValueError: if the input cannot be viewed as coordinate pairs.
    """
    if isinstance(points, Point):
        return np.asarray([points], dtype=float)
    arr = np.asarray(list(points) if not isinstance(points, np.ndarray) else points, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim == 1:
        if arr.shape == (2,):
            return arr.reshape(1, 2)
        raise ValueError(f"cannot interpret 1-D array of length {arr.shape[0]} as points")
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (P, 2) coordinates, got shape {arr.shape}")
    return arr


def distance(a, b) -> float:
    """Euclidean distance between two coordinate pairs."""
    pa, pb = as_point(a), as_point(b)
    return pa.distance_to(pb)


def pairwise_distances(points_a: np.ndarray, points_b: np.ndarray) -> np.ndarray:
    """Distance matrix between two point sets.

    Args:
        points_a: ``(P, 2)`` array.
        points_b: ``(N, 2)`` array.

    Returns:
        ``(P, N)`` array with ``out[i, j] = ||points_a[i] - points_b[j]||``.
    """
    a = as_point_array(points_a)
    b = as_point_array(points_b)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("pnk,pnk->pn", diff, diff))


def distances_to_point(points: np.ndarray, target) -> np.ndarray:
    """Distances from each row of ``points`` to a single ``target`` point."""
    pts = as_point_array(points)
    t = as_point(target).as_array()
    diff = pts - t[None, :]
    return np.sqrt(np.einsum("pk,pk->p", diff, diff))


def clamp_to_square(point, side: float) -> Point:
    """Clamp a point into the axis-aligned square ``[0, side] × [0, side]``.

    Used when a placement algorithm proposes a candidate just outside the
    terrain (e.g. a grid center computed for a grid overhanging the border).
    """
    p = as_point(point)
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return Point(min(max(p.x, 0.0), side), min(max(p.y, 0.0), side))


def points_equal(a, b, tol: float = 1e-9) -> bool:
    """Whether two coordinate pairs coincide within ``tol`` meters."""
    return distance(a, b) <= tol
