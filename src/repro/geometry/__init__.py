"""Planar geometry substrate: points, lattices, overlapping grids, regions."""

from .measurement_grid import MeasurementGrid
from .overlapping_grids import OverlappingGridLayout
from .points import (
    Point,
    as_point,
    as_point_array,
    clamp_to_square,
    distance,
    distances_to_point,
    pairwise_distances,
    points_equal,
)
from .regions import RegionDecomposition, decompose_regions

__all__ = [
    "Point",
    "as_point",
    "as_point_array",
    "clamp_to_square",
    "distance",
    "distances_to_point",
    "pairwise_distances",
    "points_equal",
    "MeasurementGrid",
    "OverlappingGridLayout",
    "RegionDecomposition",
    "decompose_regions",
]
