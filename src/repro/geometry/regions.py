"""Localization regions (loci) induced by beacon connectivity.

Under connectivity-based localization every client that hears the same set of
beacons computes the same position estimate, so the terrain decomposes into
*localization regions*: maximal sets of points sharing one connectivity
signature (Figure 1 of the paper, and the "full locus information" discussed
in Sections 2.2 and 6).  Denser beacon fields induce more, smaller regions
and hence finer-grained localization.

This module computes that decomposition on a measurement lattice: region
labels per point, per-region areas and centroids, and summary statistics.
It backs both the quantitative Figure-1 reproduction and the locus-area
placement extension (:class:`repro.placement.LocusAreaPlacement`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .measurement_grid import MeasurementGrid

__all__ = ["RegionDecomposition", "decompose_regions"]


@dataclass(frozen=True)
class RegionDecomposition:
    """The partition of a measurement lattice into localization regions.

    Attributes:
        labels: ``(P_T,)`` int array; ``labels[p]`` is the region id of
            lattice point ``p``.  Region ids are dense, ``0 .. num_regions-1``.
        region_point_counts: ``(num_regions,)`` lattice points per region.
        region_areas: ``(num_regions,)`` areas in m² (count × step²).
        region_centroids: ``(num_regions, 2)`` centroid of each region's
            lattice points.
        region_beacon_counts: ``(num_regions,)`` number of connected beacons
            in each region's signature (0 for the uncovered region, if any).
    """

    labels: np.ndarray
    region_point_counts: np.ndarray
    region_areas: np.ndarray
    region_centroids: np.ndarray
    region_beacon_counts: np.ndarray

    @property
    def num_regions(self) -> int:
        """Number of distinct localization regions (incl. uncovered space)."""
        return int(self.region_point_counts.shape[0])

    @property
    def num_covered_regions(self) -> int:
        """Regions whose signature contains at least one beacon."""
        return int(np.count_nonzero(self.region_beacon_counts > 0))

    def covered_region_areas(self) -> np.ndarray:
        """Areas of regions hearing ≥ 1 beacon."""
        return self.region_areas[self.region_beacon_counts > 0]

    def largest_covered_region(self) -> int:
        """Region id of the largest-area region hearing ≥ 1 beacon.

        Raises:
            ValueError: if no point hears any beacon.
        """
        covered = self.region_beacon_counts > 0
        if not covered.any():
            raise ValueError("no covered region: no lattice point hears a beacon")
        areas = np.where(covered, self.region_areas, -1.0)
        return int(np.argmax(areas))

    def mean_covered_region_area(self) -> float:
        """Mean area of covered regions — the 'granularity' of Figure 1."""
        areas = self.covered_region_areas()
        if areas.size == 0:
            return float("nan")
        return float(areas.mean())


def _signature_keys(connectivity: np.ndarray) -> np.ndarray:
    """Compact per-point signature keys for row-wise grouping.

    Packs each boolean row into bytes and views the result as a void dtype so
    ``np.unique`` can group full rows in one call.
    """
    packed = np.packbits(connectivity, axis=1)
    return packed.view([("", packed.dtype)] * packed.shape[1]).reshape(-1)


def _split_spatially(labels: np.ndarray, grid: MeasurementGrid) -> np.ndarray:
    """Relabel signature classes into 4-connected lattice components.

    Two points with the same signature but in disjoint patches of terrain
    are *different* loci — a client in either patch computes the same
    estimate, but a beacon placed to break one patch does nothing for the
    other.  Spatial splitting turns the signature partition into the true
    locus partition.
    """
    from scipy import ndimage

    n = grid.points_per_axis
    image = labels.reshape(n, n)
    out = np.full_like(image, -1)
    next_label = 0
    for value in np.unique(image):
        components, count = ndimage.label(image == value)
        mask = image == value
        out[mask] = components[mask] - 1 + next_label
        next_label += count
    return out.reshape(-1)


def decompose_regions(
    connectivity: np.ndarray,
    grid: MeasurementGrid,
    *,
    split_spatially: bool = False,
) -> RegionDecomposition:
    """Group lattice points into localization regions by signature.

    Args:
        connectivity: ``(P_T, N)`` boolean matrix; ``connectivity[p, b]`` is
            True when lattice point ``p`` is connected to beacon ``b``.
        grid: the measurement lattice the rows are aligned with.
        split_spatially: additionally split each signature class into
            4-connected lattice components, so regions are true contiguous
            loci (see :func:`_split_spatially`).  Figure 1's picture assumes
            this; the signature-only partition is what the *localizer* can
            distinguish.

    Returns:
        The :class:`RegionDecomposition`.  Points hearing zero beacons form
        one region with ``region_beacon_counts == 0`` (they are
        indistinguishable to the localizer) — or one region per uncovered
        patch when ``split_spatially`` is set.
    """
    conn = np.asarray(connectivity, dtype=bool)
    if conn.ndim != 2:
        raise ValueError(f"connectivity must be 2-D (P, N), got shape {conn.shape}")
    if conn.shape[0] != grid.num_points:
        raise ValueError(
            f"connectivity has {conn.shape[0]} rows, lattice has {grid.num_points} points"
        )

    if conn.shape[1] == 0:
        labels = np.zeros(conn.shape[0], dtype=int)
        counts = np.array([conn.shape[0]])
    else:
        keys = _signature_keys(conn)
        _, labels, counts = np.unique(keys, return_inverse=True, return_counts=True)
        labels = labels.reshape(-1)

    if split_spatially and conn.shape[1] > 0:
        labels = _split_spatially(labels, grid)
        counts = np.bincount(labels)

    num_regions = counts.shape[0]
    pts = grid.points()
    sums = np.zeros((num_regions, 2))
    np.add.at(sums, labels, pts)
    centroids = sums / counts[:, None]

    beacon_counts = np.zeros(num_regions, dtype=int)
    per_point_degree = conn.sum(axis=1)
    # All points in a region share a signature, so any representative's
    # degree is the region's beacon count.
    first_index = np.full(num_regions, -1, dtype=int)
    seen_order = np.argsort(labels, kind="stable")
    first_positions = np.searchsorted(labels[seen_order], np.arange(num_regions))
    first_index = seen_order[first_positions]
    beacon_counts = per_point_degree[first_index].astype(int)

    return RegionDecomposition(
        labels=labels,
        region_point_counts=counts,
        region_areas=counts.astype(float) * grid.cell_area(),
        region_centroids=centroids,
        region_beacon_counts=beacon_counts,
    )
