"""The regular lattice of measurement points used to survey a terrain.

Section 3.2 of the paper: *"We assume the terrain to be a square of Side
meters and each robot will take measurements step meters apart (step <
Side)"*, so the Max and Grid algorithms measure localization error at every
point ``(i·step, j·step)`` with ``0 ≤ i, j ≤ Side/step``.  The number of data
points is ``P_T = (Side/step + 1)²``.

:class:`MeasurementGrid` owns that lattice: it generates the point array once
(cached), maps between flat point indices and lattice coordinates, and
answers membership queries for sub-squares (needed by the overlapping-grid
decomposition of the Grid algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .points import Point, as_point

__all__ = ["MeasurementGrid"]


@dataclass(frozen=True)
class MeasurementGrid:
    """A square terrain sampled on a regular lattice.

    Args:
        side: terrain side length in meters (``Side`` in the paper).
        step: lattice spacing in meters (``step`` in the paper).  Must divide
            ``side`` to a lattice that covers the far corner exactly, i.e.
            ``side / step`` must be (numerically) an integer, mirroring the
            paper's ``(i·step, j·step)`` indexing.

    Attributes:
        side: terrain side length.
        step: lattice spacing.
    """

    side: float
    step: float
    _cache: dict = field(default_factory=dict, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ValueError(f"side must be positive, got {self.side}")
        if self.step <= 0:
            raise ValueError(f"step must be positive, got {self.step}")
        if self.step >= self.side:
            raise ValueError(f"step ({self.step}) must be smaller than side ({self.side})")
        ratio = self.side / self.step
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError(
                f"step ({self.step}) must evenly divide side ({self.side}); "
                f"side/step = {ratio}"
            )

    @property
    def points_per_axis(self) -> int:
        """Lattice points per axis: ``Side/step + 1``."""
        return int(round(self.side / self.step)) + 1

    @property
    def num_points(self) -> int:
        """Total measurement points ``P_T = (Side/step + 1)²``."""
        return self.points_per_axis**2

    def axis_coordinates(self) -> np.ndarray:
        """The shared per-axis coordinates ``0, step, 2·step, …, side``."""
        return np.arange(self.points_per_axis, dtype=float) * self.step

    def points(self) -> np.ndarray:
        """All lattice points as a ``(P_T, 2)`` array, row-major in (x, y).

        The array is computed once and cached; callers must treat it as
        read-only (it is marked non-writeable).
        """
        cached = self._cache.get("points")
        if cached is not None:
            return cached
        axis = self.axis_coordinates()
        xs, ys = np.meshgrid(axis, axis, indexing="ij")
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        pts.setflags(write=False)
        self._cache["points"] = pts
        return pts

    def index_of(self, point) -> int:
        """Flat index of a lattice point.

        Raises:
            ValueError: if ``point`` is not (within 1e-6 m) on the lattice.
        """
        p = as_point(point)
        i = p.x / self.step
        j = p.y / self.step
        ii, jj = round(i), round(j)
        if abs(i - ii) > 1e-6 or abs(j - jj) > 1e-6:
            raise ValueError(f"{p} is not a lattice point of {self}")
        n = self.points_per_axis
        if not (0 <= ii < n and 0 <= jj < n):
            raise ValueError(f"{p} lies outside the terrain of {self}")
        return int(ii) * n + int(jj)

    def point_at(self, index: int) -> Point:
        """The lattice point for a flat index (inverse of :meth:`index_of`)."""
        n = self.points_per_axis
        if not 0 <= index < self.num_points:
            raise IndexError(f"index {index} out of range for {self.num_points} points")
        return Point((index // n) * self.step, (index % n) * self.step)

    def contains(self, point) -> bool:
        """Whether a point lies inside the closed terrain square."""
        p = as_point(point)
        return 0.0 <= p.x <= self.side and 0.0 <= p.y <= self.side

    def mask_in_square(self, center, half_side: float) -> np.ndarray:
        """Boolean mask of lattice points inside a closed axis-aligned square.

        Args:
            center: square center.
            half_side: half the square's side length.

        Returns:
            ``(P_T,)`` boolean array aligned with :meth:`points`.
        """
        if half_side < 0:
            raise ValueError(f"half_side must be non-negative, got {half_side}")
        c = as_point(center)
        pts = self.points()
        return (np.abs(pts[:, 0] - c.x) <= half_side + 1e-9) & (
            np.abs(pts[:, 1] - c.y) <= half_side + 1e-9
        )

    def cell_area(self) -> float:
        """Area represented by one lattice point (``step²``), for region areas."""
        return self.step * self.step
