"""Overlapping-grid decomposition used by the Grid placement algorithm.

Section 3.2.3, step 3 of the paper divides the terrain into ``N_G`` partially
overlapping square grids:

* each grid has side ``gridSide = 2R`` so that it *"encloses the radio
  reachability region of its center"*;
* for ``1 ≤ i, j ≤ √N_G`` the grid ``G(i, j)`` is centered at::

      Xc(i, j) = gridSide/2 + (i - 1) · (Side - gridSide) / (√N_G - 1)
      Yc(i, j) = gridSide/2 + (j - 1) · (Side - gridSide) / (√N_G - 1)

  i.e. the centers form a √N_G × √N_G lattice whose extreme grids are flush
  with the terrain borders.

:class:`OverlappingGridLayout` computes the centers and — the hot path — the
point-membership masks against a :class:`~repro.geometry.MeasurementGrid`.
The masks depend only on (layout, measurement grid), not on the beacon field,
so they are computed once and reused across the thousands of fields in a
sweep; the cumulative error per grid then reduces to a single ``(N_G × P_T)``
boolean mat-vec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isqrt

import numpy as np

from .measurement_grid import MeasurementGrid
from .points import Point

__all__ = ["OverlappingGridLayout"]


@dataclass(frozen=True)
class OverlappingGridLayout:
    """The ``N_G`` overlapping grids of the Grid algorithm.

    Args:
        side: terrain side (``Side``).
        grid_side: side of each grid (``gridSide``, 2R in the paper).
        num_grids: ``N_G``; must be a perfect square ≥ 4 (the paper uses 400).
    """

    side: float
    grid_side: float
    num_grids: int
    _cache: dict = field(default_factory=dict, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ValueError(f"side must be positive, got {self.side}")
        if not 0 < self.grid_side <= self.side:
            raise ValueError(
                f"grid_side must be in (0, side]; got {self.grid_side} for side {self.side}"
            )
        root = isqrt(self.num_grids)
        if root * root != self.num_grids or root < 2:
            raise ValueError(
                f"num_grids must be a perfect square >= 4, got {self.num_grids}"
            )

    @classmethod
    def for_radio_range(
        cls, side: float, radio_range: float, num_grids: int
    ) -> "OverlappingGridLayout":
        """The paper's parameterization: ``gridSide = 2R``."""
        return cls(side=side, grid_side=2.0 * radio_range, num_grids=num_grids)

    @property
    def grids_per_axis(self) -> int:
        """``√N_G`` — grid centers per axis."""
        return isqrt(self.num_grids)

    @property
    def center_spacing(self) -> float:
        """Distance between adjacent grid centers along one axis."""
        return (self.side - self.grid_side) / (self.grids_per_axis - 1)

    def center_axis(self) -> np.ndarray:
        """Per-axis center coordinates, from ``gridSide/2`` to ``Side - gridSide/2``."""
        offsets = np.arange(self.grids_per_axis, dtype=float) * self.center_spacing
        return self.grid_side / 2.0 + offsets

    def centers(self) -> np.ndarray:
        """All grid centers as an ``(N_G, 2)`` array, row-major in (i, j).

        Row ``k`` corresponds to the paper's grid ``G(i, j)`` with
        ``i = k // √N_G + 1`` and ``j = k % √N_G + 1``.
        """
        cached = self._cache.get("centers")
        if cached is not None:
            return cached
        axis = self.center_axis()
        xs, ys = np.meshgrid(axis, axis, indexing="ij")
        out = np.column_stack([xs.ravel(), ys.ravel()])
        out.setflags(write=False)
        self._cache["centers"] = out
        return out

    def center(self, i: int, j: int) -> Point:
        """The center ``Gc(i, j)`` using the paper's 1-based indexing."""
        n = self.grids_per_axis
        if not (1 <= i <= n and 1 <= j <= n):
            raise ValueError(f"grid indices must be in [1, {n}], got ({i}, {j})")
        axis = self.center_axis()
        return Point(float(axis[i - 1]), float(axis[j - 1]))

    def membership_masks(self, grid: MeasurementGrid) -> np.ndarray:
        """Point-in-grid masks against a measurement lattice.

        Args:
            grid: the measurement lattice (must share this layout's ``side``).

        Returns:
            ``(N_G, P_T)`` boolean array; ``out[g, p]`` is True when lattice
            point ``p`` lies inside (closed) grid ``g``.  Cached per lattice.
        """
        if abs(grid.side - self.side) > 1e-9:
            raise ValueError(
                f"measurement grid side {grid.side} != layout side {self.side}"
            )
        key = ("masks", grid.side, grid.step)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        pts = grid.points()
        axis = self.center_axis()
        half = self.grid_side / 2.0 + 1e-9
        # Per-axis membership first: (n_axis_centers, n_axis_points) each,
        # then combine via outer products per grid row/column — O(N_G · P_T)
        # bools but built from two small comparisons.
        px = pts[:, 0]
        py = pts[:, 1]
        in_x = np.abs(px[None, :] - axis[:, None]) <= half  # (√N_G, P_T)
        in_y = np.abs(py[None, :] - axis[:, None]) <= half  # (√N_G, P_T)
        n = self.grids_per_axis
        masks = (in_x[:, None, :] & in_y[None, :, :]).reshape(n * n, -1)
        masks.setflags(write=False)
        self._cache[key] = masks
        return masks

    def points_per_grid(self, grid: MeasurementGrid) -> np.ndarray:
        """``P_G`` for each grid: lattice points falling inside it.

        The paper quotes the interior value ``P_G = P_T · (2R)² / Side²``;
        grids flush with the border hold the same count on this lattice since
        centers are pulled inward by ``gridSide/2``.
        """
        return self.membership_masks(grid).sum(axis=1)

    def cumulative_values(self, grid: MeasurementGrid, values: np.ndarray) -> np.ndarray:
        """Sum of ``values`` over the lattice points inside each grid.

        This is step 4 of the Grid algorithm with ``values`` = per-point
        localization error: ``S(i, j)`` for every grid as an ``(N_G,)`` array.
        """
        vals = np.asarray(values, dtype=float)
        if vals.shape != (grid.num_points,):
            raise ValueError(
                f"values must have shape ({grid.num_points},), got {vals.shape}"
            )
        masks = self.membership_masks(grid)
        return masks @ vals
