"""Persistence for deployments, surveys, terrains and error surfaces.

A real deployment workflow spans sessions: the survey robot logs
measurements in the field, placement planning happens back at base, and the
beacon inventory lives in a config file.  These helpers give every core
artifact a stable on-disk form:

* beacon fields ⇄ JSON (ids preserved — they key the static noise),
* surveys ⇄ CSV (one row per measurement; lattice completeness restored
  when the points form a full grid),
* heightmaps ⇄ NPZ,
* error surfaces ⇄ NPZ.

All formats are versioned with a ``format`` tag so future revisions can
migrate old files explicitly instead of mis-reading them.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from ..exploration import Survey
from ..field import Beacon, BeaconField
from ..geometry import MeasurementGrid, Point
from ..localization import ErrorSurface
from ..terrain import Heightmap

__all__ = [
    "save_field",
    "load_field",
    "save_survey",
    "load_survey",
    "save_heightmap",
    "load_heightmap",
    "save_error_surface",
    "load_error_surface",
]

_FIELD_FORMAT = "beaconplace.field.v1"
_SURVEY_FORMAT = "beaconplace.survey.v1"
_HEIGHTMAP_FORMAT = "beaconplace.heightmap.v1"
_SURFACE_FORMAT = "beaconplace.error_surface.v1"


def _check_format(found, expected: str, path) -> None:
    if found != expected:
        raise ValueError(f"{path}: expected format {expected!r}, found {found!r}")


# -- Beacon fields -----------------------------------------------------------


def save_field(field: BeaconField, path) -> Path:
    """Write a beacon field to JSON (ids and positions)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": _FIELD_FORMAT,
        "next_id": field.next_beacon_id,
        "beacons": [
            {"id": b.beacon_id, "x": b.position.x, "y": b.position.y} for b in field
        ],
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def load_field(path) -> BeaconField:
    """Read a beacon field written by :func:`save_field`."""
    src = Path(path)
    payload = json.loads(src.read_text())
    _check_format(payload.get("format"), _FIELD_FORMAT, src)
    beacons = [
        Beacon(int(b["id"]), Point(float(b["x"]), float(b["y"])))
        for b in payload["beacons"]
    ]
    return BeaconField(beacons, next_id=int(payload["next_id"]))


# -- Surveys -----------------------------------------------------------------


def save_survey(survey: Survey, path) -> Path:
    """Write a survey to CSV (x, y, error rows plus a header comment)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", newline="") as handle:
        handle.write(f"# {_SURVEY_FORMAT} terrain_side={survey.terrain_side!r}")
        if survey.is_complete:
            handle.write(f" grid_step={survey.grid.step!r}")
        handle.write("\n")
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "error"])
        for (x, y), err in zip(survey.points, survey.errors):
            writer.writerow([repr(float(x)), repr(float(y)), repr(float(err))])
    return out


def load_survey(path) -> Survey:
    """Read a survey written by :func:`save_survey`."""
    src = Path(path)
    with src.open() as handle:
        header = handle.readline().strip()
        if not header.startswith(f"# {_SURVEY_FORMAT}"):
            raise ValueError(f"{src}: not a {_SURVEY_FORMAT} file")
        meta = dict(
            part.split("=", 1) for part in header.split()[2:] if "=" in part
        )
        terrain_side = float(meta["terrain_side"])
        reader = csv.reader(handle)
        head = next(reader)
        if head != ["x", "y", "error"]:
            raise ValueError(f"{src}: unexpected survey columns {head}")
        rows = [(float(r[0]), float(r[1]), float(r[2])) for r in reader]
    points = np.array([[r[0], r[1]] for r in rows]) if rows else np.zeros((0, 2))
    errors = np.array([r[2] for r in rows])
    grid = None
    if "grid_step" in meta:
        step = float(meta["grid_step"])
        grid = MeasurementGrid(terrain_side, step)
        if grid.num_points != points.shape[0]:
            grid = None  # stored partial rows; degrade gracefully
    return Survey(points=points, errors=errors, terrain_side=terrain_side, grid=grid)


# -- Heightmaps and error surfaces --------------------------------------------


def save_heightmap(heightmap: Heightmap, path) -> Path:
    """Write a heightmap to NPZ."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        out,
        format=_HEIGHTMAP_FORMAT,
        side=heightmap.side,
        elevations=heightmap.elevations,
    )
    return out if out.suffix == ".npz" else out.with_suffix(out.suffix + ".npz")


def load_heightmap(path) -> Heightmap:
    """Read a heightmap written by :func:`save_heightmap`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_format(str(data["format"]), _HEIGHTMAP_FORMAT, path)
        return Heightmap(data["elevations"], float(data["side"]))


def save_error_surface(surface: ErrorSurface, path) -> Path:
    """Write an error surface (lattice geometry + per-point errors) to NPZ."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        out,
        format=_SURFACE_FORMAT,
        side=surface.grid.side,
        step=surface.grid.step,
        errors=surface.errors,
    )
    return out if out.suffix == ".npz" else out.with_suffix(out.suffix + ".npz")


def load_error_surface(path) -> ErrorSurface:
    """Read an error surface written by :func:`save_error_surface`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_format(str(data["format"]), _SURFACE_FORMAT, path)
        grid = MeasurementGrid(float(data["side"]), float(data["step"]))
        return ErrorSurface(grid, data["errors"])
