"""Persistence: beacon fields, surveys, heightmaps, error surfaces ⇄ disk."""

from .serialization import (
    load_error_surface,
    load_field,
    load_heightmap,
    load_survey,
    save_error_surface,
    save_field,
    save_heightmap,
    save_survey,
)

__all__ = [
    "save_field",
    "load_field",
    "save_survey",
    "load_survey",
    "save_heightmap",
    "load_heightmap",
    "save_error_surface",
    "load_error_surface",
]
