"""Synthetic terrain generators.

Three families cover the scenarios the paper's introduction motivates:

* :func:`flat_terrain` — the featureless plane of the core evaluation;
* :func:`hill_terrain` — a Gaussian hilltop (the air-drop story of §1);
* :func:`fractal_terrain` — diamond-square fractional-Brownian relief for
  "wide variety of terrain conditions" stress tests (§5/§6).
* :func:`ridge_terrain` — a linear ridge wall that splits the terrain, the
  worst case for line-of-sight propagation.
"""

from __future__ import annotations

import numpy as np

from .heightmap import Heightmap

__all__ = ["flat_terrain", "hill_terrain", "fractal_terrain", "ridge_terrain"]


def flat_terrain(side: float, *, resolution: int = 33) -> Heightmap:
    """A perfectly flat terrain (elevation 0 everywhere)."""
    return Heightmap(np.zeros((resolution, resolution)), side)


def hill_terrain(
    side: float,
    *,
    peak_height: float,
    peak_fraction: tuple[float, float] = (0.5, 0.5),
    spread_fraction: float = 0.25,
    resolution: int = 65,
) -> Heightmap:
    """A single Gaussian hill.

    Args:
        side: terrain side length.
        peak_height: summit elevation in meters.
        peak_fraction: summit location as fractions of ``side``.
        spread_fraction: Gaussian σ as a fraction of ``side``.
        resolution: heightmap samples per axis.
    """
    if peak_height < 0:
        raise ValueError(f"peak_height must be non-negative, got {peak_height}")
    if spread_fraction <= 0:
        raise ValueError(f"spread_fraction must be positive, got {spread_fraction}")
    axis = np.linspace(0.0, side, resolution)
    xs, ys = np.meshgrid(axis, axis, indexing="ij")
    cx, cy = peak_fraction[0] * side, peak_fraction[1] * side
    sigma = spread_fraction * side
    elev = peak_height * np.exp(-((xs - cx) ** 2 + (ys - cy) ** 2) / (2.0 * sigma**2))
    return Heightmap(elev, side)


def fractal_terrain(
    side: float,
    rng: np.random.Generator,
    *,
    relief: float,
    octaves: int = 7,
    roughness: float = 0.55,
) -> Heightmap:
    """Diamond-square fractional-Brownian terrain.

    Args:
        side: terrain side length.
        rng: randomness source.
        relief: final peak-to-valley elevation span in meters.
        octaves: subdivision depth; resolution is ``2**octaves + 1``.
        roughness: per-octave amplitude decay in (0, 1); higher = craggier.

    Returns:
        A heightmap normalized to ``[0, relief]``.
    """
    if relief < 0:
        raise ValueError(f"relief must be non-negative, got {relief}")
    if not 0.0 < roughness < 1.0:
        raise ValueError(f"roughness must be in (0, 1), got {roughness}")
    if octaves < 1:
        raise ValueError(f"octaves must be >= 1, got {octaves}")

    size = 2**octaves + 1
    elev = np.zeros((size, size))
    corners = rng.uniform(-1.0, 1.0, size=4)
    elev[0, 0], elev[0, -1], elev[-1, 0], elev[-1, -1] = corners

    span = size - 1
    amplitude = 1.0
    while span > 1:
        half = span // 2
        # Diamond step: centers of each span×span square.
        ci = np.arange(half, size, span)
        ci_x, ci_y = np.meshgrid(ci, ci, indexing="ij")
        avg = (
            elev[ci_x - half, ci_y - half]
            + elev[ci_x - half, ci_y + half]
            + elev[ci_x + half, ci_y - half]
            + elev[ci_x + half, ci_y + half]
        ) / 4.0
        elev[ci_x, ci_y] = avg + amplitude * rng.uniform(-1.0, 1.0, size=avg.shape)

        # Square step: edge midpoints, averaging available neighbours.
        padded = np.pad(elev, half, mode="edge")
        all_i = np.arange(0, size, half)
        gi, gj = np.meshgrid(all_i, all_i, indexing="ij")
        is_edge_point = ((gi // half) + (gj // half)) % 2 == 1
        ei = gi[is_edge_point]
        ej = gj[is_edge_point]
        pi, pj = ei + half, ej + half  # indices into padded
        avg = (
            padded[pi - half, pj]
            + padded[pi + half, pj]
            + padded[pi, pj - half]
            + padded[pi, pj + half]
        ) / 4.0
        elev[ei, ej] = avg + amplitude * rng.uniform(-1.0, 1.0, size=avg.shape)

        span = half
        amplitude *= roughness

    lo, hi = elev.min(), elev.max()
    if hi - lo > 1e-12:
        elev = (elev - lo) / (hi - lo) * relief
    else:
        elev = np.zeros_like(elev)
    return Heightmap(elev, side)


def ridge_terrain(
    side: float,
    *,
    ridge_height: float,
    ridge_fraction: float = 0.5,
    width_fraction: float = 0.08,
    resolution: int = 65,
) -> Heightmap:
    """A vertical ridge wall at ``x = ridge_fraction · side``.

    The canonical line-of-sight obstacle: nodes on opposite sides of the
    ridge cannot see each other unless near a gap in elevation.
    """
    if ridge_height < 0:
        raise ValueError(f"ridge_height must be non-negative, got {ridge_height}")
    if width_fraction <= 0:
        raise ValueError(f"width_fraction must be positive, got {width_fraction}")
    axis = np.linspace(0.0, side, resolution)
    xs, _ = np.meshgrid(axis, axis, indexing="ij")
    center = ridge_fraction * side
    width = width_fraction * side
    elev = ridge_height * np.exp(-((xs - center) ** 2) / (2.0 * width**2))
    return Heightmap(elev, side)
