"""Terrain substrate: heightmaps, synthetic terrain, line-of-sight."""

from .generators import flat_terrain, fractal_terrain, hill_terrain, ridge_terrain
from .heightmap import Heightmap

__all__ = [
    "Heightmap",
    "flat_terrain",
    "hill_terrain",
    "fractal_terrain",
    "ridge_terrain",
]
