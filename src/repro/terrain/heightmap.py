"""Terrain heightmaps.

The paper motivates adaptive placement with terrain effects — hilltops that
shed air-dropped beacons, obstacles that block propagation — and lists *"a
more sophisticated terrain map"* as future work.  :class:`Heightmap` is that
map: elevation sampled on a regular grid over the terrain square, with
bilinear interpolation for off-grid queries and finite-difference gradients
(used by the air-drop deployment generator to roll beacons downhill).
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array

__all__ = ["Heightmap"]


class Heightmap:
    """Elevation over a ``[0, side]²`` terrain, sampled on a regular grid.

    Args:
        elevations: ``(M, M)`` elevation samples in meters; entry ``[i, j]``
            is the elevation at ``(i·side/(M-1), j·side/(M-1))``.
        side: terrain side length in meters.
    """

    def __init__(self, elevations: np.ndarray, side: float):
        elev = np.asarray(elevations, dtype=float)
        if elev.ndim != 2 or elev.shape[0] != elev.shape[1] or elev.shape[0] < 2:
            raise ValueError(f"elevations must be square (M, M), M >= 2; got {elev.shape}")
        if side <= 0:
            raise ValueError(f"side must be positive, got {side}")
        self._elev = elev.copy()
        self._elev.setflags(write=False)
        self._side = float(side)
        self._cell = self._side / (elev.shape[0] - 1)

    @property
    def side(self) -> float:
        """Terrain side length."""
        return self._side

    @property
    def resolution(self) -> int:
        """Grid samples per axis (M)."""
        return self._elev.shape[0]

    @property
    def elevations(self) -> np.ndarray:
        """The raw elevation grid (read-only)."""
        return self._elev

    def _grid_coords(self, points) -> tuple[np.ndarray, np.ndarray]:
        pts = as_point_array(points)
        gx = np.clip(pts[:, 0], 0.0, self._side) / self._cell
        gy = np.clip(pts[:, 1], 0.0, self._side) / self._cell
        return gx, gy

    def elevation_at(self, points) -> np.ndarray:
        """Bilinear elevation at arbitrary points, ``(P,)`` meters."""
        gx, gy = self._grid_coords(points)
        m = self.resolution - 1
        i0 = np.clip(np.floor(gx).astype(int), 0, m - 1)
        j0 = np.clip(np.floor(gy).astype(int), 0, m - 1)
        fx = gx - i0
        fy = gy - j0
        e = self._elev
        top = e[i0, j0] * (1 - fx) + e[i0 + 1, j0] * fx
        bot = e[i0, j0 + 1] * (1 - fx) + e[i0 + 1, j0 + 1] * fx
        return top * (1 - fy) + bot * fy

    def gradient_at(self, points) -> tuple[np.ndarray, np.ndarray]:
        """Central-difference slope ``(∂z/∂x, ∂z/∂y)`` at arbitrary points.

        Returns:
            Two ``(P,)`` arrays of dimensionless slopes (m elevation per m
            horizontal).  Used to roll air-dropped beacons downhill.
        """
        pts = as_point_array(points)
        h = self._cell / 2.0
        east = self.elevation_at(np.column_stack([pts[:, 0] + h, pts[:, 1]]))
        west = self.elevation_at(np.column_stack([pts[:, 0] - h, pts[:, 1]]))
        north = self.elevation_at(np.column_stack([pts[:, 0], pts[:, 1] + h]))
        south = self.elevation_at(np.column_stack([pts[:, 0], pts[:, 1] - h]))
        return (east - west) / (2.0 * h), (north - south) / (2.0 * h)

    def line_of_sight(
        self,
        from_points: np.ndarray,
        to_points: np.ndarray,
        *,
        antenna_height: float = 1.0,
        samples: int = 16,
    ) -> np.ndarray:
        """Pairwise line-of-sight between two point sets.

        A sight-line is blocked when the terrain rises above the straight
        segment joining the two antennas (each mounted ``antenna_height``
        meters above ground) at any of ``samples`` interior sample points.

        Args:
            from_points: ``(P, 2)`` observer locations.
            to_points: ``(N, 2)`` target locations.
            antenna_height: antenna elevation above local ground, meters.
            samples: interior samples per segment (more = finer occlusion).

        Returns:
            ``(P, N)`` boolean array; True where the sight-line is clear.
        """
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        a = as_point_array(from_points)
        b = as_point_array(to_points)
        za = self.elevation_at(a) + antenna_height  # (P,)
        zb = self.elevation_at(b) + antenna_height  # (N,)
        clear = np.ones((a.shape[0], b.shape[0]), dtype=bool)
        ts = (np.arange(samples, dtype=float) + 1.0) / (samples + 1.0)
        for t in ts:
            mid = a[:, None, :] * (1.0 - t) + b[None, :, :] * t  # (P, N, 2)
            ground = self.elevation_at(mid.reshape(-1, 2)).reshape(a.shape[0], b.shape[0])
            ray = za[:, None] * (1.0 - t) + zb[None, :] * t
            clear &= ground <= ray + 1e-9
        return clear
