"""Fault-aware placement: survivability-weighted Max and Grid.

The paper's Max/Grid score candidate points by *measured* localization
error — a snapshot that silently assumes every beacon serving a point today
will keep serving it.  Under a declared :class:`~repro.faults.FaultModel`
that assumption is wrong in a quantifiable way: each existing beacon will
still be up at the planning horizon only with the survival probability
:func:`repro.selfheal.survival.survival_probability` derives from the model
(crash/battery hazard, intermittent duty factor).

These variants re-score every surveyed point by its **expected post-failure
error**.  For a point ``p`` served by connected beacons ``C(p)`` with
survival weights ``q_i``::

    orphan(p) = ∏_{i ∈ C(p)} (1 − q_i)          # P(all of p's beacons die)
    score(p)  = (1 − orphan(p)) · err(p) + orphan(p) · penalty

``penalty`` is the error assigned to a point with no surviving beacon
(default: half the terrain side, the centroid localizer's worst-case scale).
The weighting has exactly the issue's intended effect: a point whose low
error rests entirely on beacons that are about to die scores near the
orphan penalty, so the new beacon is pulled toward it instead of leaning on
the doomed coverage; a point backed by several long-lived beacons keeps its
measured score.  Points already uncovered (``C(p) = ∅``) have
``orphan = 1`` and score at the full penalty.

Both variants need per-point connectivity and therefore declare
``requires_world = True`` (like the oracle-type algorithms); with
``NoFaults`` every ``q_i = 1`` and covered points keep their measured
scores exactly — the only remaining difference from Max/Grid is that
orphaned points count the penalty instead of zero.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..exploration import Survey
from ..geometry import Point
from ..placement import GridPlacement, PlacementAlgorithm
from .survival import survival_probability

__all__ = ["FaultAwareMax", "FaultAwareGrid"]

# Survival weights are clipped just below 1 so the orphan log-sum never
# multiplies 0 (unconnected) by -inf (immortal beacon) into NaN; the
# resulting orphan probability floor (~1e-12 per beacon) is far below any
# score difference that could change an argmax.
_MAX_SURVIVAL = 1.0 - 1e-12


class _SurvivabilityScorer:
    """Shared expected-post-failure scoring for the fault-aware variants."""

    def __init__(
        self,
        fault_model,
        horizon: float,
        *,
        penalty: float | None = None,
        ages=None,
    ):
        if horizon < 0.0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        if penalty is not None and penalty < 0.0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        self.fault_model = fault_model
        self.horizon = float(horizon)
        self.penalty = None if penalty is None else float(penalty)
        self.ages = ages

    def _age_of(self, beacon_id: int) -> float:
        ages = self.ages
        if ages is None:
            return 0.0
        if isinstance(ages, Mapping):
            return float(ages.get(beacon_id, 0.0))
        return float(ages)

    def survival_weights(self, field) -> np.ndarray:
        """Per-beacon ``P(still up at horizon | up now)``, in field order."""
        weights = np.empty(len(field))
        cache: dict[float, float] = {}
        for i, beacon_id in enumerate(field.beacon_ids):
            age = self._age_of(beacon_id)
            if age not in cache:
                cache[age] = survival_probability(
                    self.fault_model, age, self.horizon
                )
            weights[i] = cache[age]
        return weights

    def _connectivity(self, survey: Survey, world) -> np.ndarray:
        if (
            survey.is_complete
            and world.grid is survey.grid
        ):
            return world.connectivity()
        return world.realization.connectivity(survey.points, world.field)

    def expected_errors(self, survey: Survey, world) -> np.ndarray:
        """``score(p)`` over the survey points — the re-weighted error field."""
        if world is None:
            raise ValueError(
                "fault-aware placement needs the trial world for connectivity "
                "(requires_world algorithms receive it from run_placement_trial)"
            )
        penalty = (
            self.penalty if self.penalty is not None else world.terrain_side / 2.0
        )
        errors = np.where(np.isnan(survey.errors), penalty, survey.errors)
        if len(world.field) == 0:
            return np.full(survey.num_points, penalty)
        conn = self._connectivity(survey, world).astype(float)
        q = np.clip(self.survival_weights(world.field), 0.0, _MAX_SURVIVAL)
        orphan = np.exp(conn @ np.log1p(-q))
        return (1.0 - orphan) * errors + orphan * penalty


class FaultAwareMax(PlacementAlgorithm):
    """Max placement over expected post-failure error.

    Args:
        fault_model: the declared failure statistics (a
            :class:`~repro.faults.FaultModel` or its spec dict).
        horizon: planning look-ahead in seconds — how far into the future
            the survivability weighting anticipates.
        penalty: error charged to an orphaned point (default: half the
            terrain side).
        ages: per-beacon elapsed service time used to condition survival —
            a ``{beacon_id: age}`` mapping (missing ids default to 0), a
            scalar applied to every beacon, or None for a fresh field.
        refine_k: when set, the top-k points by survival-weighted score are
            rescored through the incremental delta-engine
            (:mod:`repro.sim.incremental`) by the mean LE a beacon there
            would actually produce, and the best one wins.
    """

    name = "fa-max"
    requires_world = True

    def __init__(
        self, fault_model, horizon: float, *, penalty=None, ages=None,
        refine_k: int | None = None,
    ):
        if refine_k is not None and refine_k < 1:
            raise ValueError(f"refine_k must be >= 1, got {refine_k}")
        self.refine_k = refine_k
        self._scorer = _SurvivabilityScorer(
            fault_model, horizon, penalty=penalty, ages=ages
        )

    def survival_weights(self, field) -> np.ndarray:
        """Per-beacon survival weights, in field order (for inspection)."""
        return self._scorer.survival_weights(field)

    def expected_errors(self, survey: Survey, world) -> np.ndarray:
        """The survivability-weighted error field this variant maximizes."""
        return self._scorer.expected_errors(survey, world)

    def propose(self, survey: Survey, rng: np.random.Generator, world=None) -> Point:
        if survey.num_points == 0:
            raise ValueError("survey has no measured points for fa-max placement")
        scores = self.expected_errors(survey, world)
        if self.refine_k is not None:
            from ..sim.incremental import scan_candidates

            order = np.argsort(-scores, kind="stable")[: self.refine_k]
            candidates = survey.points[order]
            means = scan_candidates(world, candidates)
            best = int(np.nanargmin(means))
            return Point(float(candidates[best, 0]), float(candidates[best, 1]))
        idx = int(np.argmax(scores))
        x, y = survey.points[idx]
        return Point(float(x), float(y))


class FaultAwareGrid(GridPlacement):
    """Grid placement whose cumulative scores use expected post-failure error.

    The overlapping-grid accumulation (Section 3.2.3) is inherited unchanged
    from :class:`~repro.placement.GridPlacement`; only the per-point error
    vector feeding it is replaced by the survivability-weighted scores.

    Args:
        layout: the overlapping-grid decomposition.
        fault_model: declared failure statistics.
        horizon: planning look-ahead in seconds.
        penalty: orphaned-point error (default: half the terrain side).
        ages: per-beacon service ages (see :class:`FaultAwareMax`).
        refine_k: when set, the top-k centers by survival-weighted
            cumulative score are rescored through the incremental
            delta-engine and the best one wins (see :class:`FaultAwareMax`).
    """

    name = "fa-grid"
    requires_world = True

    def __init__(
        self, layout, fault_model, horizon: float, *, penalty=None, ages=None,
        refine_k: int | None = None,
    ):
        super().__init__(layout, refine_k=refine_k)
        self._scorer = _SurvivabilityScorer(
            fault_model, horizon, penalty=penalty, ages=ages
        )

    @classmethod
    def paper_configuration(
        cls,
        side: float,
        radio_range: float,
        fault_model,
        horizon: float,
        num_grids: int = 400,
        **kwargs,
    ) -> "FaultAwareGrid":
        """The §4 grid geometry (``gridSide = 2R``) with fault awareness."""
        base = GridPlacement.paper_configuration(side, radio_range, num_grids)
        return cls(base.layout, fault_model, horizon, **kwargs)

    def survival_weights(self, field) -> np.ndarray:
        """Per-beacon survival weights, in field order (for inspection)."""
        return self._scorer.survival_weights(field)

    def expected_errors(self, survey: Survey, world) -> np.ndarray:
        """The survivability-weighted error field this variant accumulates."""
        return self._scorer.expected_errors(survey, world)

    def propose(self, survey: Survey, rng: np.random.Generator, world=None) -> Point:
        if survey.num_points == 0:
            raise ValueError("survey has no measured points for fa-grid placement")
        weighted = self.expected_errors(survey, world)
        if self.refine_k is not None:
            from ..sim.incremental import scan_candidates

            candidates = self.top_candidates(survey, self.refine_k, errors=weighted)
            means = scan_candidates(world, candidates)
            best = int(np.nanargmin(means))
            return Point(float(candidates[best, 0]), float(candidates[best, 1]))
        scores = self.cumulative_errors(survey, errors=weighted)
        winner = int(np.argmax(scores))
        x, y = self.layout.centers()[winner]
        return Point(float(x), float(y))
