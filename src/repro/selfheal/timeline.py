"""Controller-on vs controller-off recovery sweeps on the resilient engine.

One cell is ``(fault model, arm, trial)`` — a whole monitored walk along the
timeline, because the controller's state (roster, budget, hysteresis arm) is
sequential in time.  The walk itself is pure in ``(config.seed, model name,
trial)`` and the controller travels as its JSON spec inside the cell args,
so cells journal, retry, resume and run bit-identically on every executor
backend — the same contract as :func:`repro.sim.timeline.fault_error_timeline`,
whose values the ``off`` arm reproduces exactly.

Aggregation yields four :class:`~repro.sim.results.CurveSet` s (mean/upper ×
on/off) with seed-derived bootstrap intervals, per-curve recovery metrics
(:meth:`~repro.sim.results.TimeCurve.time_to_recover`,
:meth:`~repro.sim.results.TimeCurve.area_under_degradation` against the
controller's threshold) stashed in curve ``meta``, and the full per-trial
decision logs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable

import numpy as np

from ..sim.config import ExperimentConfig
from ..sim.executors import CellExecutor
from ..sim.resilient import (
    RetryPolicy,
    _canon_key,
    _open_journal,
    run_cells,
    sweep_fingerprint,
)
from ..sim.results import CurveSet, TimeCurve
from ..sim.rng import derive_rng
from ..sim.timeline import TimelineConfig, _named_models
from .controller import ControllerConfig, run_controller_timeline

__all__ = ["SelfHealResult", "selfheal_timeline"]

ProgressFn = Callable[[str], None]

_ARMS = ("off", "on")


@dataclass
class SelfHealResult:
    """Everything one self-healing sweep produced.

    Attributes:
        on_mean / on_upper: per-model mean and upper-percentile LE curves
            with the controller active.
        off_mean / off_upper: the matching monitor-only baseline curves
            (same fields, same fault realizations — a paired comparison).
        decisions: ``{model name: [trial 0 log, trial 1 log, ...]}`` —
            each log is the ordered list of decision dicts the controller
            emitted for that trial.
        repairs: total repair actions per model (all trials).
        added: total beacons added per model (all trials).
        moved: total beacons redeployed per model (all trials).
    """

    on_mean: CurveSet
    on_upper: CurveSet
    off_mean: CurveSet
    off_upper: CurveSet
    decisions: dict = field(default_factory=dict)
    repairs: dict = field(default_factory=dict)
    added: dict = field(default_factory=dict)
    moved: dict = field(default_factory=dict)


def _selfheal_cell(args) -> dict:
    """One ``(model, arm, trial)`` walk — module-level for pool/socket workers."""
    config, timeline, name, spec, controller_spec, trial = args
    return run_controller_timeline(
        config, timeline, name, spec, controller_spec, trial
    )


def selfheal_timeline(
    config: ExperimentConfig,
    timeline: TimelineConfig,
    models,
    controller: ControllerConfig,
    *,
    workers: int = 1,
    journal_path=None,
    policy: RetryPolicy | None = None,
    progress: ProgressFn | None = None,
    executor: CellExecutor | None = None,
) -> SelfHealResult:
    """Paired controller-on/off recovery curves through the resilient engine.

    Args:
        config: terrain/propagation parameters.
        timeline: the time axis and trial parameters (shared by both arms).
        models: ``{name: FaultModel}`` mapping or ``(name, model)`` pairs.
        controller: the repair policy; its :meth:`~ControllerConfig.spec`
            is hashed into the sweep fingerprint, so changing any threshold
            invalidates stale journals instead of silently mixing runs.
        workers: process count when no ``executor`` is given.
        journal_path: JSONL checkpoint journal (resumable).
        policy: per-cell retry/timeout policy.
        progress: optional status callback.
        executor: run cells on this backend; stays open for the caller.

    Returns:
        A :class:`SelfHealResult`.  Curves carry ``meta["alive_fraction"]``
        (mean surviving count over the *designed* field size — it may
        exceed 1.0 after repairs), ``meta["time_to_recover"]`` and
        ``meta["area_under_degradation"]`` computed against the
        controller's mean threshold.
    """
    pairs = _named_models(models)
    specs = {name: model.spec() for name, model in pairs}
    fingerprint = sweep_fingerprint(
        "selfheal",
        config,
        {
            "timeline": asdict(timeline),
            "models": [[name, specs[name]] for name, _ in pairs],
            "controller": controller.spec(),
        },
    )
    journal = _open_journal(journal_path, fingerprint)
    controller_spec = controller.spec()
    jobs = [
        (
            (name, arm, trial),
            (
                config,
                timeline,
                name,
                specs[name],
                controller_spec if arm == "on" else None,
                trial,
            ),
        )
        for name, _ in pairs
        for arm in _ARMS
        for trial in range(timeline.trials)
    ]
    try:
        cells = run_cells(
            jobs,
            _selfheal_cell,
            workers=workers,
            policy=policy,
            journal=journal,
            progress=progress,
            executor=executor,
        )
    finally:
        if journal is not None:
            journal.close()

    num_times = len(timeline.times)
    curves = {arm: {"mean": [], "upper": []} for arm in _ARMS}
    decisions: dict[str, list] = {}
    repairs: dict[str, int] = {}
    added: dict[str, int] = {}
    moved: dict[str, int] = {}
    failed = 0
    for name, _ in pairs:
        decisions[name] = []
        repairs[name] = added[name] = moved[name] = 0
        for arm in _ARMS:
            mean_samples = np.full((num_times, timeline.trials), np.nan)
            upper_samples = np.full((num_times, timeline.trials), np.nan)
            alive = np.full((num_times, timeline.trials), np.nan)
            for trial in range(timeline.trials):
                value = cells[_canon_key((name, arm, trial))]
                if value is None:
                    failed += 1
                    if arm == "on":
                        decisions[name].append(None)
                    continue
                mean_samples[:, trial] = value["mean"]
                upper_samples[:, trial] = value["upper"]
                alive[:, trial] = value["alive"]
                if arm == "on":
                    decisions[name].append(value["decisions"])
                    repairs[name] += value["repairs"]
                    added[name] += value["added"]
                    moved[name] += value["moved"]
            with np.errstate(invalid="ignore"):
                alive_fraction = tuple(
                    float(np.nanmean(alive[i])) / timeline.beacons
                    if np.any(~np.isnan(alive[i]))
                    else float("nan")
                    for i in range(num_times)
                )

            def to_curve(samples, metric, arm=arm, alive_fraction=alive_fraction):
                curve = TimeCurve.from_samples(
                    name,
                    timeline.times,
                    samples,
                    confidence=config.confidence,
                    resamples=timeline.resamples,
                    rng_factory=lambda i: derive_rng(
                        config.seed, "selfheal-bootstrap", arm, metric, name, i
                    ),
                )
                curve.meta["alive_fraction"] = alive_fraction
                curve.meta["time_to_recover"] = curve.time_to_recover(
                    controller.mean_threshold
                )
                curve.meta["area_under_degradation"] = curve.area_under_degradation(
                    baseline=controller.mean_threshold
                )
                return curve

            curves[arm]["mean"].append(to_curve(mean_samples, "mean"))
            curves[arm]["upper"].append(to_curve(upper_samples, "upper"))

    def to_set(arm, metric, title):
        return CurveSet(
            title=title,
            curves=curves[arm][metric],
            meta={
                "noise": timeline.noise,
                "beacons": timeline.beacons,
                "trials": timeline.trials,
                "percentile": timeline.percentile,
                "controller": controller.spec() if arm == "on" else None,
                "workers": workers,
                "failed_cells": failed,
            },
        )

    label = f"noise={timeline.noise:g}, threshold={controller.mean_threshold:g}"
    return SelfHealResult(
        on_mean=to_set("on", "mean", f"Mean LE vs time, controller on ({label})"),
        on_upper=to_set(
            "on",
            "upper",
            f"p{timeline.percentile:g} LE vs time, controller on ({label})",
        ),
        off_mean=to_set("off", "mean", f"Mean LE vs time, controller off ({label})"),
        off_upper=to_set(
            "off",
            "upper",
            f"p{timeline.percentile:g} LE vs time, controller off ({label})",
        ),
        decisions=decisions,
        repairs=repairs,
        added=added,
        moved=moved,
    )
