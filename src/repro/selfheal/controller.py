"""The closed-loop redeployment controller.

This is the half of "self-configuring" the paper leaves as future work: a
policy that *watches* a degrading deployment and fights back.  The
controller walks one trial's fault timeline forward in time; at every
snapshot it measures mean localization error and the surviving beacon
fraction, compares them to configured thresholds, and on a breach spends
part of a beacon budget on a repair:

* **add-k** (the normal case): deploy up to ``repair_k`` new beacons, one
  at a time, each placed by :class:`~repro.selfheal.FaultAwareGrid` on a
  fresh survey of the *current* degraded world — so repairs avoid leaning
  on survivors that are themselves about to die (per-beacon service ages
  condition the survival weights);
* **redeploy** (catastrophic loss): when the surviving fraction falls below
  ``catastrophic_fraction`` but some beacons remain, re-place the survivors
  with :class:`~repro.placement.WeightedRedeployment` — moving radios costs
  no budget, only adding does;
* **blind** (total outage): with every beacon down there is nothing to
  survey; deploy budgeted beacons at seed-derived uniform positions (the
  paper's Random strategy, the only one available without measurements).

A hysteresis band keeps the loop from thrashing: after a repair the
controller *disarms* and only re-arms once the mean error has fallen back
below ``hysteresis × mean_threshold`` — the classic two-threshold
controller shape.  Exhausting the budget is itself a logged event
(``selfheal.budget_exhausted``), after which the controller goes silent.

Everything here is a pure function of ``(config.seed, model name, trial)``:
fault realizations and the propagation world come from the *same* derived
RNG streams as :mod:`repro.sim.timeline` (so the controller-off arm is
bit-identical to ``fault_error_timeline``), and every repair decision draws
from ``derive_rng(seed, "selfheal", name, trial, time_index, attempt)``.
The full decision log is part of the cell value and therefore of the
journal: a resumed sweep replays the identical log without re-simulating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..faults import fault_model_from_spec
from ..field import Beacon, BeaconField, random_uniform_field
from ..geometry import Point
from ..obs import get_metrics, get_tracer
from ..placement import WeightedRedeployment
from ..sim.config import ExperimentConfig
from ..sim.executors.cache import (
    cached_fault_realization,
    cached_grid,
    cached_layout,
    cached_localizer,
)
from ..sim.incremental import FieldState
from ..sim.rng import derive_rng
from ..sim.sweep import default_model_factory
from ..sim.timeline import _spec_token
from .placement import FaultAwareGrid

__all__ = ["ControllerConfig", "run_controller_timeline"]


@dataclass(frozen=True)
class ControllerConfig:
    """Policy parameters of the closed-loop controller.

    The config is the *only* controller state that crosses the wire: it
    serializes to a plain-JSON :meth:`spec` that lands in the sweep
    fingerprint, so two runs with equal specs journal interchangeable cells.

    Attributes:
        mean_threshold: mean-LE ceiling (meters); exceeding it — or losing
            service entirely — is a breach.
        alive_threshold: minimum surviving fraction of the *designed* field
            size (breach below it even if error still looks fine — early
            warning from the roster, not the error field).
        budget: total beacons the controller may add over the whole
            timeline.
        repair_k: beacons added per add-k repair (capped by the remaining
            budget).
        horizon: look-ahead (seconds) for the survivability weighting of
            repair placements.
        hysteresis: re-arm fraction; after a repair the controller stays
            quiet until mean LE ≤ ``hysteresis × mean_threshold``.
        catastrophic_fraction: surviving fraction below which a breach
            triggers survivor redeployment instead of add-k.
        penalty: orphaned-point error for the fault-aware placer (None:
            half the terrain side).
    """

    mean_threshold: float
    alive_threshold: float = 0.0
    budget: int = 8
    repair_k: int = 2
    horizon: float = 25.0
    hysteresis: float = 0.9
    catastrophic_fraction: float = 0.0
    penalty: float | None = None

    def __post_init__(self) -> None:
        if self.mean_threshold <= 0.0:
            raise ValueError(
                f"mean_threshold must be positive, got {self.mean_threshold}"
            )
        if not 0.0 <= self.alive_threshold <= 1.0:
            raise ValueError(
                f"alive_threshold must be in [0, 1], got {self.alive_threshold}"
            )
        if self.budget < 0:
            raise ValueError(f"budget must be non-negative, got {self.budget}")
        if self.repair_k < 1:
            raise ValueError(f"repair_k must be >= 1, got {self.repair_k}")
        if self.horizon < 0.0:
            raise ValueError(f"horizon must be non-negative, got {self.horizon}")
        if not 0.0 < self.hysteresis <= 1.0:
            raise ValueError(
                f"hysteresis must be in (0, 1], got {self.hysteresis}"
            )
        if not 0.0 <= self.catastrophic_fraction <= 1.0:
            raise ValueError(
                "catastrophic_fraction must be in [0, 1], "
                f"got {self.catastrophic_fraction}"
            )
        if self.penalty is not None and self.penalty < 0.0:
            raise ValueError(f"penalty must be non-negative, got {self.penalty}")

    def spec(self) -> dict:
        """JSON-canonical identity (what sweep fingerprints hash)."""
        return {
            "mean_threshold": self.mean_threshold,
            "alive_threshold": self.alive_threshold,
            "budget": self.budget,
            "repair_k": self.repair_k,
            "horizon": self.horizon,
            "hysteresis": self.hysteresis,
            "catastrophic_fraction": self.catastrophic_fraction,
            "penalty": self.penalty,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "ControllerConfig":
        """Rebuild a config from its :meth:`spec` dict (wire inverse)."""
        fields = (
            "mean_threshold",
            "alive_threshold",
            "budget",
            "repair_k",
            "horizon",
            "hysteresis",
            "catastrophic_fraction",
            "penalty",
        )
        try:
            return cls(**{k: spec[k] for k in fields})
        except KeyError as exc:
            raise ValueError(
                f"controller spec {spec!r} is missing {exc}"
            ) from None


class _Roster:
    """The controller's deployment ledger: every beacon ever fielded.

    Each entry carries a stable id, the *deployed* position and the
    deployment time.  Fault schedules are a field over beacon identities
    (:mod:`repro.faults.models`), so a beacon deployed at ``d`` is queried
    at its own service age ``t − d`` — fresh repairs start with a fresh
    fault clock, exactly as a newly fielded radio would.
    """

    def __init__(self, field: BeaconField):
        self.ids = [int(b) for b in field.beacon_ids]
        self.positions = [
            (float(x), float(y)) for x, y in np.asarray(field.positions())
        ]
        self.deploy_times = [0.0] * len(self.ids)
        self.next_id = field.next_beacon_id

    def __len__(self) -> int:
        return len(self.ids)

    def add(self, position: Point, time: float) -> int:
        beacon_id = self.next_id
        self.next_id += 1
        self.ids.append(beacon_id)
        self.positions.append((float(position.x), float(position.y)))
        self.deploy_times.append(float(time))
        return beacon_id

    def snapshot(self, realization, time: float) -> tuple[BeaconField, np.ndarray]:
        """The surviving (possibly drifted) field at ``time``.

        Mirrors :func:`repro.faults.apply_faults` — identical beacon
        construction arithmetic keeps the controller-off arm bit-identical
        to the plain timeline sweep — generalized to per-beacon deployment
        times: up-state and drift are queried at each beacon's service age.
        """
        n = len(self.ids)
        ids = np.asarray(self.ids, dtype=np.uint64)
        deploys = np.asarray(self.deploy_times)
        up = np.zeros(n, dtype=bool)
        offsets = np.zeros((n, 2))
        for d in np.unique(deploys):
            sel = deploys == d
            age = float(time) - float(d)
            up[sel] = realization.up_mask(ids[sel], age)
            offsets[sel] = realization.position_offsets(ids[sel], age)
        beacons = [
            Beacon(i, Point(x + float(dx), y + float(dy)))
            for i, (x, y), alive, (dx, dy) in zip(
                self.ids, self.positions, up, offsets
            )
            if alive
        ]
        return BeaconField(beacons, next_id=self.next_id), up

    def ages_at(self, time: float) -> dict[int, float]:
        """Per-beacon service age at ``time`` (conditions survival weights)."""
        return {
            i: float(time) - d for i, d in zip(self.ids, self.deploy_times)
        }

    def move_alive(self, up: np.ndarray, positions: np.ndarray) -> None:
        """Re-place the surviving beacons (row order = alive roster order)."""
        rows = iter(np.asarray(positions))
        for idx, alive in enumerate(up):
            if alive:
                x, y = next(rows)
                self.positions[idx] = (float(x), float(y))


def _finite(value: float) -> bool:
    return math.isfinite(value)


def run_controller_timeline(
    config: ExperimentConfig,
    timeline,
    name: str,
    model_spec: dict,
    controller_spec: dict | None,
    trial: int,
) -> dict:
    """One trial's monitored walk along the fault timeline — pure in the seed.

    The controller-off arm (``controller_spec=None``) is the same walk with
    monitoring only; its per-time values match
    :func:`repro.sim.timeline.fault_error_timeline` bit for bit, because the
    field, the fault realization and the propagation world come from the
    same derived RNG streams.

    Args:
        config: terrain/propagation parameters.
        timeline: a :class:`~repro.sim.TimelineConfig` (times are walked in
            ascending order for causality; outputs follow the input order).
        name: the fault model's curve label (keys the RNG streams).
        model_spec: the fault model's JSON spec.
        controller_spec: a :meth:`ControllerConfig.spec` dict, or None for
            the monitor-only baseline arm.
        trial: trial index.

    Returns:
        A plain-JSON dict: per-time ``mean``/``upper``/``alive`` lists (in
        ``timeline.times`` input order), total ``repairs``/``added``/
        ``moved`` counts, the remaining ``budget_left`` and the ordered
        ``decisions`` log.
    """
    metrics = get_metrics()
    tracer = get_tracer()
    metrics.counter("selfheal.cells").inc()
    controller = (
        None if controller_spec is None else ControllerConfig.from_spec(controller_spec)
    )
    realization = cached_fault_realization(
        (config.seed, name, _spec_token(model_spec), trial),
        lambda: fault_model_from_spec(model_spec).realize(
            derive_rng(config.seed, "timeline-faults", name, trial)
        ),
    )
    field_rng = derive_rng(config.seed, "field", timeline.beacons, trial)
    base_field = random_uniform_field(timeline.beacons, config.side, field_rng)
    world_rng = derive_rng(
        config.seed, "world", timeline.noise, timeline.beacons, trial
    )
    prop = default_model_factory(config)(timeline.noise).realize(world_rng)
    grid = cached_grid(config.side, config.step)
    layout = cached_layout(config.side, config.radio_range, config.num_grids)
    localizer = cached_localizer(config.side, config.policy)

    # Successive fault-timeline snapshots differ by a few dead/revived/
    # drifted beacons, so the walk runs on the incremental delta-engine:
    # the first snapshot pays one full build, every later one advances by
    # per-column deltas (bit-identical to a fresh TrialWorld by the
    # engine's contract, so the controller-off arm still matches the plain
    # timeline sweep byte for byte).  The lineage's shared column cache
    # also makes the add-k search's committed picks free to re-splice.
    last_state: FieldState | None = None

    def make_world(field: BeaconField) -> FieldState:
        nonlocal last_state
        if last_state is None:
            last_state = FieldState.build(
                field,
                prop,
                grid,
                layout,
                localizer,
            )
        else:
            last_state = last_state.advance_to(field)
        return last_state

    roster = _Roster(base_field)
    num_times = len(timeline.times)
    means = [float("nan")] * num_times
    uppers = [float("nan")] * num_times
    alive_counts = [0] * num_times
    decisions: list[dict] = []
    repairs = added = moved = 0
    budget_left = controller.budget if controller is not None else 0
    armed = True
    exhausted_logged = False
    # Post-repair service level; re-arming compares against it so the
    # controller re-engages when degradation *resumes*, not merely persists.
    last_after_mean = float("inf")
    last_after_alive = 0

    arm = "off" if controller is None else "on"
    with tracer.span("selfheal.trial", model=name, trial=trial, arm=arm):
        for time_index in sorted(
            range(num_times), key=lambda i: timeline.times[i]
        ):
            t = timeline.times[time_index]
            field, up = roster.snapshot(realization, t)
            num_alive = len(field)
            alive_counts[time_index] = num_alive
            world = None
            if num_alive == 0:
                metrics.counter("selfheal.all_dead").inc()
                mean = upper = float("nan")
            else:
                world = make_world(field)
                errors = world.errors()
                mean = float(np.mean(errors))
                upper = float(np.percentile(errors, timeline.percentile))
            means[time_index] = mean
            uppers[time_index] = upper

            if controller is None:
                continue

            alive_frac = num_alive / timeline.beacons
            healthy = (
                _finite(mean)
                and mean <= controller.mean_threshold
                and alive_frac >= controller.alive_threshold
            )
            if not armed:
                # Re-arm on any of: recovery below the hysteresis band
                # (episode over), total outage, error climbing past the
                # post-repair level, or the roster shrinking below both the
                # alive threshold and its post-repair size.  A breach that
                # merely *persists* at the repaired level stays quiet — the
                # last repair already did what the budget could buy there.
                armed = (
                    not _finite(mean)
                    or mean <= controller.hysteresis * controller.mean_threshold
                    or mean > last_after_mean
                    or (
                        alive_frac < controller.alive_threshold
                        and num_alive < last_after_alive
                    )
                )
            if healthy or not armed:
                continue
            reason = (
                "outage"
                if not _finite(mean)
                else ("alive" if alive_frac < controller.alive_threshold else "mean")
            )
            if budget_left <= 0 and num_alive == 0:
                # Nothing to move and nothing left to add.
                if not exhausted_logged:
                    metrics.counter("selfheal.budget_exhausted").inc()
                    decisions.append(
                        {
                            "time": t,
                            "action": "exhausted",
                            "reason": reason,
                            "added": 0,
                            "budget_left": 0,
                            "mean_before": mean,
                            "mean_after": mean,
                            "alive": num_alive,
                        }
                    )
                    exhausted_logged = True
                continue

            with tracer.span("selfheal.repair", model=name, trial=trial, time=t):
                catastrophic = (
                    num_alive > 0
                    and alive_frac < controller.catastrophic_fraction
                    # Redeployment needs error mass to follow; an all-NaN
                    # survey (policy-excluded points) falls through to add-k.
                    and bool(np.any(~np.isnan(world.errors())))
                )
                if num_alive == 0:
                    # Total outage: no survey exists; deploy budgeted
                    # beacons at seed-derived uniform positions (Random is
                    # the only measurement-free strategy).
                    action = "blind"
                    count = min(controller.repair_k, budget_left)
                    for attempt in range(count):
                        rng = derive_rng(
                            config.seed, "selfheal", name, trial, time_index, attempt
                        )
                        x, y = rng.uniform(0.0, config.side, size=2)
                        roster.add(Point(float(x), float(y)), t)
                    budget_left -= count
                    added += count
                    field, up = roster.snapshot(realization, t)
                    world = make_world(field) if len(field) else None
                elif catastrophic:
                    # Catastrophic but not total: moving the survivors
                    # buys recovery without spending the add budget.
                    action = "redeploy"
                    count = 0
                    rng = derive_rng(
                        config.seed, "selfheal", name, trial, time_index, 0
                    )
                    replaced = WeightedRedeployment().redeploy(
                        field, world.survey(), rng
                    )
                    roster.move_alive(up, replaced.positions())
                    moved += num_alive
                    field, up = roster.snapshot(realization, t)
                    world = make_world(field)
                else:
                    if budget_left <= 0:
                        if not exhausted_logged:
                            metrics.counter("selfheal.budget_exhausted").inc()
                            decisions.append(
                                {
                                    "time": t,
                                    "action": "exhausted",
                                    "reason": reason,
                                    "added": 0,
                                    "budget_left": 0,
                                    "mean_before": mean,
                                    "mean_after": mean,
                                    "alive": num_alive,
                                }
                            )
                            exhausted_logged = True
                        continue
                    action = "add"
                    count = min(controller.repair_k, budget_left)
                    for attempt in range(count):
                        placer = FaultAwareGrid(
                            layout,
                            model_spec,
                            controller.horizon,
                            penalty=controller.penalty,
                            ages=roster.ages_at(t),
                        )
                        rng = derive_rng(
                            config.seed, "selfheal", name, trial, time_index, attempt
                        )
                        pick = placer.propose(world.survey(), rng, world)
                        roster.add(pick, t)
                        world = world.with_beacon(pick)
                    # Adopt the extended state so the next snapshot advances
                    # from it instead of re-splicing the committed columns.
                    last_state = world
                    budget_left -= count
                    added += count
                    field, up = roster.snapshot(realization, t)

                repairs += 1
                armed = False
                metrics.counter("selfheal.repairs").inc()
                mean_after = (
                    float(np.mean(world.errors())) if world is not None else float("nan")
                )
                last_after_mean = mean_after if _finite(mean_after) else float("-inf")
                last_after_alive = len(field)
                decisions.append(
                    {
                        "time": t,
                        "action": action,
                        "reason": reason,
                        "added": count if action != "redeploy" else 0,
                        "budget_left": budget_left,
                        "mean_before": mean,
                        "mean_after": mean_after,
                        "alive": len(field),
                    }
                )

    return {
        "mean": means,
        "upper": uppers,
        "alive": alive_counts,
        "repairs": repairs,
        "added": added,
        "moved": moved,
        "budget_left": budget_left,
        "decisions": decisions,
    }
