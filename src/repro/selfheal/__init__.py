"""Self-healing beacon fields: fault-aware placement and closed-loop repair.

The paper's future-work vision is a *self-configuring* beacon system.  The
fault layer (:mod:`repro.faults`) and the timeline sweeps
(:mod:`repro.sim.timeline`) reproduce the decay half of that story; this
package adds the response half:

* :mod:`~repro.selfheal.survival` — closed-form survival weights derived
  from the declared fault statistics (:func:`survival_probability`,
  :func:`expected_alive_fraction`);
* :mod:`~repro.selfheal.placement` — :class:`FaultAwareMax` and
  :class:`FaultAwareGrid`, which score candidate points by expected
  *post-failure* error instead of the measured snapshot;
* :mod:`~repro.selfheal.controller` — :class:`ControllerConfig` and the
  monitored timeline walk (:func:`run_controller_timeline`): thresholds
  with hysteresis, a beacon budget, add-k / redeploy / blind repairs and a
  journaled decision log;
* :mod:`~repro.selfheal.timeline` — :func:`selfheal_timeline`, the paired
  controller-on/off sweep through the resilient engine, returning a
  :class:`SelfHealResult` with recovery metrics.

Exposed on the CLI as ``beaconplace selfheal``.
"""

from .controller import ControllerConfig, run_controller_timeline
from .placement import FaultAwareGrid, FaultAwareMax
from .survival import expected_alive_fraction, survival_probability
from .timeline import SelfHealResult, selfheal_timeline

__all__ = [
    "ControllerConfig",
    "FaultAwareGrid",
    "FaultAwareMax",
    "SelfHealResult",
    "expected_alive_fraction",
    "run_controller_timeline",
    "selfheal_timeline",
    "survival_probability",
]
