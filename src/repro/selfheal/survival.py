"""Analytic survival weights for the fault models.

Fault-aware placement (:mod:`repro.selfheal.placement`) needs to know, at
planning time, how likely each existing beacon is to still be serving at a
future horizon — *without* peeking at the drawn
:class:`~repro.faults.FaultRealization` (a real controller cannot observe
which beacon will die, only the declared failure statistics).  This module
derives those weights in closed form from a :class:`~repro.faults.FaultModel`
spec:

* :func:`expected_alive_fraction` — the unconditional probability that a
  beacon deployed at time 0 is up at time ``t`` (what the timeline sweeps
  measure empirically as their per-point alive fraction), and
* :func:`survival_probability` — the conditional probability that a beacon
  observed up at ``age`` is still up ``horizon`` seconds later (what a
  controller planning a repair actually wants: it can see who is alive *now*).

The formulas mirror :mod:`repro.faults.models` exactly:

===================  ====================================================
model                survival at ``t`` (deployed at 0, started up)
===================  ====================================================
``none`` / ``drift``   1
``crash``              ``exp(-t / mean_lifetime)`` (memoryless)
``battery``            uniform-lifetime tail: ``clip((m(1+s) − t)/(2ms))``
``intermittent``       two-state CTMC: ``π + (1 − π)·exp(-(λ+μ)t)`` with
                       ``π = up/(up+down)``; the permanent-outage limit
                       (``mean_down_time = ∞``) reduces to crash with
                       mean ``mean_up_time``
``composite``          product of the components (independent processes)
===================  ====================================================

Property tests (``tests/test_selfheal_survival.py``) pin these formulas to
the hash-replayed realizations: empirical alive fractions over thousands of
beacon ids match the analytic weights.
"""

from __future__ import annotations

import math

__all__ = ["expected_alive_fraction", "survival_probability"]


def _as_spec(model_or_spec) -> dict:
    if isinstance(model_or_spec, dict):
        return model_or_spec
    spec = getattr(model_or_spec, "spec", None)
    if callable(spec):
        return spec()
    raise TypeError(
        f"expected a FaultModel or spec dict, got {type(model_or_spec).__name__}"
    )


def _battery_tail(spec: dict, t: float) -> float:
    mean, spread = spec["mean_lifetime"], spec["spread"]
    if spread == 0.0:
        return 1.0 if t < mean else 0.0
    low, high = mean * (1.0 - spread), mean * (1.0 + spread)
    if t <= low:
        return 1.0
    if t >= high:
        return 0.0
    return (high - t) / (high - low)


def _intermittent_up_probability(spec: dict, t: float, *, start_up) -> float:
    up, down = spec["mean_up_time"], spec["mean_down_time"]
    if math.isinf(down):
        # First outage is permanent: a crash with exponential mean ``up``.
        return math.exp(-t / up) if start_up else 0.0
    pi = up / (up + down)
    if start_up is None:
        return pi  # steady-state start: up-probability is constant
    rate = 1.0 / up + 1.0 / down
    decay = math.exp(-rate * t)
    if start_up:
        return pi + (1.0 - pi) * decay
    return pi * (1.0 - decay)


def expected_alive_fraction(model_or_spec, time: float) -> float:
    """P(a beacon deployed at 0 is up at ``time``), from the model alone.

    For every built-in model the per-beacon fault processes are i.i.d., so
    this is also the expected surviving *fraction* of a field — the analytic
    counterpart of ``TimeCurve.alive_fraction()``.

    Args:
        model_or_spec: a :class:`~repro.faults.FaultModel` or its
            :meth:`~repro.faults.FaultModel.spec` dict.
        time: seconds since deployment (non-negative).

    Raises:
        ValueError: on a negative time or an unknown model kind.
    """
    spec = _as_spec(model_or_spec)
    t = float(time)
    if t < 0.0:
        raise ValueError(f"time must be non-negative, got {t}")
    kind = spec.get("kind")
    if kind in ("none", "drift"):
        return 1.0
    if kind == "crash":
        return math.exp(-t / spec["mean_lifetime"])
    if kind == "battery":
        return _battery_tail(spec, t)
    if kind == "intermittent":
        return _intermittent_up_probability(spec, t, start_up=spec["start_up"])
    if kind == "composite":
        out = 1.0
        for part in spec["models"]:
            out *= expected_alive_fraction(part, t)
        return out
    raise ValueError(f"unknown fault-model kind {kind!r} in spec {spec!r}")


def survival_probability(model_or_spec, age: float, horizon: float) -> float:
    """P(up at ``age + horizon`` | up at ``age``) for one beacon.

    This is the weight fault-aware placement puts on an existing beacon's
    contribution: the controller can observe who is alive now (``age``
    seconds after that beacon's deployment) but must anticipate the next
    ``horizon`` seconds from the declared statistics.

    Per model: crash is memoryless (``exp(-horizon/mean)`` regardless of
    age); battery conditions the uniform-lifetime tail on having lasted
    this long (old beacons are *more* likely to die soon — the hazard the
    issue's "about to die" weighting exists for); intermittent is Markov in
    its up/down state, so conditioning on "up now" resets the chain
    (``start_up=True`` at the observation instant); composites multiply.

    Args:
        model_or_spec: a :class:`~repro.faults.FaultModel` or its spec dict.
        age: seconds since this beacon's deployment (non-negative).
        horizon: look-ahead in seconds (non-negative).

    Raises:
        ValueError: on negative arguments or an unknown model kind.
    """
    spec = _as_spec(model_or_spec)
    a, h = float(age), float(horizon)
    if a < 0.0:
        raise ValueError(f"age must be non-negative, got {a}")
    if h < 0.0:
        raise ValueError(f"horizon must be non-negative, got {h}")
    kind = spec.get("kind")
    if kind in ("none", "drift"):
        return 1.0
    if kind == "crash":
        return math.exp(-h / spec["mean_lifetime"])
    if kind == "battery":
        now = _battery_tail(spec, a)
        if now <= 0.0:
            return 0.0  # conditioning on a measure-zero event; be conservative
        return _battery_tail(spec, a + h) / now
    if kind == "intermittent":
        # Exponential sojourns make the up/down chain Markov: observing the
        # beacon up at ``age`` restarts it in the up state.
        return _intermittent_up_probability(spec, h, start_up=True)
    if kind == "composite":
        out = 1.0
        for part in spec["models"]:
            out *= survival_probability(part, a, h)
        return out
    raise ValueError(f"unknown fault-model kind {kind!r} in spec {spec!r}")
