"""Density-adaptive beacon activation (the Section 6 beacon-based approach).

Section 6 sketches an alternative to robot-carried placement: *"a reasonably
dense beacon deployment is assumed, and the beacon nodes themselves
instrument the terrain conditions based on interactions with other (beacon)
nodes, and decide whether to turn themselves on i.e., be active or be
passive."*  This mirrors the AFECA idea the paper cites (ref [19]): exploit
redundancy to scale back duty cycles.

:class:`DensityAdaptiveActivation` is a fully distributed protocol
simulated faithfully:

1. every beacon *hears* its neighbours through the propagation realization
   (the same asymmetric, noisy channel clients see — a beacon only counts a
   neighbour it can actually receive);
2. beacons contend in random priority order (their only coordination);
3. a beacon goes **passive** iff it already hears at least
   ``target_neighbors`` active higher-priority beacons, else it stays
   active.

The result is an active subset whose local density approximates the target
everywhere it can, while every passive beacon is redundantly covered — the
self-interference and power motivations of §1.  The paper's saturation
finding (density > ≈0.01/m² buys nothing) provides the natural target.
"""

from __future__ import annotations

import numpy as np

from ..field import BeaconField
from ..radio import PropagationRealization

__all__ = ["DensityAdaptiveActivation", "ActivationResult"]


class ActivationResult:
    """Outcome of an activation round.

    Attributes:
        active_field: the field restricted to active beacons (beacon ids are
            preserved from the parent field, so propagation realizations
            remain valid).
        active_mask: ``(N,)`` boolean aligned with the parent field order.
        parent_field: the original dense deployment.
    """

    def __init__(self, parent_field: BeaconField, active_mask: np.ndarray):
        self.parent_field = parent_field
        self.active_mask = np.asarray(active_mask, dtype=bool)
        if self.active_mask.shape != (len(parent_field),):
            raise ValueError(
                f"mask shape {self.active_mask.shape} != field size {len(parent_field)}"
            )
        active = [b for b, on in zip(parent_field.beacons, self.active_mask) if on]
        self.active_field = BeaconField(active)

    @property
    def num_active(self) -> int:
        """Number of beacons that stayed on."""
        return int(np.count_nonzero(self.active_mask))

    @property
    def duty_fraction(self) -> float:
        """Fraction of the deployment that remains active."""
        if len(self.parent_field) == 0:
            return float("nan")
        return self.num_active / len(self.parent_field)


class DensityAdaptiveActivation:
    """Distributed on/off self-scheduling for dense beacon fields.

    Args:
        target_neighbors: a beacon sleeps once it hears this many active
            neighbours (≈ the saturation density of ~7 beacons per coverage
            area, halved because coverage is shared both ways).
    """

    def __init__(self, target_neighbors: int = 4):
        if target_neighbors < 1:
            raise ValueError(f"target_neighbors must be >= 1, got {target_neighbors}")
        self.target_neighbors = int(target_neighbors)

    def run(
        self,
        field: BeaconField,
        realization: PropagationRealization,
        rng: np.random.Generator,
    ) -> ActivationResult:
        """One activation round over the whole field.

        Args:
            field: the dense deployment.
            realization: propagation world — beacon-to-beacon hearing uses
                the same noisy channel as clients.
            rng: randomness for the contention (priority) order.

        Returns:
            The :class:`ActivationResult`; with an empty field, trivially
            empty.
        """
        n = len(field)
        if n == 0:
            return ActivationResult(field, np.zeros(0, dtype=bool))

        # hears[i, j]: beacon i receives beacon j's transmissions.
        hears = realization.connectivity(field.positions(), field)
        np.fill_diagonal(hears, False)

        priority = rng.permutation(n)
        active = np.zeros(n, dtype=bool)
        for idx in priority:
            heard_active = np.count_nonzero(hears[idx] & active)
            if heard_active < self.target_neighbors:
                active[idx] = True
        return ActivationResult(field, active)
