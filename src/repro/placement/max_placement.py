"""The Max placement algorithm (Section 3.2.2).

    Step 1  Divide the terrain into step × step squares.
    Step 2  Measure localization error at each square corner.
    Step 3  Add the new beacon at the point with the highest measured
            localization error among all points.

The algorithm assumes high-error points are spatially correlated; it is
cheap (linear in the number of measured points, O(P_T)) but *"sensitive to
local maxima"* — a single loud outlier attracts the beacon even if its
neighbourhood is fine, which is exactly the weakness the evaluation exposes
at low densities.  Ties break to the first point in survey order, which for
a complete lattice sweep means row-major order — deterministic.

The local-maxima weakness has a direct fix once candidate evaluation is
cheap: with ``refine_k`` set (and a world available), the top-k surveyed
points are rescored through the incremental delta-engine
(:mod:`repro.sim.incremental`) by the mean LE a beacon there would actually
produce — one base field plus k cheap deltas — and the best one wins.
``refine_k=None`` (the default) is the paper's exact argmax.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point
from .base import PlacementAlgorithm

__all__ = ["MaxPlacement"]


class MaxPlacement(PlacementAlgorithm):
    """Place at the surveyed point with maximum localization error.

    Args:
        refine_k: when set, candidate scan width for the engine-backed
            refinement (see module docstring); None keeps the paper's
            survey-only behavior.
    """

    name = "max"

    def __init__(self, refine_k: int | None = None):
        if refine_k is not None and refine_k < 1:
            raise ValueError(f"refine_k must be >= 1, got {refine_k}")
        self.refine_k = refine_k
        self.requires_world = refine_k is not None

    def top_candidates(self, survey: Survey, k: int) -> np.ndarray:
        """The ``k`` highest-error surveyed points, ``(k', 2)``, best first.

        NaN measurements never qualify; fewer than ``k`` rows come back when
        the survey has fewer finite points.  Ties keep survey order.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        errors = survey.errors
        if errors.size == 0 or np.all(np.isnan(errors)):
            raise ValueError("survey has no measured points for Max placement")
        scores = np.where(np.isnan(errors), -np.inf, errors)
        order = np.argsort(-scores, kind="stable")
        order = order[np.isfinite(scores[order])]
        return survey.points[order[:k]]

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        if self.refine_k is not None and world is not None:
            from ..sim.incremental import scan_candidates

            candidates = self.top_candidates(survey, self.refine_k)
            means = scan_candidates(world, candidates)
            best = int(np.nanargmin(means))
            return Point(float(candidates[best, 0]), float(candidates[best, 1]))
        errors = survey.errors
        if errors.size == 0 or np.all(np.isnan(errors)):
            raise ValueError("survey has no measured points for Max placement")
        idx = int(np.nanargmax(errors))
        x, y = survey.points[idx]
        return Point(float(x), float(y))
