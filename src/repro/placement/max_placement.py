"""The Max placement algorithm (Section 3.2.2).

    Step 1  Divide the terrain into step × step squares.
    Step 2  Measure localization error at each square corner.
    Step 3  Add the new beacon at the point with the highest measured
            localization error among all points.

The algorithm assumes high-error points are spatially correlated; it is
cheap (linear in the number of measured points, O(P_T)) but *"sensitive to
local maxima"* — a single loud outlier attracts the beacon even if its
neighbourhood is fine, which is exactly the weakness the evaluation exposes
at low densities.  Ties break to the first point in survey order, which for
a complete lattice sweep means row-major order — deterministic.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point
from .base import PlacementAlgorithm

__all__ = ["MaxPlacement"]


class MaxPlacement(PlacementAlgorithm):
    """Place at the surveyed point with maximum localization error."""

    name = "max"

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        errors = survey.errors
        if errors.size == 0 or np.all(np.isnan(errors)):
            raise ValueError("survey has no measured points for Max placement")
        idx = int(np.nanargmax(errors))
        x, y = survey.points[idx]
        return Point(float(x), float(y))
