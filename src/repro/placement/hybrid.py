"""Hybrid placement: coverage first, error second (extension).

At very low density the dominant problem is points that hear *nothing*; at
moderate density it is points localized badly.  The pure strategies each
own one regime (bench E5/E2 data): coverage-hole placement wins while holes
dominate, Grid wins once coverage is adequate.  The hybrid switches on the
observed unlocalizable fraction — a quantity any §2.2 surveyor measures for
free — giving one algorithm that is competitive across the whole density
sweep.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point
from .base import PlacementAlgorithm
from .coverage import CoverageHolePlacement
from .grid_placement import GridPlacement

__all__ = ["HybridPlacement"]


class HybridPlacement(PlacementAlgorithm):
    """CoverageHolePlacement below a coverage threshold, Grid above it.

    Args:
        grid: the Grid algorithm instance for the adequate-coverage regime.
        coverage: the coverage-hole algorithm for the hole-dominated regime.
        hole_threshold: switch to coverage mode when the estimated fraction
            of unlocalizable survey points exceeds this.
    """

    name = "hybrid"
    requires_world = True  # exact hole detection; degrades gracefully without

    def __init__(
        self,
        grid: GridPlacement,
        coverage: CoverageHolePlacement,
        hole_threshold: float = 0.1,
    ):
        if not 0.0 <= hole_threshold <= 1.0:
            raise ValueError(f"hole_threshold must be in [0, 1], got {hole_threshold}")
        self.grid = grid
        self.coverage = coverage
        self.hole_threshold = float(hole_threshold)

    def hole_fraction(self, survey: Survey, world) -> float:
        """Estimated fraction of unlocalizable survey points."""
        if world is not None:
            return float((~world.connectivity().any(axis=1)).mean())
        return float(np.isnan(survey.errors).mean())

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        if self.hole_fraction(survey, world) > self.hole_threshold:
            return self.coverage.propose(survey, rng, world)
        return self.grid.propose(survey, rng, world)
