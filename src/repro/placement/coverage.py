"""Coverage-hole placement: a connectivity-first baseline (extension).

Before localization *quality* comes localization *possibility*: a client
hearing zero beacons cannot localize at all, and the paper names "global
coverage" as a sibling problem its algorithms may generalize to (§1).  This
algorithm ignores the error magnitudes entirely and places the new beacon to
cover the most uncovered ground: the surveyed point that maximizes the
number of currently-unheard survey points within nominal range.

It needs only the set of unlocalizable survey points, which any robot
running the §2.2 client stack observes for free — so, unlike the oracle, it
is deployable.  It is the natural foil for Max/Grid: at very low densities
(coverage-limited regime) it is competitive; once coverage saturates it has
nothing to optimize and falls behind the error-driven algorithms.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point, pairwise_distances
from .base import PlacementAlgorithm

__all__ = ["CoverageHolePlacement"]


class CoverageHolePlacement(PlacementAlgorithm):
    """Place to cover the most unlocalizable survey points.

    Unheard points are detected from the survey: under the package's
    fallback policies an unlocalizable point's measured error is either NaN
    (EXCLUDE) or computed against a fixed fallback estimate — so the
    surveyor records the raw "heard nothing" bit separately.  Absent that
    bit, this implementation uses the world when available (exact), else
    treats the ``unheard_quantile`` largest errors as the holes (heuristic).

    Args:
        radio_range: nominal range R of the beacon to be placed.
        unheard_quantile: survey-only fallback — fraction of worst-error
            points treated as coverage holes.
    """

    name = "coverage"
    requires_world = False

    def __init__(self, radio_range: float, unheard_quantile: float = 0.15):
        if radio_range <= 0:
            raise ValueError(f"radio_range must be positive, got {radio_range}")
        if not 0.0 < unheard_quantile <= 1.0:
            raise ValueError(
                f"unheard_quantile must be in (0, 1], got {unheard_quantile}"
            )
        self.radio_range = float(radio_range)
        self.unheard_quantile = float(unheard_quantile)

    def _hole_mask(self, survey: Survey, world) -> np.ndarray:
        if world is not None:
            return ~world.connectivity().any(axis=1)
        errors = survey.errors
        holes = np.isnan(errors)
        finite = errors[~holes]
        if finite.size:
            cutoff = np.quantile(finite, 1.0 - self.unheard_quantile)
            holes = holes | (errors >= cutoff)
        return holes

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        if survey.num_points == 0:
            raise ValueError("survey has no measured points for coverage placement")
        holes = self._hole_mask(survey, world)
        if not holes.any():
            # Fully covered: fall back to the worst measured point.
            idx = int(np.nanargmax(survey.errors))
            x, y = survey.points[idx]
            return Point(float(x), float(y))

        hole_points = survey.points[holes]
        # Candidate set = the survey points themselves; score = holes covered.
        dist = pairwise_distances(survey.points, hole_points)
        covered = (dist <= self.radio_range).sum(axis=1)
        winner = int(np.argmax(covered))
        x, y = survey.points[winner]
        return Point(float(x), float(y))
