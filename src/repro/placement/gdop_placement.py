"""GDOP-driven placement for multilateration (the Section 6 recast).

Section 6: proximity localization error *"is governed by beacon placement
and density, whereas [multilateration error] is influenced by the geometry
of the beacon nodes.  We plan to recast our existing beacon placement
algorithms for multilateration based localization approaches."*

Two pieces implement that recast:

* the Max/Grid algorithms run unchanged on an error survey produced by a
  :class:`~repro.localization.MultilaterationLocalizer` (bench E3 does
  exactly this), and
* this class adds the geometry-native algorithm: measure the *geometric
  dilution of precision* of the heard beacon set at every surveyed point and
  place the new beacon where geometry is worst — points hearing fewer than
  three beacons (no fix possible) are the worst of all.

The tie-break inside the worst class prefers the point farthest from its
nearest beacon, pushing new anchors toward genuinely bare areas.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point
from ..localization import gdop
from .base import PlacementAlgorithm

__all__ = ["GdopPlacement"]


class GdopPlacement(PlacementAlgorithm):
    """Place where the beacon geometry for multilateration is worst.

    Args:
        stride: evaluate GDOP every ``stride``-th surveyed point (GDOP is a
            per-point matrix solve; the default keeps complete lattice
            surveys affordable).
    """

    name = "gdop"
    requires_world = True

    def __init__(self, stride: int = 4):
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = int(stride)

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        if world is None:
            raise ValueError("GdopPlacement requires the trial world")
        conn = world.connectivity()
        positions = world.field.positions()
        points = world.points()

        sample = np.arange(0, points.shape[0], self.stride)
        nearest = world.field.nearest_beacon_distances(points[sample])

        best_idx = None
        best_key = (-1.0, -1.0)  # (gdop_class, nearest_beacon_distance)
        for row, p in enumerate(sample):
            heard = np.flatnonzero(conn[p])
            if heard.size >= 3:
                score = gdop(positions[heard], points[p])
                score = min(score, 1e6)  # collinear sets rank below no-fix points
            else:
                score = np.inf
            key = (score if np.isfinite(score) else 1e9, float(nearest[row]))
            if key > best_key:
                best_key = key
                best_idx = p
        if best_idx is None:  # pragma: no cover - sample is never empty
            raise ValueError("survey has no points for GDOP placement")
        x, y = points[best_idx]
        return Point(float(x), float(y))
