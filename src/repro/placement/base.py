"""Placement-algorithm interface.

Section 3 defines the adaptive beacon placement problem: *given an existing
field of beacons, how should additional beacons be placed for best
advantage?*  A placement algorithm inspects a :class:`~repro.exploration.Survey`
(measured localization errors over the terrain) and proposes the coordinates
for one additional beacon.

The paper's three algorithms (§3.2) differ in *"the amount of global
knowledge and processing used"*:

=========  =============================  ==========
Algorithm  Input used                     Complexity
=========  =============================  ==========
Random     nothing                        O(1)
Max        per-point LE                   O(P_T)
Grid       per-point LE + grid geometry   O(N_G · P_G)
=========  =============================  ==========

Extension algorithms that need more than the survey (the oracle upper bound,
locus-area placement, GDOP placement) declare ``requires_world = True`` and
receive a *world* — a duck-typed object exposing the trial's ``field``,
``realization``, ``localizer``, ``grid`` and ``points`` (see
:class:`repro.sim.TrialWorld`).  The paper's three algorithms never touch
it: they are implementable by a real robot with only its own measurements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..exploration import Survey
from ..geometry import Point

__all__ = ["PlacementAlgorithm"]


class PlacementAlgorithm(ABC):
    """Proposes where to add the next beacon, given survey measurements."""

    #: Short machine-friendly identifier used in results tables and benches.
    name: str = "abstract"

    #: Whether :meth:`propose` needs the trial world (oracle-type algorithms).
    requires_world: bool = False

    @abstractmethod
    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        """Candidate coordinates for one additional beacon.

        Args:
            survey: measured localization errors over the terrain.
            rng: randomness source (only the Random algorithm draws from it,
                but the signature is uniform so trial code treats algorithms
                interchangeably).
            world: trial world, provided only to algorithms that declare
                ``requires_world`` (None otherwise).

        Returns:
            The proposed beacon position, inside the terrain square.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
