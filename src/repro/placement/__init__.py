"""Adaptive beacon placement — the paper's core contribution plus extensions.

Paper algorithms (§3.2): :class:`RandomPlacement`, :class:`MaxPlacement`,
:class:`GridPlacement`.  Extensions (§6 future work + calibration):
:class:`OracleGreedyPlacement`, :class:`LocusAreaPlacement`,
:class:`GdopPlacement`, batch planning, and density-adaptive activation.
"""

from .activation import ActivationResult, DensityAdaptiveActivation
from .base import PlacementAlgorithm
from .batch import plan_batch_independent, plan_batch_sequential
from .coverage import CoverageHolePlacement
from .redeploy import WeightedRedeployment
from .gdop_placement import GdopPlacement
from .greedy import GreedyKPlacement
from .grid_placement import GridPlacement
from .hybrid import HybridPlacement
from .locus_area import LocusAreaPlacement
from .max_placement import MaxPlacement
from .oracle import OracleGreedyPlacement
from .random_placement import RandomPlacement

__all__ = [
    "PlacementAlgorithm",
    "RandomPlacement",
    "MaxPlacement",
    "GridPlacement",
    "GreedyKPlacement",
    "OracleGreedyPlacement",
    "LocusAreaPlacement",
    "GdopPlacement",
    "CoverageHolePlacement",
    "HybridPlacement",
    "WeightedRedeployment",
    "plan_batch_independent",
    "plan_batch_sequential",
    "DensityAdaptiveActivation",
    "ActivationResult",
]
