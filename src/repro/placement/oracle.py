"""Oracle greedy placement — an empirical upper bound (extension).

Not in the paper's algorithm set: this oracle *evaluates* every candidate
position against the true world (re-running localization with the beacon
tentatively added) and picks the best one.  No robot could do this — it
needs the counterfactual error field — but it bounds what any single-beacon
placement algorithm could achieve, which calibrates how much headroom Grid
leaves (the ablation bench E5).

The candidate set is a coarse lattice (default: the overlapping-grid centers
of the Grid algorithm, so Oracle ≥ Grid by construction on the mean-error
objective).
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point, as_point_array
from .base import PlacementAlgorithm

__all__ = ["OracleGreedyPlacement"]


class OracleGreedyPlacement(PlacementAlgorithm):
    """Exhaustively evaluate candidates against the true world.

    Args:
        candidates: ``(K, 2)`` candidate positions; None uses the trial
            world's overlapping-grid centers.
        objective: ``"mean"`` or ``"median"`` — which improvement to maximize.
    """

    name = "oracle"
    requires_world = True

    def __init__(self, candidates=None, objective: str = "mean"):
        if objective not in ("mean", "median"):
            raise ValueError(f"objective must be 'mean' or 'median', got {objective!r}")
        self.candidates = None if candidates is None else as_point_array(candidates)
        self.objective = objective

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        if world is None:
            raise ValueError("OracleGreedyPlacement requires the trial world")
        candidates = (
            world.layout.centers() if self.candidates is None else self.candidates
        )
        best_idx = 0
        best_score = -np.inf
        for k, (x, y) in enumerate(candidates):
            mean_gain, median_gain = world.evaluate_candidate(Point(float(x), float(y)))
            score = mean_gain if self.objective == "mean" else median_gain
            if score > best_score:
                best_score = score
                best_idx = k
        x, y = candidates[best_idx]
        return Point(float(x), float(y))
