"""Full redeployment: the expensive alternative adaptation is measured against.

Section 3 defines adaptation as *"adjusting beacon placement or adding a few
beacons rather than by completely re-deploying all beacons"*.  To quantify
what adaptation gives up, this module implements the complete-redeployment
strategy: pick up all N beacons and re-place them with global knowledge of
the measured error field.

The algorithm is weighted Lloyd's (k-means): beacon positions iterate to the
error-mass-weighted centroids of their Voronoi cells over the survey points,
so beacons concentrate where localization error mass is.  A small uniform
mass floor keeps beacons from abandoning well-served areas entirely.

Bench E7 compares: one adaptive Grid beacon (cost: 1 beacon + 1 survey)
versus full redeployment of the same N beacons (cost: N placements) — the
paper's economic argument in numbers.

Lloyd's converges to a *local* optimum of the weighted quantization
objective, which is only a proxy for mean LE.  With ``restarts > 1`` and a
world available, several jittered starts run and the winner is chosen by
the **actual** expected-LE map each candidate layout produces — served
through the fingerprint-keyed :class:`~repro.sim.incremental.FieldCache`,
so re-scoring a layout the search already visited is a cache hit.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..field import BeaconField

__all__ = ["WeightedRedeployment"]


class WeightedRedeployment:
    """Error-weighted k-means redeployment of an entire beacon field.

    Args:
        iterations: Lloyd iterations (each is one assignment + recenter).
        mass_floor: uniform per-point mass added to the error weights, as a
            fraction of the mean error (keeps empty cells rare and retains
            coverage in low-error areas).
        restarts: jittered Lloyd starts; with a world supplied to
            :meth:`redeploy`, the start whose final layout minimizes the
            engine-evaluated mean LE wins.  ``1`` (the default) preserves
            the original single-start behavior exactly.
    """

    def __init__(
        self, iterations: int = 25, mass_floor: float = 0.25, restarts: int = 1
    ):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if mass_floor < 0:
            raise ValueError(f"mass_floor must be non-negative, got {mass_floor}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        self.iterations = int(iterations)
        self.mass_floor = float(mass_floor)
        self.restarts = int(restarts)

    def redeploy(
        self,
        field: BeaconField,
        survey: Survey,
        rng: np.random.Generator,
        *,
        world=None,
    ) -> BeaconField:
        """Re-place every beacon of ``field`` against the survey.

        Args:
            field: the beacons to re-place.
            survey: the measured error field to follow.
            rng: jitter source (consumed once per restart).
            world: optional trial world / field state; required to score
                multiple ``restarts`` by their actual expected mean LE.

        Returns:
            A NEW field with ids ``0..N-1`` — the same radios re-placed, so
            a static noise realization keeps each beacon's per-radio noise
            factor while the location-dependent part follows the move.
        """
        if self.restarts == 1 or world is None:
            return self._lloyd(field, survey, rng)
        from ..sim.incremental import expected_le_field

        best_field = None
        best_mean = np.inf
        for _ in range(self.restarts):
            candidate = self._lloyd(field, survey, rng)
            errors = expected_le_field(
                candidate, world.realization, world.grid, world.localizer
            )
            mean = (
                np.inf if np.all(np.isnan(errors)) else float(np.nanmean(errors))
            )
            if mean < best_mean or best_field is None:
                best_mean = mean
                best_field = candidate
        return best_field

    def _lloyd(
        self,
        field: BeaconField,
        survey: Survey,
        rng: np.random.Generator,
    ) -> BeaconField:
        n = len(field)
        if n == 0:
            return field
        if survey.num_points == 0:
            raise ValueError("survey has no measured points for redeployment")
        if np.all(np.isnan(survey.errors)):
            # Without a single finite measurement the weights would collapse
            # to the uniform mass floor and "redeploy" into a blind k-means
            # of the survey lattice — an answer that looks authoritative but
            # carries no information.  Make the caller decide what a fully
            # unobserved field should mean.
            raise ValueError(
                "survey errors are all NaN: redeployment has no error mass "
                "to follow (every beacon dead or every point excluded)"
            )

        points = survey.points
        errors = np.nan_to_num(survey.errors, nan=0.0)
        mean_error = errors.mean() if errors.size else 0.0
        weights = errors + self.mass_floor * max(mean_error, 1e-9)

        # Initialize at the current deployment (warm start), jittered so
        # coincident beacons separate.
        centers = field.positions() + rng.normal(0.0, 1e-3, size=(n, 2))
        for _ in range(self.iterations):
            diff = points[:, None, :] - centers[None, :, :]
            d2 = np.einsum("pnk,pnk->pn", diff, diff)
            assignment = np.argmin(d2, axis=1)
            for b in range(n):
                mask = assignment == b
                mass = weights[mask].sum()
                if mass <= 0.0 or not mask.any():
                    # Dead cell: respawn at the currently worst point.
                    centers[b] = points[int(np.argmax(weights))]
                    continue
                centers[b] = (weights[mask][:, None] * points[mask]).sum(axis=0) / mass
        centers = np.clip(centers, 0.0, survey.terrain_side)
        return BeaconField.from_positions(centers)
