"""Locus-area placement (the Section 6 future-work algorithm).

Section 6: *"Knowledge of loci enables a new perspective on adaptive beacon
placement, such as adding new beacons to break down the loci with the
largest area into smaller loci.  To some extent, the Grid algorithm
incorporates this strategy."*

This algorithm implements that idea directly: decompose the terrain into
localization regions (points sharing a connectivity signature, including the
uncovered region), score each region, and place the new beacon at the
centroid of the worst region.  Two scoring modes:

* ``"area"`` — the paper's proposal verbatim: largest region area wins
  (coverage holes count, since the uncovered region is the coarsest locus
  of all);
* ``"error"`` — area × mean measured error, folding in the survey so the
  algorithm prefers large *and bad* regions.

Requires the world for the connectivity matrix (signatures are not part of
a plain error survey); the paper notes locus information *"is not reliable
under non ideal radio propagation"*, which bench E2 quantifies.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point, decompose_regions
from .base import PlacementAlgorithm

__all__ = ["LocusAreaPlacement"]


class LocusAreaPlacement(PlacementAlgorithm):
    """Break the largest (or worst) localization region with a new beacon.

    Args:
        score: ``"area"`` or ``"error"`` (see module docstring).
        include_uncovered: whether the zero-beacon region may win (True
            matches the intuition that coverage holes are the coarsest loci).
    """

    name = "locus"
    requires_world = True

    def __init__(self, score: str = "area", include_uncovered: bool = True):
        if score not in ("area", "error"):
            raise ValueError(f"score must be 'area' or 'error', got {score!r}")
        self.score = score
        self.include_uncovered = include_uncovered

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        if world is None:
            raise ValueError("LocusAreaPlacement requires the trial world")
        conn = world.connectivity()
        regions = decompose_regions(conn, world.grid, split_spatially=True)

        scores = regions.region_areas.astype(float).copy()
        if self.score == "error":
            errors = np.nan_to_num(survey.errors, nan=0.0)
            mean_err = np.zeros(regions.num_regions)
            np.add.at(mean_err, regions.labels, errors)
            mean_err /= np.maximum(regions.region_point_counts, 1)
            scores = scores * mean_err
        if not self.include_uncovered:
            scores[regions.region_beacon_counts == 0] = -np.inf

        winner = int(np.argmax(scores))
        x, y = regions.region_centroids[winner]
        return Point(float(x), float(y))
