"""Batch placement: adding several beacons at once (Section 6).

The paper evaluates adding *one* beacon and plans to study *"the gains
obtained when several beacons are added at once"*.  Two strategies bracket
the design space:

* :func:`plan_batch_independent` — run the base algorithm ``k`` times on the
  *same* survey.  Plain repetition would pick the same point ``k`` times for
  deterministic algorithms, so after each pick the measurements within a
  *suppression radius* (default R) are zeroed — a stand-in for the
  improvement the new beacon will cause there.  This is what a robot can do
  without revisiting the terrain.
* :func:`plan_batch_sequential` — place, *re-survey*, place again: the
  greedy strategy with fresh measurements each round.  It needs either a
  robot willing to re-traverse the terrain or a simulation world; the
  caller provides the re-survey function.

Bench E1 compares the two against ``k`` single-beacon gains.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exploration import Survey
from ..geometry import Point, distances_to_point
from ..obs import get_metrics, get_tracer
from .base import PlacementAlgorithm

__all__ = ["plan_batch_independent", "plan_batch_sequential"]


def plan_batch_independent(
    algorithm: PlacementAlgorithm,
    survey: Survey,
    rng: np.random.Generator,
    k: int,
    *,
    suppression_radius: float,
    world=None,
) -> list[Point]:
    """Pick ``k`` positions from one survey with error suppression.

    Args:
        algorithm: the base placement algorithm.
        survey: the (single) survey to plan from.
        rng: randomness for stochastic algorithms.
        k: number of beacons to place.
        suppression_radius: after each pick, measured errors within this
            radius of the pick are zeroed (a beacon at the pick should fix
            its own neighbourhood; R is the natural choice).
        world: forwarded to world-requiring algorithms.

    Returns:
        ``k`` proposed positions, in pick order.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if suppression_radius < 0:
        raise ValueError(f"suppression_radius must be non-negative, got {suppression_radius}")

    current = survey
    picks: list[Point] = []
    for _ in range(k):
        with get_tracer().span("placement.batch.pick", algorithm=algorithm.name):
            pick = algorithm.propose(current, rng, world)
        get_metrics().counter("placement.batch.picks").inc()
        picks.append(pick)
        near = distances_to_point(current.points, pick) <= suppression_radius
        damped = np.where(near, 0.0, current.errors)
        current = Survey(
            points=current.points,
            errors=damped,
            terrain_side=current.terrain_side,
            grid=current.grid,
        )
    return picks


def plan_batch_sequential(
    algorithm: PlacementAlgorithm,
    survey: Survey,
    rng: np.random.Generator,
    k: int,
    resurvey: Callable[[Point], Survey],
    *,
    world=None,
) -> list[Point]:
    """Greedy place-and-remeasure: ``k`` rounds of propose → deploy → survey.

    Args:
        algorithm: the base placement algorithm.
        survey: the initial survey.
        rng: randomness for stochastic algorithms.
        k: number of beacons to place.
        resurvey: callback invoked with every accepted pick (including the
            last); it must deploy the beacon in the underlying world and
            return the fresh survey (and, if the world object is shared,
            refresh it for world-requiring algorithms).
        world: forwarded to world-requiring algorithms.

    Returns:
        ``k`` proposed positions, in deployment order.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    current = survey
    picks: list[Point] = []
    for _ in range(k):
        with get_tracer().span("placement.batch.pick", algorithm=algorithm.name):
            pick = algorithm.propose(current, rng, world)
        get_metrics().counter("placement.batch.picks").inc()
        picks.append(pick)
        current = resurvey(pick)
    return picks
