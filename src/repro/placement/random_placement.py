"""The Random placement algorithm (Section 3.2.1).

    Step 1  Select a random point (Xr, Yr) in the terrain.
    Step 2  Add a new beacon at (Xr, Yr).

It *"pays no attention to the quality of localization"* and exists (a) as
the sanity-check baseline for Max and Grid and (b) because it matches the
character of an uncontrolled airdrop of additional nodes.  Complexity O(1).
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point
from .base import PlacementAlgorithm

__all__ = ["RandomPlacement"]


class RandomPlacement(PlacementAlgorithm):
    """Uniform-random candidate point; ignores all measurements."""

    name = "random"

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        x, y = rng.uniform(0.0, survey.terrain_side, size=2)
        return Point(float(x), float(y))
