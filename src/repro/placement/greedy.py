"""Greedy-k placement over the full lattice — the first optimization baseline.

Related work frames beacon placement as an optimization problem (Schaff et
al., "Jointly Optimizing Placement and Inference for Beacon-based
Localization"; Sequeira et al., "Towards Optimal Beacon Placement for
Range-Aided Localization" — see PAPERS.md): thousands of objective
evaluations per placement, a regime the paper's 2001-era algorithms never
enter because a full localization rebuild per candidate is unaffordable.

:class:`GreedyKPlacement` is that baseline, made affordable by the
incremental delta-engine (:mod:`repro.sim.incremental`): each round scans
*every* lattice point (or a configured candidate set) for the position that
minimizes the resulting mean LE — one base field plus K cheap deltas
instead of K rebuilds — commits the argmin as an :class:`AddBeacon` delta,
and repeats.  Bench E16 compares it against Random/Max/Grid at an equal
measurement budget.

Unlike the oracle (which maximizes *improvement* over a coarse candidate
lattice), greedy-k minimizes the absolute post-placement mean and defaults
to the full measurement lattice — the exhaustive single-step optimum.
Ties break to the first candidate in scan order (row-major over the
lattice), so plans are deterministic.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import Point, as_point_array
from .base import PlacementAlgorithm

__all__ = ["GreedyKPlacement"]


class GreedyKPlacement(PlacementAlgorithm):
    """Greedy sequential placement minimizing mean LE over a candidate set.

    Args:
        k: beacons to place per :meth:`plan` call (``propose`` returns the
            first pick regardless).
        candidates: ``(K, 2)`` candidate positions; None scans the survey's
            full point set (the measurement lattice for complete surveys).
        subsample: optional stride over the candidate set (``2`` keeps every
            second candidate) — a cheap knob for benches on large lattices.
    """

    name = "greedy-k"
    requires_world = True

    def __init__(self, k: int = 1, candidates=None, subsample: int = 1):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if subsample < 1:
            raise ValueError(f"subsample must be >= 1, got {subsample}")
        self.k = int(k)
        self.candidates = None if candidates is None else as_point_array(candidates)
        self.subsample = int(subsample)

    def _candidate_set(self, survey: Survey) -> np.ndarray:
        candidates = survey.points if self.candidates is None else self.candidates
        if self.subsample > 1:
            candidates = candidates[:: self.subsample]
        if candidates.shape[0] == 0:
            raise ValueError("greedy-k has no candidate positions to scan")
        return candidates

    def plan(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world,
        k: int | None = None,
    ) -> list[Point]:
        """Greedily place ``k`` beacons, committing each pick as a delta.

        Returns the picks in deployment order.  The caller's ``world`` is
        not mutated; the engine forks its own state from it.
        """
        from ..sim.incremental import FieldState

        if world is None:
            raise ValueError("GreedyKPlacement requires the trial world")
        rounds = self.k if k is None else int(k)
        if rounds < 1:
            raise ValueError(f"k must be >= 1, got {rounds}")
        candidates = self._candidate_set(survey)
        state = (
            world if isinstance(world, FieldState) else FieldState.from_world(world)
        )
        picks: list[Point] = []
        for _ in range(rounds):
            means = state.scan_add_candidates(candidates)
            if np.all(np.isnan(means)):
                raise ValueError("every candidate leaves the field unmeasurable")
            best = int(np.nanargmin(means))
            pick = Point(float(candidates[best, 0]), float(candidates[best, 1]))
            picks.append(pick)
            state = state.with_beacon(pick)
        return picks

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        return self.plan(survey, rng, world, k=1)[0]
