"""The Grid placement algorithm (Section 3.2.3).

    Steps 1–2  As Max: measure localization error on the lattice.
    Step 3     Divide the terrain into N_G partially overlapping grids of
               side gridSide = 2R (centers as per the paper's formula).
    Step 4     For each grid G(i, j), compute the cumulative localization
               error S(i, j) over the measured points inside it.
    Step 5     Add the new beacon at the center of the grid with maximum
               cumulative error.

The grid side of 2R means each grid *"encloses the radio reachability region
of its center"*: a beacon at the winning center reaches (roughly) every point
whose error contributed to its score, which is why Grid *"can improve many
points at once"* and wins at low densities.  The price is O(N_G·P_G) work.

Ties break to the lowest grid index (row-major over centers).

For complete lattice surveys the cumulative errors are a cached-mask matvec
(see :class:`~repro.geometry.OverlappingGridLayout`); for partial surveys
membership is computed directly from the surveyed points, so the same
algorithm runs on lawnmower or random-walk explorations.
"""

from __future__ import annotations

import numpy as np

from ..exploration import Survey
from ..geometry import OverlappingGridLayout, Point
from .base import PlacementAlgorithm

__all__ = ["GridPlacement"]


class GridPlacement(PlacementAlgorithm):
    """Place at the center of the overlapping grid with max cumulative error.

    Args:
        layout: the overlapping-grid decomposition (the paper uses
            ``N_G = 400`` grids of side 2R on the 100 m terrain).
        refine_k: when set, the top-k grid centers by cumulative error are
            rescored through the incremental delta-engine
            (:mod:`repro.sim.incremental`) by the mean LE a beacon there
            would actually produce, and the best center wins; None keeps
            the paper's survey-only argmax.
    """

    name = "grid"

    def __init__(self, layout: OverlappingGridLayout, refine_k: int | None = None):
        if refine_k is not None and refine_k < 1:
            raise ValueError(f"refine_k must be >= 1, got {refine_k}")
        self.layout = layout
        self.refine_k = refine_k
        if refine_k is not None:
            self.requires_world = True

    @classmethod
    def paper_configuration(
        cls, side: float, radio_range: float, num_grids: int = 400
    ) -> "GridPlacement":
        """The §4 configuration: ``gridSide = 2R``, ``N_G = 400``."""
        return cls(OverlappingGridLayout.for_radio_range(side, radio_range, num_grids))

    def cumulative_errors(
        self, survey: Survey, errors: np.ndarray | None = None
    ) -> np.ndarray:
        """``S(i, j)`` for every grid, as an ``(N_G,)`` array.

        NaN error measurements (excluded points) contribute zero.

        Args:
            survey: the measured points (supplies geometry and, by default,
                the error values).
            errors: optional ``(P,)`` replacement for ``survey.errors`` over
                the same points — survivability-weighted variants
                (:mod:`repro.selfheal.placement`) rescore points while
                reusing the grid accumulation unchanged.
        """
        errors = survey.errors if errors is None else np.asarray(errors, dtype=float)
        if errors.shape != (survey.num_points,):
            raise ValueError(
                f"errors shape {errors.shape} does not match "
                f"{survey.num_points} survey points"
            )
        errors = np.nan_to_num(errors, nan=0.0)
        if survey.is_complete and abs(survey.grid.side - self.layout.side) < 1e-9:
            return self.layout.cumulative_values(survey.grid, errors)
        # Partial survey: direct membership test against surveyed points.
        centers = self.layout.centers()
        half = self.layout.grid_side / 2.0 + 1e-9
        dx = np.abs(survey.points[:, 0][None, :] - centers[:, 0][:, None])
        dy = np.abs(survey.points[:, 1][None, :] - centers[:, 1][:, None])
        masks = (dx <= half) & (dy <= half)
        return masks @ errors

    def top_candidates(
        self, survey: Survey, k: int, errors: np.ndarray | None = None
    ) -> np.ndarray:
        """The ``k`` grid centers with highest cumulative error, best first.

        Args:
            survey: the measured points.
            k: how many centers to return.
            errors: optional per-point rescoring (see
                :meth:`cumulative_errors`).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        scores = self.cumulative_errors(survey, errors)
        order = np.argsort(-scores, kind="stable")
        return self.layout.centers()[order[:k]]

    def propose(
        self,
        survey: Survey,
        rng: np.random.Generator,
        world=None,
    ) -> Point:
        if survey.num_points == 0:
            raise ValueError("survey has no measured points for Grid placement")
        if self.refine_k is not None and world is not None:
            from ..sim.incremental import scan_candidates

            candidates = self.top_candidates(survey, self.refine_k)
            means = scan_candidates(world, candidates)
            best = int(np.nanargmin(means))
            return Point(float(candidates[best, 0]), float(candidates[best, 1]))
        scores = self.cumulative_errors(survey)
        winner = int(np.argmax(scores))
        x, y = self.layout.centers()[winner]
        return Point(float(x), float(y))
