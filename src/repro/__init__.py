"""repro — a full reproduction of "Adaptive Beacon Placement"
(Bulusu, Heidemann, Estrin; ICDCS 2001).

Adaptive placement of localization beacons for connectivity-based RF
localization in wireless sensor networks: the paper's three placement
algorithms (Random, Max, Grid), the complete simulation methodology of its
evaluation, and every substrate they depend on (propagation models, terrain,
the periodic-beacon protocol, exploration agents, statistics).

Quickstart::

    import numpy as np
    from repro import (
        BeaconNoiseModel, CentroidLocalizer, GridPlacement,
        MeasurementGrid, OverlappingGridLayout, TrialWorld,
        random_uniform_field,
    )

    rng = np.random.default_rng(7)
    grid = MeasurementGrid(side=100.0, step=1.0)
    world = TrialWorld(
        field=random_uniform_field(40, 100.0, rng),
        realization=BeaconNoiseModel(radio_range=15.0, noise=0.3).realize(rng),
        grid=grid,
        layout=OverlappingGridLayout.for_radio_range(100.0, 15.0, 400),
        localizer=CentroidLocalizer(terrain_side=100.0),
    )
    survey = world.survey()
    pick = GridPlacement.paper_configuration(100.0, 15.0).propose(survey, rng)
    gain_mean, gain_median = world.evaluate_candidate(pick)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .exploration import (
    ActiveSurveyPlanner,
    GpsErrorModel,
    Survey,
    SurveyAgent,
    boustrophedon_sweep,
    lawnmower_path,
    path_length,
    plan_tour,
    random_walk_path,
    spiral_path,
)
from .faults import (
    BatteryFault,
    CompositeFault,
    CrashFault,
    DegradedField,
    DriftFault,
    FaultModel,
    FaultRealization,
    IntermittentFault,
    NoFaults,
    apply_faults,
    fault_timeline,
)
from .field import (
    Beacon,
    BeaconField,
    beacon_graph,
    deployment_health,
    airdrop_field,
    beacons_per_coverage_area,
    clustered_field,
    count_from_density,
    density_from_count,
    density_from_coverage,
    paper_density_sweep,
    perturbed_grid_field,
    random_uniform_field,
    regular_grid_field,
)
from .geometry import (
    MeasurementGrid,
    OverlappingGridLayout,
    Point,
    RegionDecomposition,
    decompose_regions,
)
from .localization import (
    AlphaBetaTracker,
    CentroidLocalizer,
    FingerprintLocalizer,
    GridBayesLocalizer,
    TrackingResult,
    track_path,
    CentroidState,
    ErrorSummary,
    ErrorSurface,
    Localizer,
    LocusLocalizer,
    MultilaterationLocalizer,
    UnlocalizedPolicy,
    WeightedCentroidLocalizer,
    gdop,
    localization_errors,
    max_error_for_overlap_ratio,
    overlap_ratio_sweep,
)
from .placement import (
    ActivationResult,
    CoverageHolePlacement,
    HybridPlacement,
    DensityAdaptiveActivation,
    GdopPlacement,
    GridPlacement,
    LocusAreaPlacement,
    MaxPlacement,
    OracleGreedyPlacement,
    PlacementAlgorithm,
    RandomPlacement,
    WeightedRedeployment,
    plan_batch_independent,
    plan_batch_sequential,
)
from .radio import (
    BeaconNoiseModel,
    IdealDiskModel,
    LogNormalShadowingModel,
    PropagationModel,
    PropagationRealization,
    TerrainAwareModel,
    TimeVaryingModel,
    coverage_fraction,
    mean_degree,
)
from .selfheal import (
    ControllerConfig,
    FaultAwareGrid,
    FaultAwareMax,
    SelfHealResult,
    expected_alive_fraction,
    selfheal_timeline,
    survival_probability,
)
from .sim import (
    Curve,
    CurveSet,
    ExperimentConfig,
    RetryPolicy,
    SweepJournal,
    TrialOutcome,
    TrialWorld,
    bench_config,
    build_world,
    derive_rng,
    mean_error_curve,
    paper_config,
    placement_improvement_curves,
    read_curve_set,
    resilient_mean_error_curve,
    resilient_placement_improvement_curves,
    run_placement_trial,
    write_curve_set,
)
from .stats import (
    MeanCI,
    SpatialSummary,
    distribution_improvement,
    error_cdf,
    quantile_profile,
    SolutionSpaceAnalysis,
    analyze_solution_space,
    bootstrap_ci,
    mean_ci,
    median_ci,
)
from .terrain import (
    Heightmap,
    flat_terrain,
    fractal_terrain,
    hill_terrain,
    ridge_terrain,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geometry
    "Point",
    "MeasurementGrid",
    "OverlappingGridLayout",
    "RegionDecomposition",
    "decompose_regions",
    # field
    "Beacon",
    "BeaconField",
    "random_uniform_field",
    "regular_grid_field",
    "perturbed_grid_field",
    "airdrop_field",
    "clustered_field",
    "density_from_count",
    "count_from_density",
    "density_from_coverage",
    "beacons_per_coverage_area",
    "paper_density_sweep",
    "beacon_graph",
    "deployment_health",
    # radio
    "PropagationModel",
    "PropagationRealization",
    "IdealDiskModel",
    "BeaconNoiseModel",
    "LogNormalShadowingModel",
    "TerrainAwareModel",
    "TimeVaryingModel",
    "coverage_fraction",
    "mean_degree",
    # terrain
    "Heightmap",
    "flat_terrain",
    "hill_terrain",
    "fractal_terrain",
    "ridge_terrain",
    # localization
    "Localizer",
    "UnlocalizedPolicy",
    "CentroidLocalizer",
    "CentroidState",
    "LocusLocalizer",
    "WeightedCentroidLocalizer",
    "MultilaterationLocalizer",
    "GridBayesLocalizer",
    "FingerprintLocalizer",
    "AlphaBetaTracker",
    "TrackingResult",
    "track_path",
    "gdop",
    "localization_errors",
    "ErrorSurface",
    "ErrorSummary",
    "max_error_for_overlap_ratio",
    "overlap_ratio_sweep",
    # placement
    "PlacementAlgorithm",
    "RandomPlacement",
    "MaxPlacement",
    "GridPlacement",
    "OracleGreedyPlacement",
    "LocusAreaPlacement",
    "GdopPlacement",
    "CoverageHolePlacement",
    "HybridPlacement",
    "WeightedRedeployment",
    "plan_batch_independent",
    "plan_batch_sequential",
    "DensityAdaptiveActivation",
    "ActivationResult",
    # exploration
    "Survey",
    "SurveyAgent",
    "GpsErrorModel",
    "ActiveSurveyPlanner",
    "boustrophedon_sweep",
    "lawnmower_path",
    "spiral_path",
    "random_walk_path",
    "path_length",
    "plan_tour",
    # faults
    "FaultModel",
    "FaultRealization",
    "NoFaults",
    "CrashFault",
    "IntermittentFault",
    "BatteryFault",
    "DriftFault",
    "CompositeFault",
    "DegradedField",
    "apply_faults",
    "fault_timeline",
    # selfheal
    "ControllerConfig",
    "FaultAwareMax",
    "FaultAwareGrid",
    "SelfHealResult",
    "selfheal_timeline",
    "survival_probability",
    "expected_alive_fraction",
    # sim
    "ExperimentConfig",
    "paper_config",
    "bench_config",
    "derive_rng",
    "TrialWorld",
    "TrialOutcome",
    "run_placement_trial",
    "build_world",
    "mean_error_curve",
    "placement_improvement_curves",
    "RetryPolicy",
    "SweepJournal",
    "resilient_mean_error_curve",
    "resilient_placement_improvement_curves",
    "Curve",
    "CurveSet",
    "write_curve_set",
    "read_curve_set",
    # stats
    "MeanCI",
    "mean_ci",
    "median_ci",
    "bootstrap_ci",
    "SolutionSpaceAnalysis",
    "analyze_solution_space",
    "SpatialSummary",
    "error_cdf",
    "quantile_profile",
    "distribution_improvement",
]
