"""Beacon fault models: deterministic, seed-derived failure schedules.

The paper's premise is that real deployments degrade — beacons die, links
flap, batteries drain, nodes get nudged — and that placement must adapt.
These models make that degradation *simulable* with the same reproducibility
contract as the propagation noise (:mod:`repro.radio`): a
:class:`FaultModel` describes failure statistics; :meth:`FaultModel.realize`
draws one immutable :class:`FaultRealization` whose every per-beacon random
quantity is a hash of ``(realization seed, beacon id, tag)``.  Consequences:

* whether beacon B is up at time t never depends on query order or on which
  other beacons exist (faults are a *field over beacon identities*),
* adding a beacon later leaves every existing beacon's fault schedule
  untouched, and
* the same seed reproduces the same outage pattern in both the numeric §4
  pipeline (:func:`repro.sim.build_world`) and the discrete-event protocol
  simulation (:mod:`repro.protocol`).

Four models cover the regimes the robustness literature evaluates:
:class:`CrashFault` (memoryless permanent death), :class:`IntermittentFault`
(Gilbert–Elliott-style on/off flapping, the per-beacon analogue of
:class:`repro.protocol.GilbertElliottLoss`), :class:`BatteryFault`
(near-deterministic depletion deadlines) and :class:`DriftFault` (bounded
position drift).  :class:`CompositeFault` stacks them.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..radio.hashrand import hash_uniform

__all__ = [
    "FaultModel",
    "FaultRealization",
    "NoFaults",
    "CrashFault",
    "IntermittentFault",
    "BatteryFault",
    "DriftFault",
    "CompositeFault",
    "fault_model_from_spec",
]

# Domain-separation tags (arbitrary, fixed forever).
_CRASH_TAG = np.uint64(0xFA01)
_BATTERY_TAG = np.uint64(0xFA02)
_FLAP_STATE_TAG = np.uint64(0xFA03)
_FLAP_SOJOURN_TAG = np.uint64(0xFA04)
_DRIFT_ANGLE_TAG = np.uint64(0xFA05)


def _as_id_array(beacon_ids) -> np.ndarray:
    ids = np.asarray(beacon_ids, dtype=np.uint64)
    if ids.ndim != 1:
        raise ValueError(f"beacon_ids must be 1-D, got shape {ids.shape}")
    return ids


def _check_time(time: float) -> float:
    t = float(time)
    if t < 0.0:
        raise ValueError(f"time must be non-negative, got {t}")
    return t


class FaultRealization(ABC):
    """One drawn outage pattern: up/down state and drift per (beacon, time).

    Subclasses implement :meth:`up_mask`; :meth:`position_offsets` defaults
    to no drift.  All methods are pure functions of ``(beacon id, time)``.
    """

    @abstractmethod
    def up_mask(self, beacon_ids, time: float) -> np.ndarray:
        """Boolean ``(N,)`` array: which of the beacons are up at ``time``.

        Args:
            beacon_ids: ``(N,)`` stable beacon identifiers.
            time: seconds since deployment (``t = 0`` is pristine).
        """

    def position_offsets(self, beacon_ids, time: float) -> np.ndarray:
        """Per-beacon position displacement ``(N, 2)`` at ``time`` (meters)."""
        ids = _as_id_array(beacon_ids)
        _check_time(time)
        return np.zeros((ids.size, 2))

    def is_up(self, beacon_id: int, time: float) -> bool:
        """Scalar convenience for event-driven consumers (protocol sim)."""
        return bool(self.up_mask(np.asarray([beacon_id], dtype=np.uint64), time)[0])


class FaultModel(ABC):
    """A family of fault worlds, parameterized and seedable."""

    @abstractmethod
    def realize(self, rng: np.random.Generator) -> FaultRealization:
        """Draw one static fault realization.

        Args:
            rng: source of the realization's identity; the realization
                captures a seed, not the generator.
        """

    @abstractmethod
    def spec(self) -> dict:
        """JSON-canonical identity of this model: kind tag plus parameters.

        Two models with equal specs draw identical realizations from equal
        seeds, on any host and in any process — specs are what sweep
        fingerprints hash and what distributed executors ship over the wire
        (:func:`fault_model_from_spec` is the inverse).
        """

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in self.spec().items() if k != "kind"
        )
        return f"{type(self).__name__}({params})"


def _draw_seed(rng: np.random.Generator) -> np.uint64:
    return np.uint64(int(rng.integers(0, 2**63, dtype=np.int64)))


class NoFaults(FaultModel, FaultRealization):
    """The reliable baseline: every beacon is up forever, nothing drifts."""

    def realize(self, rng: np.random.Generator) -> "NoFaults":
        return self

    def spec(self) -> dict:
        return {"kind": "none"}

    def up_mask(self, beacon_ids, time: float) -> np.ndarray:
        ids = _as_id_array(beacon_ids)
        _check_time(time)
        return np.ones(ids.size, dtype=bool)


class _LifetimeRealization(FaultRealization):
    """Permanent death at a per-beacon lifetime (shared by crash/battery)."""

    def __init__(self, seed: np.uint64, lifetimes_fn):
        self._seed = seed
        self._lifetimes_fn = lifetimes_fn

    def lifetimes(self, beacon_ids) -> np.ndarray:
        """Per-beacon death times (seconds), deterministic per id."""
        return self._lifetimes_fn(self._seed, _as_id_array(beacon_ids))

    def up_mask(self, beacon_ids, time: float) -> np.ndarray:
        t = _check_time(time)
        return t < self.lifetimes(beacon_ids)


class CrashFault(FaultModel):
    """Memoryless permanent crashes: lifetimes are i.i.d. exponential.

    At time ``t`` the expected surviving fraction is ``exp(-t / mean_lifetime)``
    — sweep ``t`` to sweep degradation severity.

    Args:
        mean_lifetime: mean time to permanent failure (seconds).
    """

    def __init__(self, mean_lifetime: float):
        if mean_lifetime <= 0:
            raise ValueError(f"mean_lifetime must be positive, got {mean_lifetime}")
        self.mean_lifetime = float(mean_lifetime)

    def spec(self) -> dict:
        return {"kind": "crash", "mean_lifetime": self.mean_lifetime}

    def realize(self, rng: np.random.Generator) -> FaultRealization:
        mean = self.mean_lifetime

        def lifetimes(seed, ids):
            u = hash_uniform(seed, ids, _CRASH_TAG)
            return -mean * np.log1p(-u)

        return _LifetimeRealization(_draw_seed(rng), lifetimes)


class BatteryFault(FaultModel):
    """Battery depletion: near-deterministic per-beacon deadlines.

    Unlike :class:`CrashFault`, depletion is concentrated — every beacon dies
    within ``mean_lifetime · (1 ± spread)`` — which models a fleet deployed
    with the same battery chemistry.

    Args:
        mean_lifetime: mean time to depletion (seconds).
        spread: half-width of the uniform lifetime band, as a fraction of the
            mean (0 = all beacons die at the exact same instant).
    """

    def __init__(self, mean_lifetime: float, spread: float = 0.1):
        if mean_lifetime <= 0:
            raise ValueError(f"mean_lifetime must be positive, got {mean_lifetime}")
        if not 0.0 <= spread < 1.0:
            raise ValueError(f"spread must be in [0, 1), got {spread}")
        self.mean_lifetime = float(mean_lifetime)
        self.spread = float(spread)

    def spec(self) -> dict:
        return {
            "kind": "battery",
            "mean_lifetime": self.mean_lifetime,
            "spread": self.spread,
        }

    def realize(self, rng: np.random.Generator) -> FaultRealization:
        mean, spread = self.mean_lifetime, self.spread

        def lifetimes(seed, ids):
            u = 2.0 * hash_uniform(seed, ids, _BATTERY_TAG) - 1.0
            return mean * (1.0 + spread * u)

        return _LifetimeRealization(_draw_seed(rng), lifetimes)


class IntermittentFault(FaultModel):
    """Gilbert–Elliott-style per-beacon flapping (alternating up/down).

    Each beacon runs an independent two-state continuous-time Markov chain
    with exponential sojourns — the beacon-level analogue of the per-link
    :class:`repro.protocol.GilbertElliottLoss` burst process.  The chain is
    replayed deterministically from hashed sojourn draws, so the state at any
    query time is a pure function of ``(seed, beacon id, time)``.

    ``mean_down_time = inf`` gives the permanent-crash limiting case: the
    first down-transition is final (a :class:`CrashFault` with exponential
    lifetime ``mean_up_time``).

    Args:
        mean_up_time: mean sojourn in the up state (seconds).
        mean_down_time: mean sojourn in the down state (seconds; ``inf``
            makes the first outage permanent).
        start_up: initial state; ``None`` draws it from the chain's steady
            state (up with probability ``up/(up+down)``; with an infinite
            ``mean_down_time`` beacons start alive).
    """

    _MAX_TRANSITIONS = 100_000

    def __init__(
        self,
        mean_up_time: float,
        mean_down_time: float,
        start_up: bool | None = True,
    ):
        if mean_up_time <= 0:
            raise ValueError(f"mean_up_time must be positive, got {mean_up_time}")
        if mean_down_time <= 0:
            raise ValueError(f"mean_down_time must be positive, got {mean_down_time}")
        self.mean_up_time = float(mean_up_time)
        self.mean_down_time = float(mean_down_time)
        self.start_up = start_up

    def spec(self) -> dict:
        return {
            "kind": "intermittent",
            "mean_up_time": self.mean_up_time,
            "mean_down_time": self.mean_down_time,
            "start_up": self.start_up,
        }

    @property
    def steady_state_up(self) -> float:
        """Long-run fraction of time a beacon spends up."""
        if math.isinf(self.mean_down_time):
            return 0.0
        return self.mean_up_time / (self.mean_up_time + self.mean_down_time)

    def realize(self, rng: np.random.Generator) -> "IntermittentRealization":
        return IntermittentRealization(
            _draw_seed(rng), self.mean_up_time, self.mean_down_time, self.start_up
        )


class IntermittentRealization(FaultRealization):
    """Deterministic replay of per-beacon on/off renewal chains."""

    def __init__(
        self,
        seed: np.uint64,
        mean_up_time: float,
        mean_down_time: float,
        start_up: bool | None,
    ):
        self._seed = seed
        self._up = mean_up_time
        self._down = mean_down_time
        self._start_up = start_up

    def _initial_state(self, beacon_id: np.uint64) -> bool:
        if self._start_up is not None:
            return bool(self._start_up)
        if math.isinf(self._down):
            return True  # steady state is degenerate; start alive
        p_up = self._up / (self._up + self._down)
        return bool(hash_uniform(self._seed, beacon_id, _FLAP_STATE_TAG) < p_up)

    def _state_at(self, beacon_id: np.uint64, time: float) -> bool:
        up = self._initial_state(beacon_id)
        elapsed = 0.0
        for k in range(IntermittentFault._MAX_TRANSITIONS):
            mean = self._up if up else self._down
            if math.isinf(mean):
                return up
            u = float(hash_uniform(self._seed, beacon_id, np.uint64(k), _FLAP_SOJOURN_TAG))
            elapsed += -mean * math.log1p(-u)
            if elapsed > time:
                return up
            up = not up
        raise RuntimeError(
            f"intermittent fault chain for beacon {int(beacon_id)} exceeded "
            f"{IntermittentFault._MAX_TRANSITIONS} transitions by t={time}"
        )

    def up_mask(self, beacon_ids, time: float) -> np.ndarray:
        ids = _as_id_array(beacon_ids)
        t = _check_time(time)
        return np.fromiter(
            (self._state_at(b, t) for b in ids), dtype=bool, count=ids.size
        )


class DriftFault(FaultModel):
    """Bounded position drift: beacons creep from their surveyed positions.

    Each beacon drifts along a fixed per-beacon direction with random-walk
    scaling ``rate · sqrt(t)``, saturating at ``max_drift`` — terrain
    settling or repeated knocks, not teleportation.  Drift moves the beacon's
    *true* position; since the static propagation noise is a field over
    locations, a drifted beacon also samples new link noise, exactly as a
    physically moved radio would.

    Args:
        rate: drift scale in meters per sqrt-second.
        max_drift: hard cap on total displacement (meters).
    """

    def __init__(self, rate: float, max_drift: float):
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if max_drift < 0:
            raise ValueError(f"max_drift must be non-negative, got {max_drift}")
        self.rate = float(rate)
        self.max_drift = float(max_drift)

    def spec(self) -> dict:
        return {"kind": "drift", "rate": self.rate, "max_drift": self.max_drift}

    def realize(self, rng: np.random.Generator) -> "DriftRealization":
        return DriftRealization(_draw_seed(rng), self.rate, self.max_drift)


class DriftRealization(FaultRealization):
    """Deterministic per-beacon drift; never kills anything."""

    def __init__(self, seed: np.uint64, rate: float, max_drift: float):
        self._seed = seed
        self._rate = rate
        self._max = max_drift

    def up_mask(self, beacon_ids, time: float) -> np.ndarray:
        ids = _as_id_array(beacon_ids)
        _check_time(time)
        return np.ones(ids.size, dtype=bool)

    def position_offsets(self, beacon_ids, time: float) -> np.ndarray:
        ids = _as_id_array(beacon_ids)
        t = _check_time(time)
        theta = 2.0 * np.pi * hash_uniform(self._seed, ids, _DRIFT_ANGLE_TAG)
        magnitude = min(self._rate * math.sqrt(t), self._max)
        return magnitude * np.stack([np.cos(theta), np.sin(theta)], axis=1)


class CompositeFault(FaultModel):
    """Several fault processes acting at once (e.g. crashes + drift).

    A beacon is up iff every component says it is up; drifts add.

    Args:
        models: the component fault models (independent realizations).
    """

    def __init__(self, models: Sequence[FaultModel]):
        if not models:
            raise ValueError("CompositeFault requires at least one model")
        self.models = tuple(models)

    def spec(self) -> dict:
        return {"kind": "composite", "models": [m.spec() for m in self.models]}

    def realize(self, rng: np.random.Generator) -> "CompositeRealization":
        return CompositeRealization([m.realize(rng) for m in self.models])


class CompositeRealization(FaultRealization):
    """Conjunction of component realizations."""

    def __init__(self, parts: Sequence[FaultRealization]):
        self._parts = tuple(parts)

    def up_mask(self, beacon_ids, time: float) -> np.ndarray:
        ids = _as_id_array(beacon_ids)
        mask = np.ones(ids.size, dtype=bool)
        for part in self._parts:
            mask &= part.up_mask(ids, time)
        return mask

    def position_offsets(self, beacon_ids, time: float) -> np.ndarray:
        ids = _as_id_array(beacon_ids)
        total = np.zeros((ids.size, 2))
        for part in self._parts:
            total += part.position_offsets(ids, time)
        return total


def fault_model_from_spec(spec: dict) -> FaultModel:
    """Rebuild a fault model from its :meth:`FaultModel.spec` dict.

    This is the wire-format inverse: a sweep cell carries only the spec
    (plain JSON), and any worker — local or remote — reconstructs an
    equivalent model with it.

    Raises:
        ValueError: on an unknown or malformed spec.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"fault-model spec must be a dict, got {type(spec).__name__}")
    kind = spec.get("kind")
    try:
        if kind == "none":
            return NoFaults()
        if kind == "crash":
            return CrashFault(spec["mean_lifetime"])
        if kind == "battery":
            return BatteryFault(spec["mean_lifetime"], spread=spec["spread"])
        if kind == "intermittent":
            return IntermittentFault(
                spec["mean_up_time"], spec["mean_down_time"], spec["start_up"]
            )
        if kind == "drift":
            return DriftFault(spec["rate"], spec["max_drift"])
        if kind == "composite":
            return CompositeFault([fault_model_from_spec(s) for s in spec["models"]])
    except KeyError as exc:
        raise ValueError(f"fault-model spec {spec!r} is missing {exc}") from None
    raise ValueError(f"unknown fault-model kind {kind!r} in spec {spec!r}")
