"""Applying fault realizations to beacon fields.

:func:`apply_faults` is the single bridge between the fault models and the
numeric §4 pipeline: it snapshots a :class:`~repro.field.BeaconField` at a
point in time, dropping beacons that are down and displacing drifted ones.
Surviving beacons **keep their identifiers** (and the field keeps its
``next_beacon_id``), so the static propagation realization — keyed on beacon
ids and locations — stays consistent with the pristine world: links of
surviving, undrifted beacons are bit-identical, and a candidate beacon
evaluated on the degraded field receives the same identity (hence the same
noise) it would have in the healthy one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..field import Beacon, BeaconField
from ..geometry import Point
from ..obs import get_metrics
from .models import FaultRealization

__all__ = ["DegradedField", "apply_faults", "fault_timeline"]


@dataclass(frozen=True)
class DegradedField:
    """One time-snapshot of a beacon field under faults.

    Attributes:
        field: the surviving beacons at their (possibly drifted) positions;
            ids and ``next_beacon_id`` carry over from the source field.
        alive: boolean mask over the *source* field order.
        source_size: beacon count of the pristine field.
        time: the snapshot time (seconds since deployment).
    """

    field: BeaconField
    alive: np.ndarray
    source_size: int
    time: float

    @property
    def num_alive(self) -> int:
        """Surviving beacon count."""
        return int(self.alive.sum())

    @property
    def num_failed(self) -> int:
        """Beacons down at the snapshot time."""
        return self.source_size - self.num_alive

    @property
    def alive_fraction(self) -> float:
        """Surviving fraction (1.0 for an empty source field)."""
        if self.source_size == 0:
            return 1.0
        return self.num_alive / self.source_size


def apply_faults(
    field: BeaconField, realization: FaultRealization, time: float
) -> DegradedField:
    """Snapshot ``field`` under ``realization`` at ``time``.

    Args:
        field: the pristine deployment.
        realization: a drawn fault world (see :mod:`repro.faults.models`).
        time: seconds since deployment; ``0`` applies only faults active at
            deployment time (none, for the built-in models).

    Returns:
        A :class:`DegradedField`; its ``field`` may be empty if every beacon
        is down (downstream code handles empty fields explicitly).
    """
    ids = np.asarray(field.beacon_ids, dtype=np.uint64)
    if ids.size == 0:
        return DegradedField(field=field, alive=np.zeros(0, dtype=bool), source_size=0, time=float(time))
    alive = realization.up_mask(ids, time)
    offsets = realization.position_offsets(ids, time)
    beacons = [
        Beacon(b.beacon_id, Point(b.position.x + float(dx), b.position.y + float(dy)))
        for b, up, (dx, dy) in zip(field.beacons, alive, offsets)
        if up
    ]
    degraded = BeaconField(beacons, next_id=field.next_beacon_id)
    metrics = get_metrics()
    metrics.counter("faults.snapshots").inc()
    metrics.counter("faults.beacons_dropped").inc(len(field) - len(beacons))
    return DegradedField(
        field=degraded, alive=alive, source_size=len(field), time=float(time)
    )


def fault_timeline(
    field: BeaconField, realization: FaultRealization, times
) -> list[DegradedField]:
    """Snapshot ``field`` at several times (monotone input not required).

    Returns:
        One :class:`DegradedField` per entry of ``times``, in input order.
    """
    return [apply_faults(field, realization, t) for t in times]
