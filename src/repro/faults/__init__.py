"""Fault injection: deterministic beacon failure, flapping, depletion, drift.

Fault models mirror the propagation-model contract (describe statistics,
``realize(rng)`` one immutable world keyed on beacon ids) so the same seed
produces the same outage pattern in the numeric §4 pipeline
(:func:`repro.sim.build_world` with ``faults=``) and in the discrete-event
protocol simulation (:func:`repro.protocol.start_beacon_processes` with
``faults=``).  See DESIGN.md §"Fault injection & resilient sweeps".
"""

from .inject import DegradedField, apply_faults, fault_timeline
from .models import (
    BatteryFault,
    CompositeFault,
    CrashFault,
    DriftFault,
    FaultModel,
    FaultRealization,
    IntermittentFault,
    NoFaults,
    fault_model_from_spec,
)

__all__ = [
    "FaultModel",
    "FaultRealization",
    "NoFaults",
    "CrashFault",
    "IntermittentFault",
    "BatteryFault",
    "DriftFault",
    "CompositeFault",
    "fault_model_from_spec",
    "DegradedField",
    "apply_faults",
    "fault_timeline",
]
