"""Beacon fields: beacons, field containers, deployment generators, density."""

from .beacons import Beacon, BeaconField
from .density import (
    beacons_per_coverage_area,
    count_from_density,
    density_from_count,
    density_from_coverage,
    paper_density_sweep,
)
from .graph import DeploymentHealth, beacon_graph, deployment_health
from .generators import (
    airdrop_field,
    clustered_field,
    perturbed_grid_field,
    random_uniform_field,
    regular_grid_field,
)

__all__ = [
    "Beacon",
    "BeaconField",
    "random_uniform_field",
    "regular_grid_field",
    "perturbed_grid_field",
    "airdrop_field",
    "clustered_field",
    "beacon_graph",
    "deployment_health",
    "DeploymentHealth",
    "density_from_count",
    "count_from_density",
    "beacons_per_coverage_area",
    "density_from_coverage",
    "paper_density_sweep",
]
