"""Beacon-to-beacon connectivity graphs and deployment health.

The §6 beacon-based approach has *"the beacon nodes themselves instrument
the terrain conditions based on interactions with other (beacon) nodes"* —
which requires the beacon field to be a usable network in its own right.
This module analyses that network (via :mod:`networkx`):

* :func:`beacon_graph` — the directed hearing graph and its undirected
  mutual-link reduction;
* :func:`deployment_health` — the report an operator wants before relying
  on beacon-side coordination: components, isolated beacons, articulation
  points (single points of failure), degree statistics.

Asymmetry matters: under the noise model beacon A may hear B but not vice
versa, so coordination links are the *mutual* edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..radio import PropagationRealization
from .beacons import BeaconField

__all__ = ["beacon_graph", "deployment_health", "DeploymentHealth"]


def beacon_graph(
    field: BeaconField,
    realization: PropagationRealization,
    *,
    mutual: bool = True,
) -> "nx.Graph | nx.DiGraph":
    """The beacon hearing graph.

    Args:
        field: the deployed beacons (nodes keyed by beacon id).
        realization: the propagation world.
        mutual: if True (default) return an undirected graph containing only
            bidirectional links (the edges coordination can actually use);
            if False return the directed hearing graph.

    Returns:
        A networkx graph whose nodes carry a ``pos`` attribute.
    """
    hears = realization.connectivity(field.positions(), field)
    np.fill_diagonal(hears, False)
    ids = field.beacon_ids

    graph = nx.Graph() if mutual else nx.DiGraph()
    for b in field:
        graph.add_node(b.beacon_id, pos=(b.position.x, b.position.y))
    edges = hears & hears.T if mutual else hears
    rows, cols = np.nonzero(edges)
    for i, j in zip(rows, cols):
        if mutual and i >= j:
            continue
        graph.add_edge(ids[i], ids[j])
    return graph


@dataclass(frozen=True)
class DeploymentHealth:
    """Network-health summary of a beacon deployment.

    Attributes:
        num_beacons: deployed beacons.
        num_components: connected components of the mutual-link graph.
        largest_component_fraction: beacons in the largest component.
        isolated_beacons: beacons with no mutual link at all.
        articulation_points: beacons whose failure splits a component.
        mean_degree: average mutual-link degree.
        asymmetric_link_fraction: one-way links among all hearing links —
            how non-reciprocal the noise has made the network.
    """

    num_beacons: int
    num_components: int
    largest_component_fraction: float
    isolated_beacons: tuple[int, ...]
    articulation_points: tuple[int, ...]
    mean_degree: float
    asymmetric_link_fraction: float

    @property
    def is_connected(self) -> bool:
        """Whether every beacon can coordinate with every other (mutually)."""
        return self.num_components == 1 and self.num_beacons > 0


def deployment_health(
    field: BeaconField, realization: PropagationRealization
) -> DeploymentHealth:
    """Analyse a deployment's coordination network (see module docstring)."""
    n = len(field)
    if n == 0:
        return DeploymentHealth(
            num_beacons=0,
            num_components=0,
            largest_component_fraction=float("nan"),
            isolated_beacons=(),
            articulation_points=(),
            mean_degree=float("nan"),
            asymmetric_link_fraction=float("nan"),
        )

    hears = realization.connectivity(field.positions(), field)
    np.fill_diagonal(hears, False)
    mutual = hears & hears.T
    total_links = int(hears.sum())
    asymmetric = total_links - int(mutual.sum())

    graph = beacon_graph(field, realization, mutual=True)
    components = list(nx.connected_components(graph))
    largest = max((len(c) for c in components), default=0)
    isolated = tuple(sorted(node for node, deg in graph.degree() if deg == 0))
    articulation = tuple(sorted(nx.articulation_points(graph)))

    return DeploymentHealth(
        num_beacons=n,
        num_components=len(components),
        largest_component_fraction=largest / n,
        isolated_beacons=isolated,
        articulation_points=articulation,
        mean_degree=float(mutual.sum()) / n,
        asymmetric_link_fraction=(asymmetric / total_links) if total_links else 0.0,
    )
