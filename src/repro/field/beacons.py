"""Beacons and beacon fields.

A *beacon* is a node at a known position that transmits periodically and
serves as a localization reference (Section 2.2).  A *beacon field* is the
set of beacons deployed on a terrain; the paper generates 1000 random fields
per density and then asks where to add one more beacon.

:class:`BeaconField` is an immutable value object.  Extending a field (the
placement step) returns a **new** field whose existing beacons keep their
identifiers — identifiers are what the static propagation-noise realization
(:mod:`repro.radio`) is keyed on, which is how adding a beacon leaves the
connectivity of every existing beacon untouched (the paper's noise is
"static with respect to time").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..geometry import Point, as_point, as_point_array

__all__ = ["Beacon", "BeaconField"]


@dataclass(frozen=True)
class Beacon:
    """One beacon: a stable identifier and a known position.

    Attributes:
        beacon_id: stable identifier, unique within a field lineage.  Survives
            field extension, so noise realizations can be cached against it.
        position: the beacon's known location.
    """

    beacon_id: int
    position: Point

    def __post_init__(self) -> None:
        if self.beacon_id < 0:
            raise ValueError(f"beacon_id must be non-negative, got {self.beacon_id}")


class BeaconField:
    """An immutable collection of beacons on a terrain.

    Construct with :meth:`from_positions` (fresh ids ``0..N-1``) or extend an
    existing field with :meth:`with_beacon_at` / :meth:`with_beacons_at`.

    The positions array is exposed read-only via :meth:`positions`; all
    numeric kernels in the package consume that ``(N, 2)`` view.
    """

    __slots__ = ("_beacons", "_positions", "_ids", "_next_id")

    def __init__(self, beacons: Sequence[Beacon], *, next_id: int | None = None):
        self._beacons = tuple(beacons)
        ids = [b.beacon_id for b in self._beacons]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate beacon ids in field")
        pos = as_point_array([b.position for b in self._beacons])
        pos.setflags(write=False)
        self._positions = pos
        self._ids = tuple(ids)
        inferred = max(ids, default=-1) + 1
        if next_id is not None and next_id < inferred:
            raise ValueError(f"next_id {next_id} collides with existing ids (max {inferred - 1})")
        self._next_id = inferred if next_id is None else next_id

    @classmethod
    def from_positions(cls, positions) -> "BeaconField":
        """Build a field from raw coordinates, assigning ids ``0..N-1``.

        The :class:`Beacon` objects are materialized lazily: every numeric
        consumer (connectivity kernels, centroid state) reads only the
        ids/positions arrays, so sweeps that never inspect individual
        beacons skip thousands of small object constructions.
        """
        pos = np.array(as_point_array(positions), dtype=float)
        pos.setflags(write=False)
        field = cls.__new__(cls)
        field._beacons = None
        field._positions = pos
        field._ids = tuple(range(pos.shape[0]))
        field._next_id = pos.shape[0]
        return field

    @classmethod
    def empty(cls) -> "BeaconField":
        """A field with no beacons."""
        return cls(())

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Beacon]:
        return iter(self.beacons)

    def __getitem__(self, index: int) -> Beacon:
        return self.beacons[index]

    def __repr__(self) -> str:
        return f"BeaconField(n={len(self)}, next_id={self._next_id})"

    @property
    def beacons(self) -> tuple[Beacon, ...]:
        """All beacons, in field order (materialized on first access)."""
        if self._beacons is None:
            self._beacons = tuple(
                Beacon(i, Point(float(x), float(y)))
                for i, (x, y) in zip(self._ids, self._positions)
            )
        return self._beacons

    @property
    def next_beacon_id(self) -> int:
        """The id the next added beacon will receive.

        Exposed so trial code can evaluate candidate beacons under the same
        identity (and therefore the same static noise) the beacon would have
        if actually deployed.
        """
        return self._next_id

    @property
    def beacon_ids(self) -> tuple[int, ...]:
        """Identifiers in field order, aligned with :meth:`positions` rows."""
        return self._ids

    def positions(self) -> np.ndarray:
        """Beacon coordinates as a read-only ``(N, 2)`` array."""
        return self._positions

    def with_beacon_at(self, position) -> "BeaconField":
        """A new field with one additional beacon at ``position``.

        The new beacon receives a fresh id; existing beacons are unchanged.
        """
        p = as_point(position)
        new = Beacon(self._next_id, p)
        return BeaconField(self.beacons + (new,), next_id=self._next_id + 1)

    def with_beacons_at(self, positions) -> "BeaconField":
        """A new field with several additional beacons (batch placement)."""
        out = self
        for row in as_point_array(positions):
            out = out.with_beacon_at(row)
        return out

    def density(self, area: float) -> float:
        """Deployment density in beacons per m² over a terrain of ``area`` m²."""
        if area <= 0:
            raise ValueError(f"area must be positive, got {area}")
        return len(self) / area

    def beacons_per_coverage_area(self, area: float, radio_range: float) -> float:
        """Beacons per nominal radio coverage area ``π R²`` (the paper's
        secondary density axis, 1.41 … 17 for its parameter range)."""
        return self.density(area) * np.pi * radio_range**2

    def nearest_beacon_distances(self, points) -> np.ndarray:
        """Distance from each query point to its nearest beacon.

        Returns ``inf`` for every point when the field is empty.
        """
        pts = as_point_array(points)
        if len(self) == 0:
            return np.full(pts.shape[0], np.inf)
        diff = pts[:, None, :] - self._positions[None, :, :]
        d2 = np.einsum("pnk,pnk->pn", diff, diff)
        return np.sqrt(d2.min(axis=1))
