"""Beacon-field generators.

The paper's evaluation (§4.1) generates each field *"by randomly placing the
beacons in the 100m × 100m square terrain"* — :func:`random_uniform_field`.
The introduction motivates several other deployment regimes which the
examples and extension benches exercise:

* :func:`regular_grid_field` — the uniform placement of Figure 1 (k × k
  lattice), also the setting of the analytic error bounds in §2.2;
* :func:`perturbed_grid_field` — uniform intent + deployment perturbation
  ("beacons may be perturbed during deployment");
* :func:`airdrop_field` — air-dropped beacons rolling downhill on a terrain
  heightmap (the hilltop story of §1), implemented against
  :mod:`repro.terrain`;
* :func:`clustered_field` — Matérn-style cluster process, a stress case of
  badly non-uniform density.

All generators draw from a caller-supplied :class:`numpy.random.Generator`
so experiments are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array
from .beacons import BeaconField

__all__ = [
    "random_uniform_field",
    "regular_grid_field",
    "perturbed_grid_field",
    "airdrop_field",
    "clustered_field",
]


def _require_count(num_beacons: int) -> None:
    if num_beacons < 0:
        raise ValueError(f"num_beacons must be non-negative, got {num_beacons}")


def random_uniform_field(
    num_beacons: int, side: float, rng: np.random.Generator
) -> BeaconField:
    """Beacons i.i.d. uniform over the ``[0, side]²`` terrain (paper §4.1)."""
    _require_count(num_beacons)
    positions = rng.uniform(0.0, side, size=(num_beacons, 2))
    return BeaconField.from_positions(positions)


def regular_grid_field(per_axis: int, side: float, *, margin: float | None = None) -> BeaconField:
    """A ``per_axis × per_axis`` lattice of beacons (uniform placement, Fig 1).

    Args:
        per_axis: beacons along each axis (≥ 1).
        side: terrain side length.
        margin: distance from the border to the outermost beacons.  Defaults
            to half the beacon separation, which tiles the terrain into equal
            cells (the configuration the §2.2 error bounds assume).

    Returns:
        The lattice field; beacon separation is ``(side - 2·margin) /
        (per_axis - 1)`` for ``per_axis > 1``.
    """
    if per_axis < 1:
        raise ValueError(f"per_axis must be >= 1, got {per_axis}")
    if per_axis == 1:
        return BeaconField.from_positions([[side / 2.0, side / 2.0]])
    if margin is None:
        margin = side / (2.0 * per_axis)
    if not 0 <= margin < side / 2.0:
        raise ValueError(f"margin must be in [0, side/2), got {margin}")
    axis = np.linspace(margin, side - margin, per_axis)
    xs, ys = np.meshgrid(axis, axis, indexing="ij")
    return BeaconField.from_positions(np.column_stack([xs.ravel(), ys.ravel()]))


def perturbed_grid_field(
    per_axis: int,
    side: float,
    rng: np.random.Generator,
    *,
    sigma: float,
    margin: float | None = None,
) -> BeaconField:
    """A regular grid whose beacons were displaced during deployment.

    Each lattice beacon is shifted by isotropic Gaussian noise of standard
    deviation ``sigma`` (meters) and clamped to the terrain.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    base = regular_grid_field(per_axis, side, margin=margin).positions()
    jitter = rng.normal(0.0, sigma, size=base.shape)
    return BeaconField.from_positions(np.clip(base + jitter, 0.0, side))


def airdrop_field(
    num_beacons: int,
    side: float,
    rng: np.random.Generator,
    *,
    heightmap,
    roll_steps: int = 25,
    roll_rate: float = 2.0,
) -> BeaconField:
    """Air-dropped beacons that roll downhill after landing.

    Reproduces the §1 motivation: *"Air dropped beacon nodes will roll over
    the hill"* — so uniform-at-altitude drops end up non-uniform on the
    ground, depleting ridges and piling into valleys.

    Args:
        num_beacons: beacons dropped.
        side: terrain side.
        rng: randomness for the drop points.
        heightmap: a :class:`repro.terrain.Heightmap` over the same terrain.
        roll_steps: gradient-descent steps simulating the roll.
        roll_rate: meters moved per unit slope per step.

    Returns:
        The settled field (positions clamped to the terrain).
    """
    _require_count(num_beacons)
    if roll_steps < 0:
        raise ValueError(f"roll_steps must be non-negative, got {roll_steps}")
    positions = rng.uniform(0.0, side, size=(num_beacons, 2))
    for _ in range(roll_steps):
        gx, gy = heightmap.gradient_at(positions)
        positions = positions - roll_rate * np.column_stack([gx, gy])
        positions = np.clip(positions, 0.0, side)
    return BeaconField.from_positions(positions)


def clustered_field(
    num_beacons: int,
    side: float,
    rng: np.random.Generator,
    *,
    num_clusters: int,
    cluster_sigma: float,
) -> BeaconField:
    """Beacons concentrated around random cluster centers (Matérn-style).

    Args:
        num_beacons: total beacons.
        side: terrain side.
        rng: randomness source.
        num_clusters: number of cluster centers, uniform over the terrain.
        cluster_sigma: Gaussian spread of beacons around their center.
    """
    _require_count(num_beacons)
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if cluster_sigma < 0:
        raise ValueError(f"cluster_sigma must be non-negative, got {cluster_sigma}")
    centers = rng.uniform(0.0, side, size=(num_clusters, 2))
    assignment = rng.integers(0, num_clusters, size=num_beacons)
    offsets = rng.normal(0.0, cluster_sigma, size=(num_beacons, 2))
    positions = np.clip(centers[assignment] + offsets, 0.0, side)
    return BeaconField.from_positions(as_point_array(positions))
