"""Density bookkeeping for beacon deployments.

The paper reports results on two aligned axes: deployment density in
*beacons per square meter* and *beacons per nominal radio coverage area*
(``π R²``); its sweep runs 20..240 beacons on a 100 m square, i.e.
0.002..0.024 /m² or 1.41..17 per coverage area.  These helpers convert
between the three representations and generate the paper's sweep.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "density_from_count",
    "count_from_density",
    "beacons_per_coverage_area",
    "density_from_coverage",
    "paper_density_sweep",
]


def density_from_count(num_beacons: int, side: float) -> float:
    """Beacons per m² for ``num_beacons`` on a ``side × side`` terrain."""
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return num_beacons / (side * side)


def count_from_density(density: float, side: float) -> int:
    """Beacon count (rounded to nearest) realizing ``density`` beacons/m²."""
    if density < 0:
        raise ValueError(f"density must be non-negative, got {density}")
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return int(round(density * side * side))


def beacons_per_coverage_area(density: float, radio_range: float) -> float:
    """Convert beacons/m² to beacons per nominal coverage area ``π R²``."""
    if radio_range <= 0:
        raise ValueError(f"radio_range must be positive, got {radio_range}")
    return density * math.pi * radio_range**2


def density_from_coverage(per_coverage: float, radio_range: float) -> float:
    """Inverse of :func:`beacons_per_coverage_area`."""
    if radio_range <= 0:
        raise ValueError(f"radio_range must be positive, got {radio_range}")
    return per_coverage / (math.pi * radio_range**2)


def paper_density_sweep(
    side: float = 100.0,
    *,
    min_beacons: int = 20,
    max_beacons: int = 240,
    step: int = 10,
) -> list[int]:
    """The paper's beacon-count sweep: 20, 30, …, 240 (inclusive).

    Returns beacon *counts*; combine with :func:`density_from_count` for the
    density axis.  ``side`` is accepted for symmetry with callers that
    parameterize the terrain, though the counts themselves are what §4.1
    specifies.
    """
    if min_beacons < 0 or max_beacons < min_beacons or step <= 0:
        raise ValueError(
            f"invalid sweep bounds: min={min_beacons}, max={max_beacons}, step={step}"
        )
    return list(np.arange(min_beacons, max_beacons + 1, step, dtype=int))
