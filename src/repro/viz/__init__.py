"""Text rendering: tables, ASCII charts, heatmaps."""

from .ascii_chart import SERIES_MARKERS, heatmap, line_chart
from .field_map import field_map
from .report import ReportBuilder
from .tables import format_curve_set, format_table, format_timeline_set

__all__ = [
    "format_table",
    "format_curve_set",
    "format_timeline_set",
    "line_chart",
    "heatmap",
    "field_map",
    "ReportBuilder",
    "SERIES_MARKERS",
]
