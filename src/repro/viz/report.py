"""Markdown report assembly for experiment outputs.

Benches and the CLI collect heterogeneous artifacts — curve sets, plain
tables, ASCII charts, notes.  :class:`ReportBuilder` stitches them into one
self-contained markdown document (tables as GitHub pipe tables, charts in
fenced code blocks), so a whole evaluation run can be reviewed as a single
file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from .ascii_chart import line_chart
from .tables import format_curve_set

__all__ = ["ReportBuilder"]


class ReportBuilder:
    """Accumulate sections and render/write a markdown report.

    Args:
        title: the document title.
    """

    def __init__(self, title: str):
        if not title.strip():
            raise ValueError("title must not be empty")
        self.title = title
        self._sections: list[str] = []

    def add_section(self, heading: str, body: str = "") -> "ReportBuilder":
        """Append a ``## heading`` section with optional prose."""
        part = f"## {heading}\n"
        if body.strip():
            part += f"\n{body.strip()}\n"
        self._sections.append(part)
        return self

    def add_table(self, headers: Sequence[str], rows, *, float_digits: int = 3) -> "ReportBuilder":
        """Append a GitHub pipe table."""

        def fmt(cell):
            if isinstance(cell, float):
                return f"{cell:.{float_digits}f}"
            return str(cell)

        lines = [
            "| " + " | ".join(headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        for row in rows:
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells but there are {len(headers)} headers"
                )
            lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
        self._sections.append("\n".join(lines) + "\n")
        return self

    def add_curve_set(self, curve_set, *, chart: bool = True) -> "ReportBuilder":
        """Append a curve set as a fenced table (and optional ASCII chart)."""
        block = format_curve_set(curve_set)
        if chart and curve_set.curves and len(curve_set.curves[0]) > 1:
            series = [(c.label, c.densities, c.values) for c in curve_set.curves]
            block += "\n\n" + line_chart(
                series,
                title=curve_set.title,
                x_label="beacons per m^2",
                y_label="meters",
                y_min=0.0,
            )
        self._sections.append(f"```\n{block}\n```\n")
        return self

    def add_preformatted(self, text: str, *, caption: str = "") -> "ReportBuilder":
        """Append an arbitrary preformatted block (heatmaps, maps, logs)."""
        part = ""
        if caption.strip():
            part += f"{caption.strip()}\n\n"
        part += f"```\n{text.rstrip()}\n```\n"
        self._sections.append(part)
        return self

    def render(self) -> str:
        """The full markdown document."""
        return f"# {self.title}\n\n" + "\n".join(self._sections)

    def write(self, path) -> Path:
        """Render and write to ``path`` (directories created)."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.render())
        return out
