"""ASCII terrain maps: beacons, picks, coverage at a glance.

Complements the error heatmap with an *annotated* top-down map of the
terrain square — beacon positions, a proposed placement, optional coverage
shading — so examples and CLI output can show *where* things are, not just
how bad the errors get.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array

__all__ = ["field_map"]


def field_map(
    side: float,
    *,
    beacons=None,
    picks=None,
    coverage: np.ndarray | None = None,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a terrain square as an ASCII map.

    Conventions: ``B`` beacon, ``*`` proposed placement, ``·`` covered
    ground, space = uncovered; x grows rightward, y grows upward.

    Args:
        side: terrain side length in meters.
        beacons: optional ``(N, 2)`` beacon coordinates (or a BeaconField).
        picks: optional ``(K, 2)`` proposed placements.
        coverage: optional square boolean image (row-major in x) marking
            covered lattice cells, e.g. ``conn.any(axis=1)`` reshaped.
        width: map width in characters (height keeps the aspect ratio at
            roughly 2:1 character cells).
        title: optional heading line.

    Returns:
        The map as a multi-line string, annotated with a legend.
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    height = max(width // 2, 4)

    cells = [[" "] * width for _ in range(height)]

    if coverage is not None:
        cov = np.asarray(coverage, dtype=bool)
        if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
            raise ValueError(f"coverage must be a square image, got {cov.shape}")
        n = cov.shape[0]
        for r in range(height):
            for c in range(width):
                i = min(int(c / width * n), n - 1)
                j = min(int((height - 1 - r) / height * n), n - 1)
                if cov[i, j]:
                    cells[r][c] = "·"

    def plot(points, marker):
        pts = points.positions() if hasattr(points, "positions") else as_point_array(points)
        for x, y in pts:
            c = min(int(x / side * width), width - 1)
            r = height - 1 - min(int(y / side * height), height - 1)
            cells[r][c] = marker

    if beacons is not None:
        plot(beacons, "B")
    if picks is not None:
        plot(picks, "*")

    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    for row in cells:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    legend = "B beacon"
    if picks is not None:
        legend += "   * proposed placement"
    if coverage is not None:
        legend += "   · covered"
    lines.append(legend + f"   ({side:g} m square)")
    return "\n".join(lines)
