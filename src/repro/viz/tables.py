"""Plain-text tables.

The benches print their reproduced figure data as aligned text tables (the
offline environment has no plotting stack); these helpers do the layout.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_curve_set", "format_timeline_set"]


def _fmt(value, float_digits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    float_digits: int = 3,
    indent: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: column titles.
        rows: row tuples (mixed str/int/float).
        float_digits: decimals for float cells.
        indent: prefix for every line.
    """
    rendered = [[_fmt(cell, float_digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(indent + "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_curve_set(curve_set, *, float_digits: int = 3) -> str:
    """Render a :class:`repro.sim.CurveSet` as one table per figure.

    Columns: beacon count, density, then one ``value ± ci`` column per
    series — the same rows the paper's figures plot.
    """
    curves = curve_set.curves
    if not curves:
        return f"{curve_set.title}: (empty)"
    counts = curves[0].counts
    for c in curves:
        if c.counts != counts:
            raise ValueError("curves in a set must share the x axis")
    headers = ["beacons", "density"] + [c.label for c in curves]
    rows = []
    for i, count in enumerate(counts):
        row = [count, f"{curves[0].densities[i]:.4f}"]
        for c in curves:
            row.append(f"{c.values[i]:.{float_digits}f}±{c.ci_half_widths[i]:.{float_digits}f}")
        rows.append(row)
    return f"{curve_set.title}\n" + format_table(headers, rows, float_digits=float_digits)


def format_timeline_set(curve_set, *, float_digits: int = 3) -> str:
    """Render a timeline :class:`repro.sim.CurveSet` (of ``TimeCurve``).

    Columns: snapshot time, then per series ``value [low, high] (alive%)`` —
    the asymmetric bootstrap bounds plus the mean surviving-beacon fraction.
    A total-outage point renders as a dash.
    """
    curves = curve_set.curves
    if not curves:
        return f"{curve_set.title}: (empty)"
    times = curves[0].times
    for c in curves:
        if c.times != times:
            raise ValueError("curves in a timeline set must share the time axis")
    headers = ["time"] + [c.label for c in curves]
    rows = []
    for i, t in enumerate(times):
        row = [f"{t:g}"]
        for c in curves:
            v = c.values[i]
            if v != v:  # NaN: no surviving beacon in any trial
                row.append("—")
            else:
                row.append(
                    f"{v:.{float_digits}f} "
                    f"[{c.ci_low[i]:.{float_digits}f}, {c.ci_high[i]:.{float_digits}f}]"
                    f" ({c.alive_fraction()[i]:.0%})"
                )
        rows.append(row)
    return f"{curve_set.title}\n" + format_table(headers, rows, float_digits=float_digits)
