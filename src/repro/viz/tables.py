"""Plain-text tables.

The benches print their reproduced figure data as aligned text tables (the
offline environment has no plotting stack); these helpers do the layout.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_curve_set"]


def _fmt(value, float_digits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    float_digits: int = 3,
    indent: str = "",
) -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: column titles.
        rows: row tuples (mixed str/int/float).
        float_digits: decimals for float cells.
        indent: prefix for every line.
    """
    rendered = [[_fmt(cell, float_digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(indent + "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_curve_set(curve_set, *, float_digits: int = 3) -> str:
    """Render a :class:`repro.sim.CurveSet` as one table per figure.

    Columns: beacon count, density, then one ``value ± ci`` column per
    series — the same rows the paper's figures plot.
    """
    curves = curve_set.curves
    if not curves:
        return f"{curve_set.title}: (empty)"
    counts = curves[0].counts
    for c in curves:
        if c.counts != counts:
            raise ValueError("curves in a set must share the x axis")
    headers = ["beacons", "density"] + [c.label for c in curves]
    rows = []
    for i, count in enumerate(counts):
        row = [count, f"{curves[0].densities[i]:.4f}"]
        for c in curves:
            row.append(f"{c.values[i]:.{float_digits}f}±{c.ci_half_widths[i]:.{float_digits}f}")
        rows.append(row)
    return f"{curve_set.title}\n" + format_table(headers, rows, float_digits=float_digits)
