"""ASCII line charts and heatmaps.

Good enough to see a figure's *shape* in a terminal or a CI log: multi-series
scatter/line charts with axes and a legend, and character heatmaps for error
surfaces.  The benches print these next to the numeric tables so the curves
of Figures 4–9 are visible without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["line_chart", "heatmap", "SERIES_MARKERS"]

SERIES_MARKERS = "ox+*#@%&"


def _nice_ticks(lo: float, hi: float, count: int) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    return [lo + (hi - lo) * i / (count - 1) for i in range(count)]


def line_chart(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    y_min: float | None = None,
) -> str:
    """Render labelled (x, y) series as an ASCII chart.

    Args:
        series: list of ``(label, xs, ys)``; NaN ys are skipped.
        width: plot-area columns.
        height: plot-area rows.
        title: optional title line.
        x_label: x-axis caption.
        y_label: y-axis caption (printed above the axis).
        y_min: force the y-axis lower bound (e.g. 0 for error plots).

    Returns:
        The chart as a multi-line string.
    """
    if not series:
        raise ValueError("line_chart needs at least one series")
    if width < 8 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")

    xs_all, ys_all = [], []
    for _, xs, ys in series:
        for x, y in zip(xs, ys):
            if not (math.isnan(float(x)) or math.isnan(float(y))):
                xs_all.append(float(x))
                ys_all.append(float(y))
    if not xs_all:
        raise ValueError("no finite data points to chart")

    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo = min(ys_all) if y_min is None else y_min
    y_hi = max(ys_all)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    cells = [[" "] * width for _ in range(height)]
    for s_idx, (_, xs, ys) in enumerate(series):
        marker = SERIES_MARKERS[s_idx % len(SERIES_MARKERS)]
        for x, y in zip(xs, ys):
            x, y = float(x), float(y)
            if math.isnan(x) or math.isnan(y):
                continue
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            row = height - 1 - row
            if 0 <= row < height and 0 <= col < width:
                cells[row][col] = marker

    gutter = 9
    lines = []
    if title:
        lines.append(" " * gutter + title)
    if y_label:
        lines.append(" " * gutter + f"[{y_label}]")
    y_ticks = _nice_ticks(y_lo, y_hi, height)
    for r in range(height):
        tick_value = y_ticks[height - 1 - r]
        label = f"{tick_value:8.3g} " if r % max(height // 6, 1) == 0 or r == height - 1 else " " * gutter
        lines.append(label + "|" + "".join(cells[r]))
    lines.append(" " * gutter + "+" + "-" * width)
    x_ticks = _nice_ticks(x_lo, x_hi, 5)
    tick_line = [" "] * (width + 1)
    tick_text = ""
    for i, tv in enumerate(x_ticks):
        pos = int(round(i * (width - 1) / (len(x_ticks) - 1)))
        text = f"{tv:.3g}"
        tick_text += " " * max(pos + gutter + 1 - len(tick_text), 1) + text
    del tick_line
    lines.append(tick_text)
    if x_label:
        lines.append(" " * gutter + f"[{x_label}]")
    legend = "   ".join(
        f"{SERIES_MARKERS[i % len(SERIES_MARKERS)]} {label}"
        for i, (label, _, _) in enumerate(series)
    )
    lines.append(" " * gutter + legend)
    return "\n".join(lines)


def heatmap(
    image: np.ndarray,
    *,
    chars: str = " .:-=+*#%@",
    title: str = "",
    v_min: float | None = None,
    v_max: float | None = None,
) -> str:
    """Render a 2-D array as a character heatmap (row 0 at the top).

    NaN cells render as ``?``.
    """
    img = np.asarray(image, dtype=float)
    if img.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D array, got shape {img.shape}")
    finite = img[~np.isnan(img)]
    lo = v_min if v_min is not None else (float(finite.min()) if finite.size else 0.0)
    hi = v_max if v_max is not None else (float(finite.max()) if finite.size else 1.0)
    if hi <= lo:
        hi = lo + 1.0
    scale = (len(chars) - 1) / (hi - lo)
    lines = [title] if title else []
    for row in img:
        cells = []
        for v in row:
            if np.isnan(v):
                cells.append("?")
            else:
                idx = int(round((min(max(v, lo), hi) - lo) * scale))
                cells.append(chars[idx])
        lines.append("".join(cells))
    lines.append(f"scale: '{chars[0]}'={lo:.3g} … '{chars[-1]}'={hi:.3g}")
    return "\n".join(lines)
