"""The mobile survey agent (Section 3).

The agent models the paper's GPS-equipped human or robot: it moves along a
path, and at each waypoint (a) reads its true position from differential GPS
(optionally corrupted by :class:`GpsErrorModel`), (b) listens to the beacon
field through the propagation realization, (c) runs the localization
algorithm on what it heard, and (d) records the localization error.  The
collected measurements form a :class:`~repro.exploration.Survey`.

For the paper's evaluation setting (complete sweep, no measurement noise)
:meth:`SurveyAgent.survey_lattice` produces a survey numerically identical
to the direct vectorized evaluation in :mod:`repro.sim` — a cross-check the
integration tests enforce.
"""

from __future__ import annotations

import numpy as np

from ..field import BeaconField
from ..geometry import MeasurementGrid, as_point_array
from ..localization import Localizer, localization_errors
from ..radio import PropagationRealization
from .measurement import GpsErrorModel
from .survey import Survey

__all__ = ["SurveyAgent"]


class SurveyAgent:
    """A mobile agent that measures localization error over a terrain.

    Args:
        field: the deployed beacon field.
        realization: the (static) propagation world the agent moves through.
        localizer: the localization algorithm the sensor nodes use; the agent
            runs the same one to measure its error.
        terrain_side: side of the terrain square.
        gps: optional GPS error model; None means perfect ground truth (the
            paper's assumption).
        carried_beacons: how many additional beacons the agent can deploy.
    """

    def __init__(
        self,
        field: BeaconField,
        realization: PropagationRealization,
        localizer: Localizer,
        terrain_side: float,
        *,
        gps: GpsErrorModel | None = None,
        carried_beacons: int = 1,
    ):
        if terrain_side <= 0:
            raise ValueError(f"terrain_side must be positive, got {terrain_side}")
        if carried_beacons < 0:
            raise ValueError(f"carried_beacons must be non-negative, got {carried_beacons}")
        self._field = field
        self._realization = realization
        self._localizer = localizer
        self._terrain_side = float(terrain_side)
        self._gps = gps
        self._carried = int(carried_beacons)

    @property
    def field(self) -> BeaconField:
        """The field the agent currently sees (grows as it deploys beacons)."""
        return self._field

    @property
    def beacons_remaining(self) -> int:
        """Beacons still in the agent's carrier."""
        return self._carried

    def measure_at(self, points, rng: np.random.Generator | None = None) -> Survey:
        """Survey the given waypoints.

        Args:
            points: ``(K, 2)`` true waypoint positions along the path.
            rng: randomness for GPS noise (required if a GPS model is set).

        Returns:
            A :class:`Survey` whose recorded points are the GPS readings and
            whose errors compare the localization estimate against the GPS
            reading (the agent's best available ground truth).
        """
        true_pts = as_point_array(points)
        if self._gps is not None:
            if rng is None:
                raise ValueError("rng is required when a GPS error model is set")
            recorded = self._gps.read(true_pts, rng)
        else:
            recorded = true_pts

        conn = self._realization.connectivity(true_pts, self._field)
        estimates = self._localizer.estimate(conn, self._field.positions(), true_pts)
        errors = localization_errors(estimates, recorded)
        return Survey(points=recorded, errors=errors, terrain_side=self._terrain_side)

    def survey_lattice(
        self, grid: MeasurementGrid, rng: np.random.Generator | None = None
    ) -> Survey:
        """Complete sweep of a measurement lattice (the paper's §3.1 setting).

        With no GPS model this is exact and the returned survey carries the
        lattice handle so grid-aware placement can use cached masks.
        """
        if abs(grid.side - self._terrain_side) > 1e-9:
            raise ValueError(
                f"lattice side {grid.side} != agent terrain side {self._terrain_side}"
            )
        survey = self.measure_at(grid.points(), rng)
        if self._gps is None:
            return Survey(
                points=survey.points,
                errors=survey.errors,
                terrain_side=self._terrain_side,
                grid=grid,
            )
        return survey

    def deploy_beacon(self, position) -> BeaconField:
        """Place one carried beacon, growing the agent's field.

        Returns:
            The extended field (also retained by the agent).

        Raises:
            RuntimeError: if the carrier is empty.
        """
        if self._carried <= 0:
            raise RuntimeError("no beacons left to deploy")
        self._field = self._field.with_beacon_at(position)
        self._carried -= 1
        return self._field
