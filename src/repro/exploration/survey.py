"""Surveys: the measurement sets that placement algorithms consume.

Section 3 of the paper: a GPS-equipped mobile robot or human explores the
terrain, computes its localization estimate at each visited point, and thus
*"has a means of computing the localization error at any point on the
terrain"*.  A :class:`Survey` is the product of that exploration — visited
points with their measured localization errors — and is the sole input of
the measurement-driven placement algorithms (Max, Grid).

The paper's evaluation uses *complete* surveys (every lattice point, no
measurement noise); partial and noisy surveys are the §3.1 generalization
exercised by the exploration extension bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import MeasurementGrid, as_point_array
from ..localization import ErrorSurface

__all__ = ["Survey"]


@dataclass(frozen=True)
class Survey:
    """Localization-error measurements over a set of terrain points.

    Attributes:
        points: ``(P, 2)`` surveyed locations (as recorded by the surveyor —
            under GPS noise these may deviate from the true positions).
        errors: ``(P,)`` measured localization error at each point; NaN marks
            points excluded by the unlocalized policy.
        terrain_side: side of the surveyed terrain square.
        grid: the full measurement lattice when the survey is a complete
            sweep aligned with it, else None.  Grid-aware algorithms use this
            to reuse cached lattice masks.
    """

    points: np.ndarray
    errors: np.ndarray
    terrain_side: float
    grid: MeasurementGrid | None = None

    def __post_init__(self) -> None:
        pts = as_point_array(self.points)
        err = np.asarray(self.errors, dtype=float)
        if err.shape != (pts.shape[0],):
            raise ValueError(
                f"errors shape {err.shape} does not match {pts.shape[0]} points"
            )
        if self.terrain_side <= 0:
            raise ValueError(f"terrain_side must be positive, got {self.terrain_side}")
        if self.grid is not None and pts.shape[0] != self.grid.num_points:
            raise ValueError(
                "grid is set but survey does not cover the full lattice "
                f"({pts.shape[0]} points vs {self.grid.num_points})"
            )
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "errors", err)

    @classmethod
    def from_error_surface(cls, surface: ErrorSurface) -> "Survey":
        """A complete, noise-free survey of a full error surface."""
        return cls(
            points=surface.grid.points(),
            errors=surface.errors,
            terrain_side=surface.grid.side,
            grid=surface.grid,
        )

    @property
    def num_points(self) -> int:
        """Number of surveyed points."""
        return int(self.points.shape[0])

    @property
    def is_complete(self) -> bool:
        """Whether the survey covers a full measurement lattice."""
        return self.grid is not None

    def mean_error(self) -> float:
        """Mean measured LE (NaN-aware)."""
        if np.all(np.isnan(self.errors)):
            return float("nan")
        return float(np.nanmean(self.errors))

    def median_error(self) -> float:
        """Median measured LE (NaN-aware)."""
        if np.all(np.isnan(self.errors)):
            return float("nan")
        return float(np.nanmedian(self.errors))

    def subsample(self, indices) -> "Survey":
        """A survey restricted to ``indices`` (loses lattice completeness)."""
        idx = np.asarray(indices)
        return Survey(
            points=self.points[idx],
            errors=self.errors[idx],
            terrain_side=self.terrain_side,
            grid=None,
        )
