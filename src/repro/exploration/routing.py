"""Waypoint routing: minimize robot travel for a given measurement set.

Partial and active surveys (§3.1 generalization) produce *sets* of points to
measure; the robot's cost is the tour that visits them.  This module plans
short tours:

* :func:`nearest_neighbor_tour` — the classic O(K²) constructive heuristic;
* :func:`two_opt_improve` — 2-opt local search with a move budget;
* :func:`plan_tour` — nearest-neighbour seed + 2-opt polish, the sensible
  default.

Guarantees are heuristic (TSP is NP-hard) but the property tests pin the
useful invariants: every point visited exactly once, never worse than the
seed tour, and large savings over the input order for random point sets.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array
from .paths import path_length

__all__ = ["nearest_neighbor_tour", "two_opt_improve", "plan_tour", "tour_savings"]


def nearest_neighbor_tour(points, start_index: int = 0) -> np.ndarray:
    """Visit order by always moving to the nearest unvisited point.

    Args:
        points: ``(K, 2)`` waypoints.
        start_index: index of the first waypoint.

    Returns:
        ``(K,)`` permutation of ``0..K-1``.
    """
    pts = as_point_array(points)
    k = pts.shape[0]
    if k == 0:
        return np.zeros(0, dtype=int)
    if not 0 <= start_index < k:
        raise ValueError(f"start_index {start_index} out of range for {k} points")
    remaining = np.ones(k, dtype=bool)
    order = np.empty(k, dtype=int)
    order[0] = start_index
    remaining[start_index] = False
    current = pts[start_index]
    for step in range(1, k):
        candidates = np.flatnonzero(remaining)
        d2 = np.einsum(
            "nk,nk->n", pts[candidates] - current, pts[candidates] - current
        )
        chosen = candidates[int(np.argmin(d2))]
        order[step] = chosen
        remaining[chosen] = False
        current = pts[chosen]
    return order


def two_opt_improve(points, order, *, max_rounds: int = 8) -> np.ndarray:
    """2-opt local search: reverse segments while any reversal shortens the tour.

    Args:
        points: ``(K, 2)`` waypoints.
        order: starting permutation.
        max_rounds: full improvement sweeps before giving up.

    Returns:
        An order at a 2-opt local optimum (or after ``max_rounds`` sweeps).
    """
    pts = as_point_array(points)
    tour = np.asarray(order, dtype=int).copy()
    k = tour.shape[0]
    if k < 4:
        return tour
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")

    def dist(a: int, b: int) -> float:
        return float(np.hypot(*(pts[a] - pts[b])))

    for _ in range(max_rounds):
        improved = False
        for i in range(k - 3):
            a, b = tour[i], tour[i + 1]
            d_ab = dist(a, b)
            # Vectorized gain scan for edge (i, i+1) against all (j, j+1).
            cs = tour[i + 2 : k - 1]
            ds = tour[i + 3 : k]
            d_cd = np.linalg.norm(pts[cs] - pts[ds], axis=1)
            d_ac = np.linalg.norm(pts[a] - pts[cs], axis=1)
            d_bd = np.linalg.norm(pts[b] - pts[ds], axis=1)
            gains = (d_ab + d_cd) - (d_ac + d_bd)
            best = int(np.argmax(gains)) if gains.size else -1
            if best >= 0 and gains[best] > 1e-9:
                j = i + 2 + best
                tour[i + 1 : j + 1] = tour[i + 1 : j + 1][::-1]
                improved = True
        if not improved:
            break
    return tour


def plan_tour(points, *, start_index: int = 0, max_rounds: int = 8) -> np.ndarray:
    """Nearest-neighbour seed polished by 2-opt.

    The heuristic tour can land in a 2-opt local optimum that is longer
    than simply visiting the waypoints in input order (e.g. collinear
    points where the greedy seed strands the far endpoint); the planned
    tour is only used when it actually wins.

    Returns:
        The waypoints reordered, ``(K, 2)`` — ready for
        :meth:`SurveyAgent.measure_at`.
    """
    pts = as_point_array(points)
    order = nearest_neighbor_tour(pts, start_index)
    order = two_opt_improve(pts, order, max_rounds=max_rounds)
    tour = pts[order]
    if path_length(tour) > path_length(pts):
        return pts.copy()
    return tour


def tour_savings(points, *, start_index: int = 0) -> tuple[float, float]:
    """(input-order length, planned length) for a waypoint set."""
    pts = as_point_array(points)
    return path_length(pts), path_length(plan_tour(pts, start_index=start_index))
