"""Terrain exploration: survey agents, paths, measurement noise, surveys."""

from .adaptive import ActiveSurveyPlanner
from .agent import SurveyAgent
from .measurement import GpsErrorModel
from .paths import (
    boustrophedon_sweep,
    lawnmower_path,
    path_length,
    random_walk_path,
    spiral_path,
)
from .routing import nearest_neighbor_tour, plan_tour, tour_savings, two_opt_improve
from .survey import Survey

__all__ = [
    "Survey",
    "SurveyAgent",
    "ActiveSurveyPlanner",
    "GpsErrorModel",
    "boustrophedon_sweep",
    "lawnmower_path",
    "spiral_path",
    "random_walk_path",
    "path_length",
    "plan_tour",
    "nearest_neighbor_tour",
    "two_opt_improve",
    "tour_savings",
]
