"""Active (adaptive) exploration: measure where it matters.

The paper's §3.1 evaluation assumes complete terrain exploration; its
"ongoing work" is the general case.  The key question there is *which*
points a measurement-budget-limited robot should visit.  This planner
answers it with a simple, effective rule: explore coarsely first, then
iteratively refine around the highest measured errors — the survey analogue
of the Max/Grid intuition that error is spatially correlated.

Rounds:

1. seed round: a coarse uniform lattice over the terrain;
2. each refinement round spends its budget on fresh points drawn around the
   top-q fraction of the worst measurements so far (Gaussian jitter with
   scale ``refine_sigma``, clamped to the terrain).

The resulting survey concentrates samples in bad regions, which is exactly
what Grid's cumulative score wants.  Bench E6b compares placement gain per
measurement against lawnmower surveys of the same budget.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array
from .survey import Survey

__all__ = ["ActiveSurveyPlanner"]


class ActiveSurveyPlanner:
    """Iterative explore-then-refine measurement planning.

    Args:
        terrain_side: side of the terrain square.
        seed_points_per_axis: coarse seed lattice resolution.
        refine_fraction: fraction of worst measured points refined around.
        refine_sigma: Gaussian jitter scale for refinement samples, meters.
    """

    def __init__(
        self,
        terrain_side: float,
        *,
        seed_points_per_axis: int = 6,
        refine_fraction: float = 0.2,
        refine_sigma: float = 8.0,
    ):
        if terrain_side <= 0:
            raise ValueError(f"terrain_side must be positive, got {terrain_side}")
        if seed_points_per_axis < 2:
            raise ValueError(
                f"seed_points_per_axis must be >= 2, got {seed_points_per_axis}"
            )
        if not 0.0 < refine_fraction <= 1.0:
            raise ValueError(f"refine_fraction must be in (0, 1], got {refine_fraction}")
        if refine_sigma <= 0:
            raise ValueError(f"refine_sigma must be positive, got {refine_sigma}")
        self.terrain_side = float(terrain_side)
        self.seed_points_per_axis = int(seed_points_per_axis)
        self.refine_fraction = float(refine_fraction)
        self.refine_sigma = float(refine_sigma)

    def seed_points(self) -> np.ndarray:
        """The coarse first-round lattice, ``(k², 2)``."""
        axis = np.linspace(0.0, self.terrain_side, self.seed_points_per_axis)
        xs, ys = np.meshgrid(axis, axis, indexing="ij")
        return np.column_stack([xs.ravel(), ys.ravel()])

    def refine_points(
        self, survey: Survey, budget: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Next-round measurement locations given everything measured so far.

        Args:
            survey: all measurements collected so far.
            budget: number of new points to propose.
            rng: randomness for the jitter and anchor choice.

        Returns:
            ``(budget, 2)`` new locations, clamped to the terrain.
        """
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        errors = np.nan_to_num(survey.errors, nan=0.0)
        if errors.size == 0 or errors.max() <= 0.0:
            return rng.uniform(0.0, self.terrain_side, size=(budget, 2))
        k = max(int(np.ceil(self.refine_fraction * errors.size)), 1)
        worst = np.argpartition(errors, -k)[-k:]
        anchors = survey.points[rng.choice(worst, size=budget)]
        jitter = rng.normal(0.0, self.refine_sigma, size=(budget, 2))
        return np.clip(anchors + jitter, 0.0, self.terrain_side)

    def run(
        self,
        agent,
        total_budget: int,
        rng: np.random.Generator,
        *,
        rounds: int = 3,
    ) -> Survey:
        """Plan and execute a full active survey with a measurement budget.

        Args:
            agent: a :class:`~repro.exploration.SurveyAgent`.
            total_budget: total measurements across all rounds.
            rng: randomness for planning (and GPS noise if the agent has it).
            rounds: refinement rounds after the seed round.

        Returns:
            The merged survey of every measurement taken.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        seed = self.seed_points()
        if total_budget <= seed.shape[0]:
            raise ValueError(
                f"total_budget ({total_budget}) must exceed the seed round "
                f"({seed.shape[0]} points)"
            )
        merged = agent.measure_at(seed, rng)
        remaining = total_budget - seed.shape[0]
        per_round = remaining // rounds
        for r in range(rounds):
            budget = per_round if r < rounds - 1 else remaining - per_round * (rounds - 1)
            if budget <= 0:
                break
            fresh = self.refine_points(merged, budget, rng)
            measured = agent.measure_at(fresh, rng)
            merged = Survey(
                points=np.vstack([merged.points, measured.points]),
                errors=np.concatenate([merged.errors, measured.errors]),
                terrain_side=self.terrain_side,
            )
        return merged
