"""Exploration paths for the mobile survey agent.

The paper's evaluation assumes *complete terrain exploration*; real robots
trade coverage for travel time.  These generators produce ordered waypoint
sequences over the terrain square:

* :func:`boustrophedon_sweep` — the complete lattice sweep, visiting every
  measurement point in lawnmower order (the paper's setting);
* :func:`lawnmower_path` — a coarser lawnmower with configurable track
  spacing (partial exploration);
* :func:`spiral_path` — inward rectangular spiral, front-loading the border;
* :func:`random_walk_path` — a reflecting random walk, the weakest
  exploration baseline.

:func:`path_length` measures travel cost so benches can compare placement
quality per meter travelled.
"""

from __future__ import annotations

import numpy as np

from ..geometry import MeasurementGrid

__all__ = [
    "boustrophedon_sweep",
    "lawnmower_path",
    "spiral_path",
    "random_walk_path",
    "path_length",
]


def boustrophedon_sweep(grid: MeasurementGrid) -> np.ndarray:
    """Every lattice point in serpentine (lawnmower) visiting order.

    Returns:
        ``(P_T, 2)`` waypoints: columns alternate direction so consecutive
        points are always one ``step`` apart.
    """
    axis = grid.axis_coordinates()
    rows = []
    for i, x in enumerate(axis):
        ys = axis if i % 2 == 0 else axis[::-1]
        rows.append(np.column_stack([np.full_like(ys, x), ys]))
    return np.vstack(rows)


def lawnmower_path(
    side: float, track_spacing: float, sample_spacing: float
) -> np.ndarray:
    """A lawnmower sweep with parallel tracks ``track_spacing`` apart.

    Args:
        side: terrain side length.
        track_spacing: distance between adjacent north–south tracks.
        sample_spacing: distance between measurements along a track.

    Returns:
        ``(K, 2)`` ordered waypoints.
    """
    if track_spacing <= 0 or sample_spacing <= 0:
        raise ValueError("track_spacing and sample_spacing must be positive")
    xs = np.arange(0.0, side + 1e-9, track_spacing)
    ys = np.arange(0.0, side + 1e-9, sample_spacing)
    rows = []
    for i, x in enumerate(xs):
        track_ys = ys if i % 2 == 0 else ys[::-1]
        rows.append(np.column_stack([np.full_like(track_ys, x), track_ys]))
    return np.vstack(rows)


def spiral_path(side: float, spacing: float) -> np.ndarray:
    """An inward rectangular spiral from the border to the center.

    Args:
        side: terrain side length.
        spacing: distance between consecutive spiral rings and between
            samples along the path.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    waypoints = []
    lo, hi = 0.0, side
    while hi - lo > spacing / 2.0:
        # Four edges of the current ring, sampled every `spacing`.
        xs = np.arange(lo, hi + 1e-9, spacing)
        ys = np.arange(lo + spacing, hi + 1e-9, spacing)
        waypoints.append(np.column_stack([xs, np.full_like(xs, lo)]))
        waypoints.append(np.column_stack([np.full_like(ys, hi), ys]))
        xs_back = xs[::-1]
        waypoints.append(np.column_stack([xs_back, np.full_like(xs_back, hi)]))
        ys_back = ys[:-1][::-1]
        waypoints.append(np.column_stack([np.full_like(ys_back, lo), ys_back]))
        lo += spacing
        hi -= spacing
    if not waypoints:
        return np.array([[side / 2.0, side / 2.0]])
    path = np.vstack(waypoints)
    # Deduplicate consecutive repeats introduced at ring corners.
    keep = np.ones(path.shape[0], dtype=bool)
    keep[1:] = np.any(np.abs(np.diff(path, axis=0)) > 1e-9, axis=1)
    return path[keep]


def random_walk_path(
    side: float,
    num_steps: int,
    step_length: float,
    rng: np.random.Generator,
    *,
    start=None,
) -> np.ndarray:
    """A reflecting random walk inside the terrain square.

    Args:
        side: terrain side length.
        num_steps: number of movement steps (path has ``num_steps + 1``
            waypoints).
        step_length: distance travelled per step.
        rng: randomness for headings.
        start: starting point; defaults to the terrain center.
    """
    if num_steps < 0:
        raise ValueError(f"num_steps must be non-negative, got {num_steps}")
    if step_length <= 0:
        raise ValueError(f"step_length must be positive, got {step_length}")
    position = (
        np.array([side / 2.0, side / 2.0])
        if start is None
        else np.asarray(start, dtype=float)
    )
    path = [position.copy()]
    for _ in range(num_steps):
        heading = rng.uniform(0.0, 2.0 * np.pi)
        position = position + step_length * np.array([np.cos(heading), np.sin(heading)])
        # Reflect off the borders.
        for k in range(2):
            if position[k] < 0.0:
                position[k] = -position[k]
            if position[k] > side:
                position[k] = 2.0 * side - position[k]
            position[k] = min(max(position[k], 0.0), side)
        path.append(position.copy())
    return np.asarray(path)


def path_length(path: np.ndarray) -> float:
    """Total travel distance along an ordered waypoint sequence, meters."""
    pts = np.asarray(path, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"path must be (K, 2), got shape {pts.shape}")
    if pts.shape[0] < 2:
        return 0.0
    return float(np.linalg.norm(np.diff(pts, axis=0), axis=1).sum())
