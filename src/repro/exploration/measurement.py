"""Measurement-noise models for the survey agent.

The paper's evaluation assumes *"no measurement noise"* (§3.1) and flags the
generalization as ongoing work.  :class:`GpsErrorModel` supplies that
generalization: differential-GPS position readings with configurable bias
and jitter, used by the exploration extension bench to quantify how much
survey noise the placement algorithms tolerate.
"""

from __future__ import annotations

import numpy as np

from ..geometry import as_point_array

__all__ = ["GpsErrorModel"]


class GpsErrorModel:
    """Gaussian GPS reading error with an optional constant bias.

    Args:
        sigma: isotropic standard deviation of each reading, meters
            (differential GPS is sub-meter; plain GPS of the era was ~5–10 m).
        bias: constant offset ``(dx, dy)`` applied to every reading, meters —
            models datum/projection error when mapping GPS coordinates onto
            the local terrain coordinate system (§3: the agent must "map it
            to the local coordinate system").
        clamp_side: if set, readings are clamped into ``[0, clamp_side]²``.
    """

    def __init__(
        self,
        sigma: float,
        bias: tuple[float, float] = (0.0, 0.0),
        clamp_side: float | None = None,
    ):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if clamp_side is not None and clamp_side <= 0:
            raise ValueError(f"clamp_side must be positive, got {clamp_side}")
        self.sigma = float(sigma)
        self.bias = (float(bias[0]), float(bias[1]))
        self.clamp_side = clamp_side

    def __repr__(self) -> str:
        return f"GpsErrorModel(sigma={self.sigma}, bias={self.bias})"

    def read(self, true_points, rng: np.random.Generator) -> np.ndarray:
        """GPS readings for the given true positions, ``(K, 2)``."""
        pts = as_point_array(true_points)
        readings = pts + np.asarray(self.bias)[None, :]
        if self.sigma > 0:
            readings = readings + rng.normal(0.0, self.sigma, size=pts.shape)
        if self.clamp_side is not None:
            readings = np.clip(readings, 0.0, self.clamp_side)
        return readings
