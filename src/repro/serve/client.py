"""Clients for the placement service: blocking and asyncio flavors.

:class:`PlacementClient` is the ergonomic one — ``beaconplace
place-client`` and the tests use it; one blocking socket, connect-with-
retry, handshake on connect.  :class:`AsyncPlacementClient` is the same
conversation on asyncio streams, for callers that multiplex many
connections from one thread (``benchmarks/bench_serve.py`` drives
thousands of them).

Both return :class:`~repro.serve.schema.PlacementSolution` objects
reconstructed from the wire — picks and statistics round-trip through
JSON's exact ``repr`` floats and the base64 array block, so a solution
received here is byte-identical to :func:`~repro.serve.schema.solve_request`
run locally (the property ``tests/test_serve.py`` pins).
"""

from __future__ import annotations

import asyncio
import socket
import time

from ..sim.executors.wire import (
    ProtocolError,
    enable_nodelay,
    recv_frame,
    send_frame,
)
from .schema import (
    PlacementRequest,
    PlacementSolution,
    decode_array,
    decode_float,
)

__all__ = ["AsyncPlacementClient", "PlacementClient", "PlacementServiceError"]


class PlacementServiceError(RuntimeError):
    """The server answered with an error (or reject) frame."""


def _hello_frame() -> dict:
    from .server import SERVE_PROTOCOL_VERSION, SERVICE_NAME

    return {
        "type": "hello",
        "protocol": SERVE_PROTOCOL_VERSION,
        "service": SERVICE_NAME,
    }


def _check_welcome(message: dict | None) -> dict:
    if message is None:
        raise PlacementServiceError("server closed the connection during handshake")
    if message.get("type") == "reject":
        raise PlacementServiceError(f"server rejected handshake: {message.get('reason')}")
    if message.get("type") != "welcome":
        raise PlacementServiceError(f"expected welcome, got {message.get('type')!r}")
    return message


def _decode_result(message: dict | None, request_id) -> PlacementSolution:
    if message is None:
        raise PlacementServiceError("server closed the connection mid-request")
    if message.get("type") == "error":
        raise PlacementServiceError(str(message.get("error")))
    if message.get("type") != "result" or message.get("id") != request_id:
        raise PlacementServiceError(
            f"unexpected frame {message.get('type')!r} (id {message.get('id')!r})"
        )
    return PlacementSolution(
        algorithm=message["algorithm"],
        picks=tuple((float(x), float(y)) for x, y in message["picks"]),
        base_mean=decode_float(message["mean"]),
        base_median=decode_float(message["median"]),
        errors=decode_array(message["errors"]),
        cache_hit=bool(message["cache_hit"]),
        fingerprint=message.get("fingerprint"),
    )


class PlacementClient:
    """Blocking placement-service client.

    Args:
        address: server ``(host, port)``.
        timeout: per-frame socket timeout, seconds.
        retry_for: keep retrying the initial connect for this many seconds
            (covers "client raced the server's bind" in scripts and CI).
    """

    def __init__(self, address, *, timeout: float = 60.0, retry_for: float = 10.0):
        host, port = address
        deadline = time.monotonic() + retry_for
        while True:
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)
        enable_nodelay(self._sock)
        self._sock.settimeout(timeout)
        self._next_id = 0
        send_frame(self._sock, _hello_frame())
        try:
            welcome = self._recv()
        except (ConnectionError, ProtocolError) as exc:
            # A peer that slams the door on our hello may RST before the
            # unread frame drains — still a handshake failure, not a crash.
            raise PlacementServiceError(f"handshake failed: {exc}") from exc
        self.welcome = _check_welcome(welcome)

    def _recv(self) -> dict | None:
        message, _ = recv_frame(self._sock)
        return message

    def __enter__(self) -> "PlacementClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def place(self, request: PlacementRequest) -> PlacementSolution:
        """Ship one request; block for (and decode) the solution."""
        self._next_id += 1
        request_id = self._next_id
        send_frame(
            self._sock,
            {"type": "place", "id": request_id, "spec": request.payload()},
        )
        return _decode_result(self._recv(), request_id)

    def heartbeat(self) -> bool:
        """Ping the server; True when it pongs."""
        send_frame(self._sock, {"type": "heartbeat"})
        message = self._recv()
        return message is not None and message.get("type") == "heartbeat"

    def status(self, *, prom: bool = False) -> dict:
        """Fetch server counters (or Prometheus text when ``prom``)."""
        send_frame(self._sock, {"type": "status", "prom": bool(prom)})
        message = self._recv()
        if message is None or message.get("type") != "status":
            raise PlacementServiceError(
                f"expected status, got {None if message is None else message.get('type')!r}"
            )
        return message

    def close(self) -> None:
        """Say goodbye and release the socket."""
        try:
            send_frame(self._sock, {"type": "goodbye"})
        except (OSError, ProtocolError):
            pass
        self._sock.close()


class AsyncPlacementClient:
    """Asyncio placement-service client (one stream pair per instance).

    Usage::

        client = await AsyncPlacementClient.connect(server.address)
        solution = await client.place(request)
        await client.close()
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self.welcome: dict | None = None

    @classmethod
    async def connect(cls, address) -> "AsyncPlacementClient":
        from .server import read_stream_frame, write_stream_frame

        host, port = address
        reader, writer = await asyncio.open_connection(host, port)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            enable_nodelay(sock)
        client = cls(reader, writer)
        await write_stream_frame(writer, _hello_frame())
        try:
            welcome = await read_stream_frame(reader)
        except (ConnectionError, ProtocolError) as exc:
            raise PlacementServiceError(f"handshake failed: {exc}") from exc
        client.welcome = _check_welcome(welcome)
        return client

    async def place(self, request: PlacementRequest) -> PlacementSolution:
        from .server import read_stream_frame, write_stream_frame

        self._next_id += 1
        request_id = self._next_id
        await write_stream_frame(
            self._writer,
            {"type": "place", "id": request_id, "spec": request.payload()},
        )
        return _decode_result(await read_stream_frame(self._reader), request_id)

    async def heartbeat(self) -> bool:
        from .server import read_stream_frame, write_stream_frame

        await write_stream_frame(self._writer, {"type": "heartbeat"})
        message = await read_stream_frame(self._reader)
        return message is not None and message.get("type") == "heartbeat"

    async def close(self) -> None:
        from .server import write_stream_frame

        try:
            await write_stream_frame(self._writer, {"type": "goodbye"})
        except (OSError, ProtocolError, ConnectionError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionError):
            pass
