"""Placement-as-a-service: a long-running asyncio placement server.

``beaconplace place-serve`` answers concurrent placement queries over the
same length-prefixed JSON framing the sweep executors speak — the byte
layer is :func:`repro.sim.executors.wire.encode_frame` /
:func:`~repro.sim.executors.wire.decode_frame` verbatim, lifted onto
asyncio streams here.  Frame types:

===========  =====  =====================================================
type         dir    fields
===========  =====  =====================================================
hello        c → s  ``protocol``, optional ``service`` (``"placement"``)
welcome      s → c  ``protocol``, ``service``, ``heartbeat`` (seconds),
                    ``cache`` (capacity/size)
reject       s → c  ``reason`` — protocol or service mismatch
place        c → s  ``id`` (client-chosen echo token), ``spec`` (a
                    :class:`~repro.serve.schema.PlacementRequest` payload)
result       s → c  ``id``, ``algorithm``, ``picks``, ``mean``,
                    ``median`` (:func:`~repro.serve.schema.encode_float`),
                    ``errors`` (:func:`~repro.serve.schema.encode_array`),
                    ``cache_hit``, ``fingerprint``, ``seconds``
error        s → c  ``id`` (when attributable), ``error``
heartbeat    both   liveness ping; the server echoes one back (a pong)
status       c → s  optional ``prom`` — reply carries request/cache/error
                    counters, or Prometheus text exposition
goodbye      c → s  clean exit
===========  =====  =====================================================

Concurrency model: the event loop owns all sockets; placement solves run
on a single dedicated compute thread (``run_in_executor``), so the
shared :class:`~repro.sim.incremental.FieldCache` and the world-component
caches stay single-threaded *by construction* while heartbeats, status
probes and new connections keep flowing during a long solve.  Repeat and
near-duplicate queries are allocation-light: the expected-LE map comes
from the fingerprint-keyed cache and the world components (grid, layout,
localizer, realization) from the process-local caches the sweep workers
already use.

Observability: every request runs under a ``serve.request`` span and
bumps ``serve.requests`` / ``serve.cache_hits`` / ``serve.errors``;
request latency lands in the ``serve.request_seconds`` histogram.  The
``status`` frame with ``"prom": true`` returns the same Prometheus text
exposition ``beaconplace status --prom`` renders.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from ..obs import (
    enable_metrics,
    get_metrics,
    get_tracer,
    metrics_enabled,
    snapshot_to_prometheus,
)
from ..sim.executors.wire import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    enable_nodelay,
    encode_frame,
    _HEADER,
)
from ..sim.incremental import FieldCache
from .schema import PlacementRequest, encode_array, encode_float, solve_request

__all__ = [
    "SERVICE_NAME",
    "SERVE_PROTOCOL_VERSION",
    "PlacementServer",
    "read_stream_frame",
    "write_stream_frame",
]

#: Bumped whenever service frame semantics change; hello/welcome carry it.
SERVE_PROTOCOL_VERSION = 1

#: Advertised in the welcome frame; guards against pointing a placement
#: client at a sweep server (both speak the same byte framing).
SERVICE_NAME = "placement"


async def read_stream_frame(reader: asyncio.StreamReader) -> dict | None:
    """Receive one frame from an asyncio stream; ``None`` on clean close.

    Same hardening as :func:`repro.sim.executors.wire.recv_frame`: a close
    *inside* a frame (mid-header or mid-payload), an oversized length or a
    non-JSON payload raise :exc:`ProtocolError`.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # orderly shutdown at a frame boundary
        raise ProtocolError("connection closed mid-frame") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the protocol cap")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_frame(payload)


async def write_stream_frame(writer: asyncio.StreamWriter, message: dict) -> int:
    """Serialize and send one frame on an asyncio stream; returns bytes."""
    data = encode_frame(message)
    writer.write(data)
    await writer.drain()
    return len(data)


class PlacementServer:
    """Serve placement queries to TCP clients.

    Args:
        bind: ``(host, port)`` to listen on; port 0 picks a free port
            (read it back from :attr:`address` after :meth:`start`).
        cache_capacity: expected-LE maps held in the shared
            :class:`FieldCache` (each is one float64 lattice array).
        heartbeat: advertised heartbeat interval, seconds.  Connections
            silent for ``3 ×`` this window are dropped.
        max_requests: optional total ``place``-request budget; once
            answered, :meth:`serve_forever` returns (CI smoke runs).
    """

    def __init__(
        self,
        bind=("127.0.0.1", 0),
        *,
        cache_capacity: int = 256,
        heartbeat: float = 30.0,
        max_requests: int | None = None,
    ):
        if heartbeat <= 0:
            raise ValueError(f"heartbeat must be positive, got {heartbeat}")
        if max_requests is not None and max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        self._bind = tuple(bind)
        self.heartbeat = float(heartbeat)
        self.cache = FieldCache(capacity=cache_capacity)
        self.max_requests = max_requests
        self.requests = 0
        self.cache_hits = 0
        self.errors = 0
        self._server: asyncio.AbstractServer | None = None
        # One compute thread: solves serialize, the cache and the world-
        # component caches stay single-threaded, and the event loop keeps
        # answering heartbeats/status while a cold query builds its world.
        self._compute = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="place-serve"
        )
        self._done = asyncio.Event()
        self._handlers: set[asyncio.Task] = set()

    # -- Lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — where clients connect."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> "PlacementServer":
        """Bind the listener and start accepting connections."""
        # A long-running service without live counters has no story to tell
        # `status --prom`; install a recording registry unless the caller
        # (an ObsSession run dir, a test) already did.
        if not metrics_enabled():
            enable_metrics()
        host, port = self._bind
        self._server = await asyncio.start_server(self._handle, host, port)
        return self

    async def serve_forever(self) -> None:
        """Serve until cancelled (or the ``max_requests`` budget is spent).

        Shutdown is graceful: the listener closes first, then in-flight
        conversations get a short grace period to finish (a budgeted CI
        client still wants its trailing status/goodbye answered) before
        any stragglers are cancelled.
        """
        if self._server is None:
            await self.start()
        waiter = asyncio.create_task(self._done.wait())
        try:
            await waiter
        finally:
            waiter.cancel()
        self._server.close()
        await self._server.wait_closed()
        pending = {task for task in self._handlers if not task.done()}
        if pending:
            _, pending = await asyncio.wait(
                pending, timeout=min(self.heartbeat, 5.0)
            )
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def aclose(self) -> None:
        """Stop accepting connections and release the compute thread."""
        self._done.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._compute.shutdown(wait=False)

    # -- Request handling ----------------------------------------------------

    def _solve(self, request: PlacementRequest):
        """Run one solve on the compute thread (span + counters included)."""
        metrics = get_metrics()
        with get_tracer().span(
            "serve.request",
            algorithm=request.algorithm,
            fingerprint=request.fingerprint(),
        ):
            metrics.counter("serve.requests").inc()
            solution = solve_request(request, cache=self.cache)
        return solution

    async def _answer_place(self, writer, message: dict) -> None:
        request_id = message.get("id")
        metrics = get_metrics()
        started = time.perf_counter()
        try:
            request = PlacementRequest.from_payload(message.get("spec"))
            loop = asyncio.get_running_loop()
            solution = await loop.run_in_executor(
                self._compute, self._solve, request
            )
        except (TypeError, ValueError) as exc:
            self.errors += 1
            metrics.counter("serve.errors").inc()
            await write_stream_frame(
                writer, {"type": "error", "id": request_id, "error": str(exc)}
            )
            return
        elapsed = time.perf_counter() - started
        self.requests += 1
        if solution.cache_hit:
            self.cache_hits += 1
        metrics.histogram("serve.request_seconds").observe(elapsed)
        await write_stream_frame(
            writer,
            {
                "type": "result",
                "id": request_id,
                "algorithm": solution.algorithm,
                "picks": [[x, y] for x, y in solution.picks],
                "mean": encode_float(solution.base_mean),
                "median": encode_float(solution.base_median),
                "errors": encode_array(solution.errors),
                "cache_hit": solution.cache_hit,
                "fingerprint": solution.fingerprint,
                "seconds": elapsed,
            },
        )
        if self.max_requests is not None and self.requests >= self.max_requests:
            self._done.set()

    def _status_frame(self, message: dict) -> dict:
        if message.get("prom"):
            return {
                "type": "status",
                "prom": snapshot_to_prometheus(get_metrics().snapshot()),
            }
        return {
            "type": "status",
            "requests": self.requests,
            "errors": self.errors,
            "cache": {
                "hits": self.cache_hits,
                "size": len(self.cache),
                "capacity": self.cache.capacity,
            },
        }

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Result frames and heartbeat pongs are small and latency-
            # sensitive; never let Nagle sit on them.
            enable_nodelay(sock)
        metrics = get_metrics()
        metrics.counter("serve.connections").inc()
        try:
            hello = await asyncio.wait_for(
                read_stream_frame(reader), timeout=self.heartbeat * 3
            )
            if hello is None:
                return
            if (
                hello.get("type") != "hello"
                or hello.get("protocol") != SERVE_PROTOCOL_VERSION
                or hello.get("service", SERVICE_NAME) != SERVICE_NAME
            ):
                await write_stream_frame(
                    writer,
                    {
                        "type": "reject",
                        "reason": (
                            f"expected hello for service {SERVICE_NAME!r} "
                            f"protocol {SERVE_PROTOCOL_VERSION} "
                            f"(got {hello.get('type')!r} protocol "
                            f"{hello.get('protocol')!r} service "
                            f"{hello.get('service', SERVICE_NAME)!r})"
                        ),
                    },
                )
                return
            await write_stream_frame(
                writer,
                {
                    "type": "welcome",
                    "protocol": SERVE_PROTOCOL_VERSION,
                    "service": SERVICE_NAME,
                    "heartbeat": self.heartbeat,
                    "cache": {
                        "capacity": self.cache.capacity,
                        "size": len(self.cache),
                    },
                },
            )
            while True:
                message = await asyncio.wait_for(
                    read_stream_frame(reader), timeout=self.heartbeat * 3
                )
                if message is None:
                    return
                kind = message.get("type")
                if kind == "place":
                    await self._answer_place(writer, message)
                elif kind == "heartbeat":
                    await write_stream_frame(writer, {"type": "heartbeat"})
                elif kind == "status":
                    await write_stream_frame(writer, self._status_frame(message))
                elif kind == "goodbye":
                    return
                else:
                    self.errors += 1
                    metrics.counter("serve.errors").inc()
                    await write_stream_frame(
                        writer,
                        {
                            "type": "error",
                            "id": message.get("id"),
                            "error": f"unknown frame type {kind!r}",
                        },
                    )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass  # silent/dead peer; nothing to answer
        except ProtocolError as exc:
            metrics.counter("serve.protocol_errors").inc()
            try:
                await write_stream_frame(
                    writer, {"type": "error", "error": str(exc)}
                )
            except (ConnectionError, OSError, ProtocolError):
                pass
        finally:
            # Every reply already ran through drain(); close() flushes the
            # rest without an await that loop teardown could cancel.
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
