"""Placement-service request schema: canonical, JSON-native, solvable.

A placement request describes everything a :class:`~repro.sim.TrialWorld`
needs — terrain geometry, the propagation realization's seed and noise
level, the (designed or explicitly enumerated) beacon field — plus the
algorithm to run.  Requests are **pure JSON**: no pickled payloads cross
the service boundary, so any language can speak it (contrast the sweep
wire protocol, whose cells ship arbitrary Python objects between trusted
peers).

Three contracts anchor the service:

* **Canonical fingerprints.**  :meth:`PlacementRequest.fingerprint` is a
  sha256 over the canonical JSON payload — stable across processes and
  machines, same conventions as :func:`repro.sim.sweep_fingerprint`.  The
  *field* identity (what the expected-LE cache is keyed on) additionally
  goes through :func:`repro.sim.incremental.field_fingerprint`, so two
  requests that describe the same physical field share a cache entry even
  when they ask for different algorithms.

* **Byte-identity.**  :func:`solve_request` *is* the direct library call:
  the server runs exactly this function, so a placement served over the
  wire is byte-identical to calling ``placement.*`` locally with the
  canonical RNG stream (``derive_rng(seed, "serve", algorithm, noise,
  count, field_index)``).  ``tests/test_serve.py`` pins this across
  algorithms, noise levels and fault-masked fields.

* **NaN-safe encoding.**  Expected-LE maps may legitimately contain NaN
  (excluded points, all-beacons-down fields), and the wire envelope is
  strict JSON (:func:`repro.sim.executors.wire.send_frame` refuses bare
  ``NaN`` tokens).  Arrays therefore ride as ``{"dtype", "shape",
  "data"}`` base64 blocks (:func:`encode_array`/:func:`decode_array`) and
  scalar statistics as JSON numbers when finite, or the explicit strings
  ``"NaN"``/``"Infinity"``/``"-Infinity"`` otherwise
  (:func:`encode_float`/:func:`decode_float`).
"""

from __future__ import annotations

import base64
import hashlib
import json
import math
from dataclasses import dataclass, field as dataclass_field

import numpy as np

from ..exploration import Survey
from ..field import Beacon, BeaconField
from ..geometry import Point
from ..localization import CentroidLocalizer, ErrorSurface, UnlocalizedPolicy
from ..obs import get_metrics, get_tracer
from ..placement import (
    GreedyKPlacement,
    GridPlacement,
    MaxPlacement,
    RandomPlacement,
)
from ..sim import build_world, derive_rng
from ..sim.config import ExperimentConfig
from ..sim.incremental import FieldCache, FieldState, field_fingerprint

__all__ = [
    "ALGORITHM_NAMES",
    "PlacementRequest",
    "PlacementSolution",
    "decode_array",
    "decode_float",
    "encode_array",
    "encode_float",
    "solve_request",
]

#: Algorithms a request may name (the paper's three plus greedy-k).
ALGORITHM_NAMES = ("random", "max", "grid", "greedy")

_POLICY_NAMES = tuple(policy.value for policy in UnlocalizedPolicy)


def encode_float(value: float) -> float | str:
    """A JSON-safe scalar: the number itself, or an explicit token string.

    Strict JSON has no NaN/Infinity; encoding them as the strings
    ``"NaN"`` / ``"Infinity"`` / ``"-Infinity"`` keeps the frame parseable
    from any language (``float()`` accepts all three back in Python).
    """
    value = float(value)
    if math.isfinite(value):
        return value
    return repr(value).replace("inf", "Infinity").replace("nan", "NaN")


def decode_float(value) -> float:
    """Invert :func:`encode_float`."""
    return float(value)


def encode_array(values: np.ndarray) -> dict:
    """A float64 array as a language-neutral base64 block.

    Little-endian IEEE-754 bytes plus dtype/shape — decodable without
    pickle from any language, and NaN-safe (the bytes carry non-finite
    values exactly, where strict JSON cannot).
    """
    contiguous = np.ascontiguousarray(values, dtype="<f8")
    return {
        "dtype": "<f8",
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.tobytes()).decode("ascii"),
    }


def decode_array(block: dict) -> np.ndarray:
    """Invert :func:`encode_array`; the result is read-only."""
    if block.get("dtype") != "<f8":
        raise ValueError(f"unsupported array dtype {block.get('dtype')!r}")
    data = base64.b64decode(block["data"].encode("ascii"))
    values = np.frombuffer(data, dtype="<f8").reshape(tuple(block["shape"]))
    values.setflags(write=False)
    return values


@dataclass(frozen=True)
class PlacementRequest:
    """One placement query: a field spec plus the algorithm to run on it.

    Attributes:
        side: terrain side in meters.
        step: measurement-lattice spacing in meters.
        radio_range: nominal radio range ``R`` in meters.
        num_grids: overlapping grids ``N_G`` for the Grid algorithm.
        seed: master seed; the field, realization and algorithm RNG all
            derive from it (same streams as the sweep engine).
        policy: unlocalized-point convention, by enum value name.
        cm_thresh: noise-model threshold interpretation (see
            :class:`~repro.sim.ExperimentConfig`); None = symmetric.
        noise: the realization's noise level.
        count: designed beacon count.  The generated field and the
            propagation realization are keyed on it, exactly as
            :func:`repro.sim.build_world` keys them.
        field_index: replication index of the generated field.
        beacons: optional explicit field as ``[[id, x, y], ...]`` —
            overrides the generated field's membership while keeping the
            realization keyed on ``count``.  This is how a client ships a
            fault-masked field: survivors keep their designed ids, so
            their propagation links match the pristine world's.
        algorithm: one of :data:`ALGORITHM_NAMES`.
        k: beacons to place (greedy only; the others place one).
        subsample: candidate-lattice stride (greedy only).
    """

    side: float = 100.0
    step: float = 1.0
    radio_range: float = 15.0
    num_grids: int = 400
    seed: int = 20010416
    policy: str = "terrain_center"
    cm_thresh: float | None = 0.9
    noise: float = 0.0
    count: int = 40
    field_index: int = 0
    beacons: tuple | None = None
    algorithm: str = "grid"
    k: int = 1
    subsample: int = 1

    def __post_init__(self) -> None:
        if self.side <= 0 or self.step <= 0 or self.radio_range <= 0:
            raise ValueError("side, step and radio_range must be positive")
        if self.num_grids < 1:
            raise ValueError(f"num_grids must be >= 1, got {self.num_grids}")
        if self.policy not in _POLICY_NAMES:
            raise ValueError(
                f"unknown policy {self.policy!r} (choose from {_POLICY_NAMES})"
            )
        if not 0 <= self.noise < 1:
            raise ValueError(f"noise must be in [0, 1), got {self.noise}")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.field_index < 0:
            raise ValueError(f"field_index must be >= 0, got {self.field_index}")
        if self.algorithm not in ALGORITHM_NAMES:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r} "
                f"(choose from {ALGORITHM_NAMES})"
            )
        if self.k < 1 or self.subsample < 1:
            raise ValueError("k and subsample must be >= 1")
        if self.beacons is not None:
            normalized = []
            for entry in self.beacons:
                if len(entry) != 3:
                    raise ValueError(
                        f"beacon entries are [id, x, y], got {entry!r}"
                    )
                beacon_id, x, y = entry
                if int(beacon_id) != beacon_id or int(beacon_id) < 0:
                    raise ValueError(f"beacon id must be a non-negative int, got {beacon_id!r}")
                normalized.append((int(beacon_id), float(x), float(y)))
            object.__setattr__(self, "beacons", tuple(normalized))

    # -- Canonical form ------------------------------------------------------

    def payload(self) -> dict:
        """The canonical JSON-ready dict (what travels in a ``place`` frame)."""
        spec = {
            "side": float(self.side),
            "step": float(self.step),
            "radio_range": float(self.radio_range),
            "num_grids": int(self.num_grids),
            "seed": int(self.seed),
            "policy": self.policy,
            "cm_thresh": None if self.cm_thresh is None else float(self.cm_thresh),
            "noise": float(self.noise),
            "count": int(self.count),
            "field_index": int(self.field_index),
            "algorithm": self.algorithm,
            "k": int(self.k),
            "subsample": int(self.subsample),
        }
        if self.beacons is not None:
            spec["beacons"] = [[i, x, y] for i, x, y in self.beacons]
        return spec

    @classmethod
    def from_payload(cls, payload: dict) -> "PlacementRequest":
        """Validate and build a request from a decoded ``spec`` dict.

        Unknown keys are rejected — a typo'd parameter silently falling
        back to a default would return a *valid-looking but wrong*
        placement, the worst possible service failure.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"spec must be an object, got {type(payload).__name__}")
        known = {
            "side", "step", "radio_range", "num_grids", "seed", "policy",
            "cm_thresh", "noise", "count", "field_index", "beacons",
            "algorithm", "k", "subsample",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown spec field(s): {', '.join(unknown)}")
        kwargs = dict(payload)
        if kwargs.get("beacons") is not None:
            kwargs["beacons"] = tuple(tuple(entry) for entry in kwargs["beacons"])
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """Canonical request identity, 16 hex chars (process-independent)."""
        blob = json.dumps(self.payload(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- World construction --------------------------------------------------

    def experiment_config(self) -> ExperimentConfig:
        """The :class:`ExperimentConfig` this request describes."""
        return ExperimentConfig(
            side=self.side,
            radio_range=self.radio_range,
            step=self.step,
            num_grids=self.num_grids,
            beacon_counts=(max(self.count, 1),),
            fields_per_density=1,
            seed=self.seed,
            policy=UnlocalizedPolicy(self.policy),
            cm_thresh=self.cm_thresh,
        )

    def build_algorithm(self):
        """The requested placement algorithm instance."""
        if self.algorithm == "random":
            return RandomPlacement()
        if self.algorithm == "max":
            return MaxPlacement()
        if self.algorithm == "grid":
            return GridPlacement.paper_configuration(
                self.side, self.radio_range, self.num_grids
            )
        return GreedyKPlacement(k=self.k, subsample=self.subsample)

    def build_field(self, generated: BeaconField) -> BeaconField:
        """The field to place on: explicit beacons, or the generated one."""
        if self.beacons is None:
            return generated
        next_id = max(
            [self.count] + [beacon_id + 1 for beacon_id, _, _ in self.beacons]
        )
        return BeaconField(
            [
                Beacon(beacon_id, Point(x, y))
                for beacon_id, x, y in self.beacons
            ],
            next_id=next_id,
        )


@dataclass(frozen=True)
class PlacementSolution:
    """What :func:`solve_request` computes (and the server serializes).

    Attributes:
        algorithm: resolved algorithm name.
        picks: placement coordinates in deployment order, ``[(x, y), ...]``.
        base_mean: mean expected LE of the *base* field, meters (NaN when
            unmeasurable).
        base_median: median expected LE of the base field, meters.
        errors: the base field's expected-LE map over the lattice, ``(P,)``.
        cache_hit: whether ``errors`` came from the field cache.
        fingerprint: the field's canonical cache key (None = uncacheable).
    """

    algorithm: str
    picks: tuple
    base_mean: float
    base_median: float
    errors: np.ndarray = dataclass_field(repr=False)
    cache_hit: bool
    fingerprint: str | None


def solve_request(
    request: PlacementRequest, cache: FieldCache | None = None
) -> PlacementSolution:
    """Answer one placement request — the reference the wire must match.

    The expected-LE map is served through ``cache`` when the field has a
    canonical fingerprint; algorithm decisions always derive from the
    named RNG stream ``(seed, "serve", algorithm, noise, count,
    field_index)``, so repeat queries are deterministic and every backend
    (direct call, threaded server, benchmark harness) returns identical
    bytes.
    """
    metrics = get_metrics()
    config = request.experiment_config()
    world = build_world(config, request.noise, request.count, request.field_index)
    field = request.build_field(world.field)
    grid, layout = world.grid, world.layout
    localizer: CentroidLocalizer = world.localizer
    fingerprint = field_fingerprint(field, world.realization, grid, localizer)
    cached = cache.get(fingerprint) if (cache is not None and fingerprint) else None
    state: FieldState | None = None
    if cached is not None:
        metrics.counter("serve.cache_hits").inc()
        errors = cached
    else:
        with get_tracer().span("serve.solve.build", beacons=len(field)):
            state = FieldState.build(
                field, world.realization, grid, layout, localizer
            )
            errors = state.errors()
        if cache is not None and fingerprint:
            errors = cache.put(fingerprint, errors)
    surface = ErrorSurface(grid, errors)
    survey = Survey.from_error_surface(surface)
    algorithm = request.build_algorithm()
    rng = derive_rng(
        request.seed,
        "serve",
        algorithm.name,
        request.noise,
        request.count,
        request.field_index,
    )
    with get_tracer().span("serve.solve.place", algorithm=algorithm.name):
        if isinstance(algorithm, GreedyKPlacement):
            if state is None:
                # Cache hit: the LE map is served, but greedy's candidate
                # scans still need live connectivity (built lazily here).
                state = FieldState(
                    field, world.realization, grid, layout, localizer
                )
            picks = algorithm.plan(survey, rng, state)
        elif algorithm.requires_world:
            if state is None:
                state = FieldState(
                    field, world.realization, grid, layout, localizer
                )
            picks = [algorithm.propose(survey, rng, state)]
        else:
            picks = [algorithm.propose(survey, rng)]
    return PlacementSolution(
        algorithm=algorithm.name,
        picks=tuple((float(p.x), float(p.y)) for p in picks),
        base_mean=surface.mean_error(),
        base_median=surface.median_error(),
        errors=errors,
        cache_hit=cached is not None,
        fingerprint=fingerprint,
    )
