"""Placement-as-a-service: asyncio server, clients and request schema.

The service half of the incremental engine (PR 9 shipped
:class:`~repro.sim.incremental.FieldState` and
:class:`~repro.sim.incremental.FieldCache`; this package puts a wire in
front of them).  See :mod:`repro.serve.server` for the frame protocol,
:mod:`repro.serve.schema` for the request contract, and DESIGN.md §14
for the architecture walkthrough.
"""

from .client import AsyncPlacementClient, PlacementClient, PlacementServiceError
from .schema import (
    ALGORITHM_NAMES,
    PlacementRequest,
    PlacementSolution,
    decode_array,
    decode_float,
    encode_array,
    encode_float,
    solve_request,
)
from .server import (
    SERVE_PROTOCOL_VERSION,
    SERVICE_NAME,
    PlacementServer,
    read_stream_frame,
    write_stream_frame,
)

__all__ = [
    "ALGORITHM_NAMES",
    "AsyncPlacementClient",
    "PlacementClient",
    "PlacementRequest",
    "PlacementServiceError",
    "PlacementServer",
    "PlacementSolution",
    "SERVE_PROTOCOL_VERSION",
    "SERVICE_NAME",
    "decode_array",
    "decode_float",
    "encode_array",
    "encode_float",
    "read_stream_frame",
    "solve_request",
    "write_stream_frame",
]
