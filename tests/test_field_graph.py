"""Unit tests for repro.field.graph (beacon network health)."""

import networkx as nx
import numpy as np
import pytest

from repro.field import (
    BeaconField,
    beacon_graph,
    deployment_health,
    random_uniform_field,
)
from repro.radio import BeaconNoiseModel, IdealDiskModel


R = 12.0


class TestBeaconGraph:
    def test_nodes_carry_positions(self, small_field, ideal_realization):
        graph = beacon_graph(small_field, ideal_realization)
        assert set(graph.nodes) == set(small_field.beacon_ids)
        bid = small_field[0].beacon_id
        assert graph.nodes[bid]["pos"] == (
            small_field[0].position.x,
            small_field[0].position.y,
        )

    def test_mutual_edges_match_distance_rule(self, rng):
        field = BeaconField.from_positions([(0.0, 0.0), (5.0, 0.0), (30.0, 0.0)])
        real = IdealDiskModel(R).realize(rng)
        graph = beacon_graph(field, real)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)
        assert not graph.has_edge(1, 2)  # 25 m apart > R

    def test_directed_variant(self, rng, small_field):
        digraph = beacon_graph(small_field, IdealDiskModel(R).realize(rng), mutual=False)
        assert digraph.is_directed()
        # Under the symmetric ideal model the digraph is symmetric.
        for u, v in digraph.edges:
            assert digraph.has_edge(v, u)

    def test_noise_creates_asymmetric_links(self, rng):
        field = random_uniform_field(40, 60.0, rng)
        real = BeaconNoiseModel(R, 0.5).realize(rng)
        digraph = beacon_graph(field, real, mutual=False)
        asym = sum(1 for u, v in digraph.edges if not digraph.has_edge(v, u))
        assert asym > 0

    def test_no_self_loops(self, small_field, ideal_realization):
        graph = beacon_graph(small_field, ideal_realization)
        assert nx.number_of_selfloops(graph) == 0


class TestDeploymentHealth:
    def test_empty_field(self, ideal_realization):
        health = deployment_health(BeaconField.empty(), ideal_realization)
        assert health.num_beacons == 0
        assert not health.is_connected

    def test_chain_topology(self, rng):
        field = BeaconField.from_positions([(x, 0.0) for x in (0.0, 10.0, 20.0, 30.0)])
        health = deployment_health(field, IdealDiskModel(R).realize(rng))
        assert health.num_components == 1
        assert health.is_connected
        # Interior chain nodes are articulation points.
        assert set(health.articulation_points) == {1, 2}

    def test_two_clusters(self, rng):
        positions = [(0.0, 0.0), (5.0, 0.0), (50.0, 50.0), (55.0, 50.0)]
        health = deployment_health(
            BeaconField.from_positions(positions), IdealDiskModel(R).realize(rng)
        )
        assert health.num_components == 2
        assert health.largest_component_fraction == pytest.approx(0.5)
        assert not health.is_connected

    def test_isolated_beacon_detected(self, rng):
        positions = [(0.0, 0.0), (5.0, 0.0), (59.0, 59.0)]
        health = deployment_health(
            BeaconField.from_positions(positions), IdealDiskModel(R).realize(rng)
        )
        assert health.isolated_beacons == (2,)

    def test_asymmetric_fraction_zero_under_ideal(self, rng, small_field):
        health = deployment_health(small_field, IdealDiskModel(R).realize(rng))
        assert health.asymmetric_link_fraction == 0.0

    def test_asymmetric_fraction_positive_under_noise(self, rng):
        field = random_uniform_field(50, 60.0, rng)
        health = deployment_health(field, BeaconNoiseModel(R, 0.5).realize(rng))
        assert health.asymmetric_link_fraction > 0.0

    def test_dense_field_connected(self, rng):
        field = random_uniform_field(120, 60.0, rng)
        health = deployment_health(field, IdealDiskModel(15.0).realize(rng))
        assert health.is_connected
        assert health.mean_degree > 4.0
