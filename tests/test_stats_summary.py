"""Unit tests for repro.stats.summary."""

import numpy as np
import pytest

from repro.stats import mean_ci, median_ci


class TestMeanCI:
    def test_point_estimate(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.value == pytest.approx(2.0)
        assert ci.n == 3

    def test_single_sample_zero_width(self):
        ci = mean_ci([5.0])
        assert ci.value == 5.0
        assert ci.half_width == 0.0

    def test_constant_samples_zero_width(self):
        ci = mean_ci([4.0] * 10)
        assert ci.half_width == pytest.approx(0.0)

    def test_bounds(self):
        ci = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert ci.low == pytest.approx(ci.value - ci.half_width)
        assert ci.high == pytest.approx(ci.value + ci.half_width)

    def test_nan_dropped(self):
        ci = mean_ci([1.0, np.nan, 3.0])
        assert ci.value == pytest.approx(2.0)
        assert ci.n == 2

    def test_all_nan_raises(self):
        with pytest.raises(ValueError, match="finite sample"):
            mean_ci([np.nan, np.nan])

    def test_invalid_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            mean_ci([1.0], confidence=1.0)

    def test_coverage_calibration(self):
        """~95% of 95% CIs over normal samples should contain the mean."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            ci = mean_ci(rng.normal(10.0, 2.0, size=20))
            hits += ci.low <= 10.0 <= ci.high
        assert 0.90 <= hits / trials <= 0.99

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = mean_ci(rng.normal(0, 1, 10))
        large = mean_ci(rng.normal(0, 1, 1000))
        assert large.half_width < small.half_width

    def test_higher_confidence_wider(self):
        data = np.random.default_rng(2).normal(0, 1, 30)
        assert mean_ci(data, 0.99).half_width > mean_ci(data, 0.9).half_width


class TestMedianCI:
    def test_point_estimate(self):
        ci = median_ci([1.0, 2.0, 3.0, 4.0, 100.0])
        assert ci.value == pytest.approx(3.0)

    def test_robust_to_outliers(self):
        base = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert median_ci(base + [1e6]).value < 10.0

    def test_tiny_sample_uses_range(self):
        ci = median_ci([1.0, 5.0])
        assert ci.value == pytest.approx(3.0)
        assert ci.half_width == pytest.approx(2.0)

    def test_all_nan_raises(self):
        with pytest.raises(ValueError):
            median_ci([np.nan])

    def test_coverage_calibration(self):
        rng = np.random.default_rng(3)
        hits = 0
        trials = 300
        for _ in range(trials):
            ci = median_ci(rng.normal(5.0, 1.0, size=31))
            hits += ci.low - 1e-12 <= 5.0 <= ci.high + 1e-12
        assert hits / trials >= 0.9

    def test_invalid_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            median_ci([1.0, 2.0], confidence=0.0)
